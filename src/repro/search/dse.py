"""Design-space exploration over parallelism mappings.

Case Study I's workflow: enumerate every legal (intra, inter)
parallelism factorization of a system, evaluate AMPeD for each, and
rank.  The explorer optionally tunes the microbatch count per mapping
and filters mappings whose footprint exceeds accelerator memory.

Three performance levers keep large spaces interactive (see
``docs/performance.md``):

- **The sweep compiler** (``evaluation_path="compiled"``, the default):
  Eq. 1 is factored into per-term lookup tables shared across the whole
  sweep (:mod:`repro.search.compiler`); evaluating a candidate becomes
  key projection + table lookups + additions, bit-identical to the
  collapsed path.
- **Branch-and-bound pruning** (``prune=True``): an admissible
  compute + communication lower bound — the compiled term tables
  evaluated at the best achievable microbatch efficiency, with the
  bubble term dropped — is compared against the incumbent ``k``-th
  best batch time (``k = max_results``); mappings whose bound already
  exceeds it cannot enter the top-``k`` and are skipped without a full
  evaluation.  The returned (truncated) ranking is provably identical
  to the unpruned one, and pruning is a no-op when ``max_results`` is
  ``None``.
- **Process-pool fan-out** (``workers=N``): mappings are evaluated by
  ``N`` worker processes in submission order, preserving the exact
  result ordering of the serial path (surfaced as ``--jobs`` on the
  CLI ``sweep`` command).  A pool initializer warms each worker's
  operation memo and ships the parent's compiled term tables, so
  workers never start cold.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Iterable, List, Optional

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    weight_update_time,
)
from repro.core.model import AMPeD
from repro.core.operations import build_operations
from repro.errors import (
    MappingError,
    MemoryCapacityError,
    require_finite_fields,
)
from repro.memory.constraints import fits_in_memory
from repro.obs.trace import get_tracer, span
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.microbatch import microbatch_size
from repro.parallelism.spec import ParallelismSpec
from repro.search.compiler import CompiledSweep, compile_sweep, warm_worker
from repro.search.tuning import microbatch_candidates, optimize_microbatches
from repro.search.vectorized import (
    DEFAULT_CHUNK_CANDIDATES,
    evaluate_chunk,
    require_numpy,
    resolve_evaluation_path,
)


#: Skip-category vocabulary shared by the explorer, the resilient sweep
#: runtime and its journal (``docs/robustness.md`` documents each).
SKIP_MAPPING_INFEASIBLE = "mapping_infeasible"
SKIP_MEMORY_CAPACITY = "memory_capacity"
SKIP_NON_FINITE = "non_finite_result"
SKIP_PRUNED = "pruned"
SKIP_WORKER_ERROR = "worker_error"

SKIP_CATEGORIES = (
    SKIP_MAPPING_INFEASIBLE,
    SKIP_MEMORY_CAPACITY,
    SKIP_NON_FINITE,
    SKIP_PRUNED,
    SKIP_WORKER_ERROR,
)


@dataclass(frozen=True)
class ExplorationResult:
    """One evaluated point of the design space."""

    parallelism: ParallelismSpec
    global_batch: int
    batch_time_s: float
    breakdown: TrainingTimeBreakdown
    microbatch_size: float
    microbatch_efficiency: float


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def label(self) -> str:
        """Compact mapping descriptor for tables."""
        return self.parallelism.describe()


@dataclass(frozen=True)
class CandidateOutcome:
    """The categorized outcome of evaluating one candidate mapping.

    Exactly one of two shapes: ``result`` set and ``skip_category``
    ``None`` (evaluated), or ``result`` ``None`` and ``skip_category``
    naming *why* the candidate was discarded — the truthful record the
    sweep journal persists.
    """

    spec: ParallelismSpec
    result: Optional[ExplorationResult] = None
    skip_category: Optional[str] = None
    detail: str = ""

    @property
    def evaluated(self) -> bool:
        return self.result is not None


def explore(amped: AMPeD, global_batch: int,
            mappings: Optional[List[ParallelismSpec]] = None,
            tune_microbatches: bool = True,
            enforce_memory: bool = False,
            max_results: Optional[int] = None,
            prune: bool = True,
            workers: Optional[int] = None,
            evaluation_path: str = "compiled") -> List[ExplorationResult]:
    """Evaluate every mapping and return results sorted fastest-first.

    Parameters
    ----------
    amped:
        Template scenario; its parallelism field is replaced per mapping.
    global_batch:
        Batch size to evaluate at.
    mappings:
        Explicit mapping list, or every legal factorization by default.
    tune_microbatches:
        Re-tune ``N_ub`` per mapping (the paper's practice).
    enforce_memory:
        Drop mappings whose footprint exceeds the accelerator memory.
    max_results:
        Truncate the (sorted) result list.
    prune:
        Skip mappings whose compute + communication lower bound (from
        the sweep compiler's term tables) exceeds the incumbent
        ``max_results``-th best time.  Exact: the truncated ranking is
        identical to the unpruned one.  No-op without ``max_results``.
    workers:
        Evaluate mappings with a pool of this many worker processes
        (``None``/``0``/``1`` = serial).  Submission order is
        preserved, so the ranked result list matches the serial path
        exactly.  Requires the template (including its efficiency fit)
        to be picklable.
    evaluation_path:
        How each candidate evaluates Eq. 1 — overrides the template's
        own setting.  ``"compiled"`` (default) routes through the sweep
        compiler; ``"vectorized"`` evaluates the whole candidate batch
        as NumPy array programs (auto-selected over ``"compiled"`` for
        large sweeps when NumPy is importable, see
        :func:`repro.search.vectorized.resolve_evaluation_path`);
        ``"collapsed"`` and ``"per_layer"`` keep the uncompiled paths.
        All paths agree within floating-point associativity and produce
        identical skip categories and rankings.
    """
    if mappings is None:
        mappings = enumerate_mappings(amped.system, amped.model)
    if not enforce_memory:
        evaluation_path = resolve_evaluation_path(evaluation_path,
                                                  len(mappings))
    elif evaluation_path == "vectorized":
        # The memory screen needs per-candidate scenario objects the
        # array path never builds; validate the request, then let the
        # scalar compiled-equivalent route below handle it.
        require_numpy()
    if evaluation_path != amped.evaluation_path:
        amped = replace(amped, evaluation_path=evaluation_path)
    # One compiled-sweep instance backs candidate evaluation (compiled
    # and vectorized paths) and the pruner's lower bound (every path,
    # so skip counters are path-independent).
    compiled = None
    if prune or amped.evaluation_path in ("compiled", "vectorized"):
        compiled = compile_sweep(amped, global_batch)
    evaluate = partial(_evaluate_spec, amped, global_batch=global_batch,
                       tune_microbatches=tune_microbatches,
                       enforce_memory=enforce_memory)
    pruner = None
    if prune:
        pruner = _BoundPruner(amped, global_batch, tune_microbatches,
                              max_results, compiled=compiled)
    with span("dse.explore", category="search") as live:
        if (amped.evaluation_path == "vectorized"
                and not enforce_memory):
            # Array-program route: pruning is exact (the pruned ranking
            # equals the unpruned one by construction), so evaluating
            # every candidate vectorized and truncating afterwards
            # returns the identical result list.
            results = _explore_vectorized(amped, compiled, global_batch,
                                          mappings, tune_microbatches,
                                          max_results)
        else:
            if workers is not None and workers > 1:
                evaluated = _explore_parallel(evaluate, mappings,
                                              workers, pruner, amped,
                                              global_batch, compiled)
            else:
                evaluated = _explore_serial(evaluate, mappings, pruner)
            results = [result for result in evaluated
                       if result is not None]
            results.sort(key=lambda result: result.batch_time_s)
            if max_results is not None:
                results = results[:max_results]
        live.set_attrs(n_mappings=len(mappings),
                       n_results=len(results),
                       workers=workers if workers else 1,
                       global_batch=global_batch)
        return results


def evaluate_candidate(template: AMPeD, spec: ParallelismSpec,
                       global_batch: int, tune_microbatches: bool = True,
                       enforce_memory: bool = False) -> CandidateOutcome:
    """Fully evaluate one mapping, categorizing any infeasibility.

    Never raises a :class:`~repro.errors.ReproError`: infeasible
    mappings come back as skipped outcomes whose category says why
    (mapping constraints vs memory capacity vs a non-finite batch time),
    which is what the sweep journal records.  Genuine programming errors
    still propagate.

    Compiled templates take a fast route through the sweep compiler's
    term tables that never constructs a per-candidate :class:`AMPeD`;
    it replicates this function's validation order, skip categories and
    detail strings exactly.  While tracing is enabled the generic route
    runs instead, so compiled sweeps emit the same per-estimate spans.
    """
    if (template.evaluation_path in ("compiled", "vectorized")
            and not get_tracer().enabled):
        # A single candidate has no batch to vectorize, so
        # "vectorized" shares the scalar term-table route here; the
        # array backend engages on whole chunks in explore/run_sweep.
        return _evaluate_candidate_compiled(
            template, spec, global_batch, tune_microbatches,
            enforce_memory)
    candidate = replace(template, parallelism=spec)
    needs_memory_check = enforce_memory
    try:
        if tune_microbatches:
            candidates = None
            if enforce_memory:
                candidates = _memory_feasible_candidates(
                    candidate, global_batch)
                if not candidates:
                    return CandidateOutcome(
                        spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                        detail="no microbatch count fits in memory")
                # Every candidate already passed fits_in_memory, and the
                # tuned spec is one of them — no re-check needed.
                needs_memory_check = False
            candidate, _ = optimize_microbatches(
                candidate, global_batch, candidates=candidates)
        microbatch = candidate.microbatch(global_batch)
        if needs_memory_check and not fits_in_memory(
                candidate.model, candidate.parallelism, microbatch,
                candidate.precision, candidate.system.accelerator,
                candidate.zero):
            return CandidateOutcome(
                spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                detail=f"microbatch {microbatch:g} does not fit in HBM")
        breakdown = candidate.estimate_batch(global_batch)
    except MemoryCapacityError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MEMORY_CAPACITY,
                                detail=str(error))
    except MappingError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MAPPING_INFEASIBLE,
                                detail=str(error))
    if not math.isfinite(breakdown.total):
        return CandidateOutcome(
            spec=spec, skip_category=SKIP_NON_FINITE,
            detail=f"batch time is {breakdown.total!r}")
    return CandidateOutcome(spec=spec, result=ExplorationResult(
        parallelism=candidate.parallelism,
        global_batch=global_batch,
        batch_time_s=breakdown.total,
        breakdown=breakdown,
        microbatch_size=microbatch,
        microbatch_efficiency=candidate.microbatch_efficiency(global_batch),
    ))


def _evaluate_candidate_compiled(template: AMPeD, spec: ParallelismSpec,
                                 global_batch: int,
                                 tune_microbatches: bool,
                                 enforce_memory: bool
                                 ) -> CandidateOutcome:
    """:func:`evaluate_candidate`'s fast route for compiled templates.

    Candidate evaluation through the sweep compiler's term tables: no
    per-candidate :class:`AMPeD` construction, no re-walk of Eq. 1.
    Mirrors the generic route statement for statement — the same spec
    validation outside the ``try`` (so a mapping that cannot tile the
    system raises, exactly like ``replace(template, parallelism=spec)``
    does there), the same skip categories and detail strings, and
    bit-identical batch times.
    """
    compiled = compile_sweep(template, global_batch)
    if template.validate:
        spec.validate_against(template.system)
        spec.validate_against_model(template.model.n_layers,
                                    template.model.n_heads)
    needs_memory_check = enforce_memory
    tuned = spec
    try:
        if tune_microbatches:
            candidates = None
            if enforce_memory:
                # The memory screen is the one stage that still needs a
                # full candidate (fits_in_memory reads the scenario);
                # enforce_memory sweeps pay one construction here.
                candidates = _memory_feasible_candidates(
                    replace(template, parallelism=spec), global_batch)
                if not candidates:
                    return CandidateOutcome(
                        spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                        detail="no microbatch count fits in memory")
                needs_memory_check = False
            tuned, _ = compiled.best_microbatch(spec, candidates)
        microbatch = microbatch_size(global_batch, tuned)
        if needs_memory_check and not fits_in_memory(
                template.model, tuned, microbatch,
                template.precision, template.system.accelerator,
                template.zero):
            return CandidateOutcome(
                spec=spec, skip_category=SKIP_MEMORY_CAPACITY,
                detail=f"microbatch {microbatch:g} does not fit in HBM")
        breakdown = compiled.breakdown(tuned)
    except MemoryCapacityError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MEMORY_CAPACITY,
                                detail=str(error))
    except MappingError as error:
        return CandidateOutcome(spec=spec,
                                skip_category=SKIP_MAPPING_INFEASIBLE,
                                detail=str(error))
    if not math.isfinite(breakdown.total):
        return CandidateOutcome(
            spec=spec, skip_category=SKIP_NON_FINITE,
            detail=f"batch time is {breakdown.total!r}")
    return CandidateOutcome(spec=spec, result=ExplorationResult(
        parallelism=tuned,
        global_batch=global_batch,
        batch_time_s=breakdown.total,
        breakdown=breakdown,
        microbatch_size=microbatch,
        microbatch_efficiency=compiled.efficiency(microbatch),
    ))


def _evaluate_spec(template: AMPeD, spec: ParallelismSpec,
                   global_batch: int, tune_microbatches: bool,
                   enforce_memory: bool) -> Optional[ExplorationResult]:
    """Fully evaluate one mapping; ``None`` when it is infeasible."""
    return evaluate_candidate(template, spec, global_batch,
                              tune_microbatches, enforce_memory).result


def _explore_serial(evaluate: Callable, mappings: List[ParallelismSpec],
                    pruner: Optional["_BoundPruner"]) -> List:
    out = []
    for spec in mappings:
        if pruner is not None and pruner.should_skip(spec):
            continue
        result = evaluate(spec)
        if pruner is not None:
            pruner.record(result)
        out.append(result)
    return out


def _explore_parallel(evaluate: Callable, mappings: List[ParallelismSpec],
                      workers: int, pruner: Optional["_BoundPruner"],
                      template: AMPeD, global_batch: int,
                      compiled: Optional[CompiledSweep]) -> List:
    """Fan mappings out over a process pool, in submission order.

    Work is dispatched in chunks so the pruner's incumbent (updated as
    chunks complete) can skip later mappings, mirroring the serial
    branch-and-bound.  Each worker process runs
    :func:`repro.search.compiler.warm_worker` once on startup, priming
    its operation memo and installing the parent's compiled term tables
    — without it every worker re-derives both from scratch on its first
    chunk (the cache cold-start the ``cache.*`` gauges used to show).
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.search.shm import release_shipment, ship_compiled

    out = []
    chunk_size = max(1, 4 * workers)
    shipped = compiled if (compiled is not None
                           and compiled.cache_key is not None) else None
    # Ship the term tables through shared memory when available: each
    # worker's warm-up attaches one segment instead of unpickling every
    # table (identity/pickle fallback otherwise, bit-exact either way).
    shipped = ship_compiled(shipped) if shipped is not None else None
    try:
        with ProcessPoolExecutor(
                max_workers=workers, initializer=warm_worker,
                initargs=(template, global_batch, shipped)) as pool:
            for start in range(0, len(mappings), chunk_size):
                chunk = mappings[start:start + chunk_size]
                if pruner is not None:
                    chunk = [spec for spec in chunk
                             if not pruner.should_skip(spec)]
                for result in pool.map(evaluate, chunk):
                    if pruner is not None:
                        pruner.record(result)
                    out.append(result)
    finally:
        release_shipment(shipped)
    return out


def _explore_vectorized(template: AMPeD,
                        compiled: CompiledSweep,
                        global_batch: int,
                        mappings: List[ParallelismSpec],
                        tune_microbatches: bool,
                        max_results: Optional[int]
                        ) -> List[ExplorationResult]:
    """:func:`explore`'s array-program route.

    Candidates are evaluated chunk-wise through
    :func:`repro.search.vectorized.evaluate_chunk`; candidates the
    array path cannot decide exactly (infeasible / non-finite /
    invalid) re-run through the scalar route, so results, errors and
    their ordering match the serial compiled path exactly.  Pruning is
    unnecessary: its only effect is skipping evaluations without
    changing the truncated ranking, and the array evaluation already
    covers everything.
    """
    results: List[ExplorationResult] = []
    for start in range(0, len(mappings), DEFAULT_CHUNK_CANDIDATES):
        chunk = mappings[start:start + DEFAULT_CHUNK_CANDIDATES]
        with span("dse.vectorized_eval", category="search",
                  attrs={"offset": start, "n_candidates": len(chunk),
                         "tune_microbatches": tune_microbatches}) as live:
            _, outcomes = evaluate_chunk(template, compiled, chunk,
                                         global_batch, tune_microbatches)
            fallbacks = 0
            for spec, outcome in zip(chunk, outcomes):
                if outcome is None:
                    fallbacks += 1
                    outcome = evaluate_candidate(template, spec,
                                                 global_batch,
                                                 tune_microbatches)
                if outcome.result is not None:
                    results.append(outcome.result)
            live.set_attrs(scalar_fallbacks=fallbacks)
    results.sort(key=lambda result: result.batch_time_s)
    if max_results is not None:
        results = results[:max_results]
    return results


def compute_lower_bound(amped: AMPeD, global_batch: int,
                        tune_microbatches: bool = True) -> float:
    """A compute-only lower bound on the mapping's achievable batch time.

    Evaluates the collapsed layer classes' forward + backward + weight
    update time at the *best* microbatch efficiency any candidate
    ``N_ub`` can reach (efficiency only derates compute, so the true
    compute time at the tuned ``N_ub`` is at least this), and charges
    zero communication and bubble time.  Raises :class:`MappingError`
    when no candidate yields a feasible microbatch — historically this
    returned a bare ``math.inf``, which conflated "provably infeasible"
    with "bound unknown" and made sweep-journal skip categories lie.
    """
    spec = amped.parallelism
    if tune_microbatches:
        n_ubs: Iterable[int] = microbatch_candidates(amped, global_batch)
    else:
        n_ubs = (spec.microbatches,)
    best_eff = 0.0
    for n_ub in n_ubs:
        microbatch = global_batch / (spec.dp * n_ub)
        if microbatch >= 1:
            best_eff = max(best_eff, amped.efficiency(microbatch))
    if best_eff <= 0.0:
        raise MappingError(
            f"no feasible microbatch count for batch {global_batch} "
            f"under {spec.describe()}: every candidate N_ub dices the "
            f"batch below one sequence")
    operations = build_operations(amped.model, global_batch,
                                  amped.include_embeddings)
    accelerator = amped.system.accelerator
    total = 0.0
    for cls in operations.layer_classes:
        layer = cls.representative
        total += cls.multiplicity * (
            forward_compute_time(layer, accelerator, amped.precision,
                                 best_eff)
            + backward_compute_time(layer, accelerator, amped.precision,
                                    best_eff,
                                    amped.backward_compute_multiplier)
            + weight_update_time(layer, accelerator, amped.precision,
                                 best_eff,
                                 amped.optimizer_macs_per_parameter))
    return total / spec.world_size


class _BoundPruner:
    """Branch-and-bound state shared across one :func:`explore` call.

    Tracks the ``keep`` smallest batch times seen so far; a mapping is
    skipped when its lower bound strictly exceeds the incumbent
    ``keep``-th best, which proves it cannot appear in the final
    truncated ranking.  Without a ``keep`` (``max_results is None``)
    the threshold stays infinite and nothing is pruned.

    With a ``compiled`` sweep the bound is
    :meth:`~repro.search.compiler.CompiledSweep.lower_bound` — compute
    at the best reachable efficiency *plus* the mapping's exact
    communication terms, strictly tighter than the legacy compute-only
    :func:`compute_lower_bound` whenever the mapping communicates at
    all, and used for every evaluation path so skip counters stay
    path-independent.
    """

    def __init__(self, template: AMPeD, global_batch: int,
                 tune_microbatches: bool, keep: Optional[int],
                 compiled: Optional[CompiledSweep] = None) -> None:
        self.template = template
        self.global_batch = global_batch
        self.tune_microbatches = tune_microbatches
        self.keep = keep
        self.compiled = compiled
        self._best_times: List[float] = []

    @property
    def threshold(self) -> Optional[float]:
        """The incumbent ``keep``-th best time, or ``None`` while the
        incumbent list is not full yet (distinct from an *infinite*
        bound, which would mean a provably infeasible candidate)."""
        if self.keep is None or len(self._best_times) < self.keep:
            return None
        return self._best_times[self.keep - 1]

    def skip_category(self, spec: ParallelismSpec) -> Optional[str]:
        """``SKIP_PRUNED``/``SKIP_MAPPING_INFEASIBLE`` when the mapping
        can be discarded without a full evaluation, else ``None``.

        Without an incumbent threshold no bound is computed (same work
        profile as plain exploration); infeasibility then surfaces
        through :func:`evaluate_candidate` with the same category.
        """
        threshold = self.threshold
        if threshold is None:
            return None
        try:
            if self.compiled is not None:
                if self.template.validate:
                    # replace(template, parallelism=spec) re-validates
                    # on the legacy route; keep the same category for
                    # mappings that cannot tile the system.
                    spec.validate_against(self.template.system)
                    spec.validate_against_model(
                        self.template.model.n_layers,
                        self.template.model.n_heads)
                bound = self.compiled.lower_bound(
                    spec, self.tune_microbatches)
            else:
                candidate = replace(self.template, parallelism=spec)
                bound = compute_lower_bound(candidate, self.global_batch,
                                            self.tune_microbatches)
        except MappingError:
            return SKIP_MAPPING_INFEASIBLE
        return SKIP_PRUNED if bound > threshold else None

    def should_skip(self, spec: ParallelismSpec) -> bool:
        return self.skip_category(spec) is not None

    def record(self, result: Optional[ExplorationResult]) -> None:
        if result is None:
            return
        bisect.insort(self._best_times, result.batch_time_s)
        if self.keep is not None:
            del self._best_times[self.keep:]


def _memory_feasible_candidates(candidate: AMPeD,
                                global_batch: int) -> list:
    """Microbatch counts whose resulting microbatch size fits in HBM."""
    feasible = []
    for n_ub in microbatch_candidates(candidate, global_batch):
        spec = candidate.parallelism.with_microbatches(n_ub)
        microbatch = global_batch / (spec.dp * n_ub)
        if microbatch < 1:
            continue
        if fits_in_memory(candidate.model, spec, microbatch,
                          candidate.precision,
                          candidate.system.accelerator, candidate.zero):
            feasible.append(n_ub)
    return feasible


def best_mapping(amped: AMPeD, global_batch: int,
                 **explore_kwargs) -> ExplorationResult:
    """The fastest mapping for the scenario (raises
    :class:`MappingError` if the space is empty)."""
    explore_kwargs.setdefault("max_results", 1)
    results = explore(amped, global_batch, **explore_kwargs)
    if not results:
        raise MappingError(
            f"no feasible parallelism mapping for {amped.model.name} on "
            f"{amped.system.describe()}")
    return results[0]


def pareto_front(results: List[ExplorationResult],
                 secondary=lambda result: result.breakdown.bubble
                 ) -> List[ExplorationResult]:
    """Mappings not dominated on (batch time, ``secondary``).

    Default secondary objective is bubble time (an energy proxy per
    Case Study II); any callable on :class:`ExplorationResult` works.
    """
    front = []
    for candidate in results:
        dominated = any(
            other.batch_time_s <= candidate.batch_time_s
            and secondary(other) <= secondary(candidate)
            and (other.batch_time_s < candidate.batch_time_s
                 or secondary(other) < secondary(candidate))
            for other in results)
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda result: result.batch_time_s)
    return front
