"""Zero-copy shared-memory publication of compiled term tables.

Parallel sweeps and the pre-fork serve daemon both need the same data
in many processes at once: the dense ``float64`` term tables of a
:class:`~repro.search.compiler.CompiledSweep` and the bound arrays of a
:class:`~repro.search.vectorized.BoundBatch`.  Before this module they
travelled by pickle — once per worker for the compiled tables (the pool
initializer) and once per chunk for the bound arrays — an O(tables)
copy through a pipe for every receiving process.

This module publishes them instead into POSIX shared memory
(:mod:`multiprocessing.shared_memory`), once per sweep:

- **Self-describing segments.**  One segment carries a JSON header
  (array dtypes/shapes/offsets plus named binary blobs) followed by
  64-byte-aligned payloads, so an attacher needs nothing but the
  segment *name*.  A pickled handle is a few dozen bytes regardless of
  table size.
- **Zero-copy attach.**  :meth:`SegmentHandle.attach` maps the segment
  and exposes every array as a read-only NumPy view over the shared
  pages — an O(1) ``mmap`` instead of an O(tables) unpickle.  Blobs
  (pickled keys, lean object state) are decoded by the attacher;
  compiled-sweep *dict* tables are rebuilt from the shared value
  arrays, so the transport is shared even where Python dict semantics
  force a per-process index.
- **Refcounted registry + guaranteed unlink.**  The creating process
  tracks every segment it owns with a refcount
  (:func:`retain_segment` / :func:`release_segment`); the last release
  unlinks.  ``atexit`` unlinks whatever is left on normal or
  exceptional exit (SIGINT included — the sweep runtime traps it and
  unwinds), and a crash (SIGKILL) is covered by multiprocessing's
  ``resource_tracker``, which unlinks registered-but-leaked segments
  when the process tree dies.  Forked children inherit the parent's
  mappings but never its *ownership*: an ``os.register_at_fork`` reset
  clears the child's registry view and rebinds the module lock, per
  the AMP203 concurrency contract.
- **Transparent fallback.**  Without NumPy or a usable
  ``multiprocessing.shared_memory`` (``HAVE_SHM`` is False),
  :func:`ship_compiled` returns the compiled sweep unchanged and
  :func:`share_ndarray_state` declines, so every caller falls back to
  today's pickle path with identical (bit-exact) results.

Segment names are generation-tagged and keyed on the sweep identity:
``amped-{pid:x}-{generation}-{digest}`` where ``digest`` hashes
:meth:`repro.core.model.AMPeD.sweep_identity` (or the caller's tag).
The generation counter makes rebuilds of the same sweep distinguishable
and names unique within a process; the pid scopes them across
processes.  See ``docs/performance.md`` §6 for the full protocol.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import struct
import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

try:  # Optional: absent or unusable on exotic platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without POSIX shm
    _shared_memory = None  # type: ignore[assignment]

try:  # Optional extra: repro[vectorized].
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from repro.search.compiler import CompiledSweep

#: Whether shared-memory publication is available in this process.
HAVE_SHM = _shared_memory is not None and _np is not None

#: Format tag written into every segment header.
SHM_FORMAT = "repro.search.shm/v1"

#: Segment-name prefix; the leak checks (CI, tests) match ``/dev/shm``
#: entries against it, so every segment this module creates must carry
#: it.
SHM_NAME_PREFIX = "amped-"

#: Payload alignment inside a segment — generous enough for any dtype
#: NumPy wants aligned access to.
_ALIGN = 64

_HEADER_LEN = struct.Struct("<Q")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def shm_digest(payload: object) -> str:
    """A short stable digest for segment names (``repr``-hashed, so any
    sweep-identity tuple works without being picklable)."""
    return hashlib.blake2b(repr(payload).encode(),
                           digest_size=6).hexdigest()


# ---------------------------------------------------------------------------
# Creator-side registry: refcounts + guaranteed unlink
# ---------------------------------------------------------------------------

_REGISTRY_LOCK = threading.Lock()
#: Segments *this process* created and still owns: name -> (shm, refs).
_SEGMENTS: Dict[str, list] = {}
_GENERATION = 0
_SHM_STATS = {"published": 0, "unlinked": 0, "attached": 0,
              "publish_errors": 0, "bytes_published": 0}


def _reset_registry_after_fork() -> None:
    """Forked children drop the parent's ownership view.

    A fork can land while another thread holds ``_REGISTRY_LOCK`` (the
    serve daemon publishes from handler threads), so the child rebinds
    a fresh lock; and the child must never unlink segments the parent
    still serves, so its registry starts empty — the inherited
    *mappings* stay valid, only the ownership bookkeeping resets.
    """
    global _REGISTRY_LOCK
    _REGISTRY_LOCK = threading.Lock()
    _SEGMENTS.clear()


if hasattr(os, "register_at_fork"):  # absent on some platforms
    os.register_at_fork(after_in_child=_reset_registry_after_fork)


def _next_segment_name(tag: str) -> str:
    global _GENERATION
    _GENERATION += 1
    return f"{SHM_NAME_PREFIX}{os.getpid():x}-{_GENERATION:x}-{tag}"


def retain_segment(name: str) -> bool:
    """Bump the refcount of an owned segment; False when not owned."""
    with _REGISTRY_LOCK:
        entry = _SEGMENTS.get(name)
        if entry is None:
            return False
        entry[1] += 1
        return True


def release_segment(name: str) -> bool:
    """Drop one reference; the last reference unlinks the segment.

    Idempotent across over-release and unknown names (returns False),
    so teardown paths can release unconditionally.
    """
    with _REGISTRY_LOCK:
        entry = _SEGMENTS.get(name)
        if entry is None:
            return False
        entry[1] -= 1
        if entry[1] > 0:
            return True
        del _SEGMENTS[name]
        _SHM_STATS["unlinked"] += 1
        shm = entry[0]
    _destroy(shm)
    return True


def _destroy(shm) -> None:
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - raced
        pass


def cleanup_all_segments() -> int:
    """Unlink every still-owned segment (drain / interpreter exit).

    Returns the number of segments destroyed.  Registered with
    ``atexit`` at import, so normal exits, uncaught exceptions and the
    trapped-SIGINT unwind all leave ``/dev/shm`` clean; SIGKILL is the
    resource tracker's job.
    """
    with _REGISTRY_LOCK:
        doomed = [entry[0] for entry in _SEGMENTS.values()]
        count = len(doomed)
        _SHM_STATS["unlinked"] += count
        _SEGMENTS.clear()
    for shm in doomed:
        _destroy(shm)
    return count


atexit.register(cleanup_all_segments)


def active_segments() -> List[str]:
    """Names of segments this process currently owns."""
    with _REGISTRY_LOCK:
        return sorted(_SEGMENTS)


def shm_stats() -> Dict[str, float]:
    """Publication counters plus the live-segment gauge (folded into
    ``cache.shm.*`` by :func:`repro.obs.metrics.collect_cache_metrics`)."""
    with _REGISTRY_LOCK:
        stats: Dict[str, float] = dict(_SHM_STATS)
        stats["active"] = len(_SEGMENTS)
    stats["available"] = 1 if HAVE_SHM else 0
    return stats


# ---------------------------------------------------------------------------
# Self-describing segments
# ---------------------------------------------------------------------------


class Attachment:
    """A mapped segment: read-only array views plus decoded blobs.

    Keep the attachment referenced for as long as any of its array
    views is alive — the views alias the shared pages directly (that is
    the point), so the mapping must outlive them.  Attachers never
    unlink; :meth:`close` drops this process's mapping only.
    """

    def __init__(self, shm, arrays: Dict[str, "object"],
                 blobs: Dict[str, bytes]) -> None:
        self._shm = shm
        self.name = shm.name
        self.arrays = arrays
        self.blobs = blobs

    def close(self) -> None:
        """Drop the views and the mapping (best effort — a view still
        referenced elsewhere keeps the pages mapped until GC)."""
        self.arrays = {}
        self.blobs = {}
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - exported views live
                pass


class SegmentHandle:
    """Picklable address of a published segment: name + total size.

    The segment itself is self-describing, so this is all a worker
    needs to attach — a pickled handle stays a few dozen bytes no
    matter how large the tables are.
    """

    __slots__ = ("name", "nbytes")

    def __init__(self, name: str, nbytes: int) -> None:
        self.name = name
        self.nbytes = nbytes

    def __getstate__(self) -> tuple:
        return (self.name, self.nbytes)

    def __setstate__(self, state: tuple) -> None:
        self.name, self.nbytes = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentHandle({self.name!r}, {self.nbytes})"

    def attach(self) -> Attachment:
        """Map the segment and expose its arrays as read-only views.

        O(1) in table size: one ``shm_open`` + ``mmap`` + header parse.
        Safe against a creator that has already *unlinked* the segment
        (POSIX keeps the pages alive while any mapping exists), but not
        against one that never published — ``FileNotFoundError``
        surfaces to the caller, whose pickle fallback takes over.
        """
        if not HAVE_SHM:  # pragma: no cover - guarded by callers
            raise RuntimeError("shared memory is unavailable")
        shm = _shared_memory.SharedMemory(name=self.name)
        try:
            buf = shm.buf
            (header_len,) = _HEADER_LEN.unpack_from(buf, 0)
            header = json.loads(
                bytes(buf[_HEADER_LEN.size:_HEADER_LEN.size + header_len]))
            if header.get("format") != SHM_FORMAT:
                raise ValueError(
                    f"segment {self.name!r} carries format "
                    f"{header.get('format')!r}, expected {SHM_FORMAT!r}")
            arrays: Dict[str, object] = {}
            blobs: Dict[str, bytes] = {}
            for entry in header["entries"]:
                offset = entry["offset"]
                if entry["kind"] == "blob":
                    blobs[entry["key"]] = bytes(
                        buf[offset:offset + entry["nbytes"]])
                else:
                    view = _np.frombuffer(
                        buf, dtype=_np.dtype(entry["dtype"]),
                        count=int(_np.prod(entry["shape"], dtype=_np.int64)),
                        offset=offset).reshape(entry["shape"])
                    view.flags.writeable = False
                    arrays[entry["key"]] = view
        except Exception:  # noqa: BLE001 — cleanup-then-reraise: drop the mapping on any decode failure
            shm.close()
            raise
        with _REGISTRY_LOCK:
            _SHM_STATS["attached"] += 1
        return Attachment(shm, arrays, blobs)


def publish_segment(tag: str,
                    arrays: Optional[Mapping[str, "object"]] = None,
                    blobs: Optional[Mapping[str, bytes]] = None
                    ) -> SegmentHandle:
    """Create one self-describing segment holding ``arrays`` + ``blobs``.

    The creating process owns the segment (refcount 1 in the registry);
    pair with :func:`release_segment` or rely on the atexit sweep.
    Raises when shared memory is unavailable — use the availability
    guard (:data:`HAVE_SHM`) or the higher-level helpers, which fall
    back to pickle instead.
    """
    if not HAVE_SHM:
        raise RuntimeError(
            "shared memory is unavailable (no multiprocessing."
            "shared_memory or no NumPy); use the pickle fallback")
    np = _np
    entries = []
    payloads: List[Tuple[int, object]] = []
    arrays = dict(arrays or {})
    blobs = dict(blobs or {})

    # Lay out the header last (its length depends on the offsets, which
    # depend on nothing but sizes): compute payload extents first
    # against a worst-case header allowance, then place for real.
    def _layout(start: int) -> int:
        offset = start
        entries.clear()
        payloads.clear()
        for key, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            offset = _aligned(offset)
            entries.append({"key": key, "kind": "array",
                            "dtype": contiguous.dtype.str,
                            "shape": list(contiguous.shape),
                            "offset": offset,
                            "nbytes": contiguous.nbytes})
            payloads.append((offset, contiguous))
            offset += contiguous.nbytes
        for key, blob in blobs.items():
            offset = _aligned(offset)
            entries.append({"key": key, "kind": "blob",
                            "offset": offset, "nbytes": len(blob)})
            payloads.append((offset, blob))
            offset += len(blob)
        return offset

    def _render() -> bytes:
        return json.dumps(
            {"format": SHM_FORMAT, "tag": tag, "entries": entries},
            separators=(",", ":")).encode()

    name = _next_segment_name(tag)
    # The header precedes the payloads but its length depends on the
    # payload offsets (digit counts); iterate until the allowance
    # fits — offsets are monotone in the start, so this converges in
    # one or two rounds.
    _layout(_HEADER_LEN.size)
    start = _HEADER_LEN.size + len(_render()) + 64
    while True:
        end = _layout(start)
        header = _render()
        if _HEADER_LEN.size + len(header) <= start:
            break
        start = _HEADER_LEN.size + len(header) + 64

    try:
        shm = _shared_memory.SharedMemory(name=name, create=True,
                                          size=max(end, 1))
    except Exception:  # noqa: BLE001 — count-then-reraise: segment creation failed
        with _REGISTRY_LOCK:
            _SHM_STATS["publish_errors"] += 1
        raise
    try:
        buf = shm.buf
        _HEADER_LEN.pack_into(buf, 0, len(header))
        buf[_HEADER_LEN.size:_HEADER_LEN.size + len(header)] = header
        for offset, payload in payloads:
            if isinstance(payload, (bytes, bytearray)):
                buf[offset:offset + len(payload)] = payload
            else:
                flat = payload.reshape(-1)
                target = np.frombuffer(buf, dtype=payload.dtype,
                                       count=flat.shape[0], offset=offset)
                target[:] = flat
    except Exception:  # noqa: BLE001 — cleanup-then-reraise: unlink the half-written segment
        with _REGISTRY_LOCK:
            _SHM_STATS["publish_errors"] += 1
        _destroy(shm)
        raise
    with _REGISTRY_LOCK:
        _SEGMENTS[shm.name] = [shm, 1]
        _SHM_STATS["published"] += 1
        _SHM_STATS["bytes_published"] += shm.size
    return SegmentHandle(shm.name, shm.size)


# ---------------------------------------------------------------------------
# Generic ndarray state sharing (BoundBatch / PreboundChunk transport)
# ---------------------------------------------------------------------------

#: Keys injected into shared object state to describe the array layout.
_LAYOUT_KEY = "__shm_layout__"


def share_ndarray_state(state: Dict[str, object], tag: str
                        ) -> Optional[Tuple[SegmentHandle,
                                            Dict[str, object]]]:
    """Split an object's ``__dict__`` into a shared segment + lean state.

    Top-level ``ndarray`` values and lists of ``ndarray`` values move
    into one published segment; everything else stays in the returned
    lean state, which carries the layout needed by
    :func:`restore_ndarray_state`.  Returns ``None`` when shared memory
    is unavailable or there is nothing to share — callers then pickle
    the original state unchanged.
    """
    if not HAVE_SHM:
        return None
    np = _np
    arrays: Dict[str, object] = {}
    scalars: List[str] = []
    lists: Dict[str, int] = {}
    lean = dict(state)
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[f"a:{key}"] = value
            scalars.append(key)
            del lean[key]
        elif (isinstance(value, list) and value
                and all(isinstance(item, np.ndarray) for item in value)):
            for index, item in enumerate(value):
                arrays[f"l:{key}:{index}"] = item
            lists[key] = len(value)
            del lean[key]
    if not arrays:
        return None
    handle = publish_segment(tag, arrays=arrays)
    lean[_LAYOUT_KEY] = {"arrays": scalars, "lists": lists}
    return handle, lean


def restore_ndarray_state(lean: Dict[str, object],
                          attachment: Attachment) -> Dict[str, object]:
    """Rebuild the full state from lean state + a mapped attachment.

    The returned dict holds zero-copy views over the shared pages; it
    also carries the attachment under ``_shm_attachment`` so assigning
    it to an object's ``__dict__`` pins the mapping's lifetime to the
    object.
    """
    layout = lean.pop(_LAYOUT_KEY)
    state = dict(lean)
    for key in layout["arrays"]:
        state[key] = attachment.arrays[f"a:{key}"]
    for key, count in layout["lists"].items():
        state[key] = [attachment.arrays[f"l:{key}:{index}"]
                      for index in range(count)]
    state["_shm_attachment"] = attachment
    return state


# ---------------------------------------------------------------------------
# Compiled-sweep shipping
# ---------------------------------------------------------------------------

#: Scalar term tables of a CompiledSweep: (attribute, segment key).
_SCALAR_TABLES = (("_eff", "eff"), ("_tp_intra", "tp_intra"),
                  ("_tp_inter", "tp_inter"), ("_pp", "pp"),
                  ("_moe", "moe"), ("_bubble_prefactor", "bubble"))


class CompiledShipment:
    """A compiled sweep published as dense shared tables.

    Pickles to a segment handle (a few dozen bytes); the receiving
    process rebuilds a bit-exact :class:`CompiledSweep` from the shared
    value arrays.  The segment is created once per sweep and serves
    every worker — the per-worker cost drops from unpickling the full
    tables to mapping the segment and zipping keys with shared columns.
    """

    __slots__ = ("handle",)

    def __init__(self, handle: SegmentHandle) -> None:
        self.handle = handle

    def __getstate__(self) -> SegmentHandle:
        return self.handle

    def __setstate__(self, handle: SegmentHandle) -> None:
        self.handle = handle

    def attach_compiled(self) -> "CompiledSweep":
        """Rebuild the compiled sweep from the shared segment.

        Dict tables are reconstructed by zipping the pickled key lists
        with the shared ``float64`` columns — values come straight off
        the shared pages, so two attachers can never disagree with the
        creator bit for bit.  The mapping is dropped once the dicts are
        built (nothing retains a view), so attachers hold no segment
        reference afterwards.
        """
        from repro.search.compiler import CompiledSweep

        attachment = self.handle.attach()
        try:
            lean = pickle.loads(attachment.blobs["lean"])
            keys = pickle.loads(attachment.blobs["keys"])
            # ``.tolist()`` copies values out of the shared pages; no
            # local may alias ``attachment.arrays``, so close() below
            # can actually unmap (views die with the attachment dict).
            compiled = CompiledSweep.__new__(CompiledSweep)
            compiled.__dict__.update(lean)
            for attr, key in _SCALAR_TABLES:
                setattr(compiled, attr,
                        dict(zip(keys[key],
                                 attachment.arrays[key].tolist())))
            classes = []
            for index, (layer, weight) in enumerate(lean["classes"]):
                grad = dict(zip(
                    keys[f"grad{index}"],
                    map(tuple, attachment.arrays[f"grad{index}"].tolist())))
                zero = dict(zip(
                    keys[f"zero{index}"],
                    attachment.arrays[f"zero{index}"].tolist()))
                comp = dict(zip(
                    attachment.arrays[f"comp_keys{index}"].tolist(),
                    map(tuple, attachment.arrays[f"comp{index}"].tolist())))
                classes.append((layer, weight, grad, zero, comp))
            compiled.classes = classes
            return compiled
        finally:
            attachment.close()


def ship_compiled(compiled: "CompiledSweep") -> object:
    """The cheapest cross-process form of ``compiled``.

    With shared memory available, publishes the term tables once and
    returns a :class:`CompiledShipment`; otherwise (or on any publish
    failure) returns ``compiled`` itself, which pickles exactly as
    before.  Pair with :func:`release_shipment` when the sweep drains.
    """
    if not HAVE_SHM:
        return compiled
    np = _np
    try:
        tag = shm_digest(compiled.cache_key
                         if compiled.cache_key is not None
                         else id(compiled))
        arrays: Dict[str, object] = {}
        keys: Dict[str, list] = {}
        for attr, key in _SCALAR_TABLES:
            table = getattr(compiled, attr)
            keys[key] = list(table.keys())
            arrays[key] = np.fromiter(table.values(), dtype=np.float64,
                                      count=len(table))
        lean = dict(compiled.__dict__)
        lean["classes"] = [(layer, weight)
                           for layer, weight, *_ in compiled.classes]
        for attr, _ in _SCALAR_TABLES:
            lean.pop(attr, None)
        for index, (_, _, grad, zero, comp) in enumerate(compiled.classes):
            keys[f"grad{index}"] = list(grad.keys())
            arrays[f"grad{index}"] = np.asarray(
                list(grad.values()), dtype=np.float64).reshape(-1, 2)
            keys[f"zero{index}"] = list(zero.keys())
            arrays[f"zero{index}"] = np.fromiter(
                zero.values(), dtype=np.float64, count=len(zero))
            arrays[f"comp_keys{index}"] = np.fromiter(
                comp.keys(), dtype=np.float64, count=len(comp))
            arrays[f"comp{index}"] = np.asarray(
                list(comp.values()), dtype=np.float64).reshape(-1, 3)
        blobs = {"lean": pickle.dumps(lean, pickle.HIGHEST_PROTOCOL),
                 "keys": pickle.dumps(keys, pickle.HIGHEST_PROTOCOL)}
        handle = publish_segment(tag, arrays=arrays, blobs=blobs)
    except Exception:  # noqa: BLE001 — fallback boundary: any publish
        # failure (segment limits, exotic key types) degrades to the
        # pickle path rather than failing the sweep.
        return compiled
    return CompiledShipment(handle)


def release_shipment(shipped: object) -> None:
    """Release the segment behind :func:`ship_compiled`'s result.

    A no-op for the pickle fallback (the compiled sweep itself) and for
    already-released shipments.
    """
    if isinstance(shipped, CompiledShipment):
        release_segment(shipped.handle.name)


def attach_compiled_segment(name: str) -> "CompiledSweep":
    """Rebuild a compiled sweep from a peer's published segment name —
    the serve-worker exchange path (the name travels through the
    control block, not through pickle)."""
    return CompiledShipment(SegmentHandle(name, 0)).attach_compiled()


def leaked_segment_names(root: str = "/dev/shm") -> List[str]:
    """``/dev/shm`` entries carrying our prefix — the leak check used
    by tests and CI after suites that exercise crash paths."""
    try:
        names = os.listdir(root)
    except OSError:  # pragma: no cover - non-POSIX or masked /dev/shm
        return []
    return sorted(name for name in names
                  if name.startswith(SHM_NAME_PREFIX))


def iter_owned(names: Iterable[str]) -> List[str]:
    """The subset of ``names`` this process owns (testing aid)."""
    with _REGISTRY_LOCK:
        return [name for name in names if name in _SEGMENTS]
