"""The paper's Case-Study-I conclusions, codified as mapping heuristics.

§VI-E's conclusions ❶–❺ amount to a recipe:

1. fill the node with tensor parallelism (it parallelizes without
   hurting microbatch efficiency but is bandwidth-hungry — conclusion ❷
   and ❺);
2. never run TP across nodes (conclusion ❷);
3. use DP across nodes when the inter-node fabric is reasonably
   provisioned, PP when it is not (conclusions ❸, ❹ and Case Study II's
   refinement);
4. keep batch (hence microbatch) sizes large (conclusion ❶).

:func:`recommend_mapping` applies the recipe and explains itself, and
the tests cross-check that the recommendation lands within a small
factor of the exhaustive-search optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hardware.system import SystemSpec
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig
from repro.units import divisors

#: Below this effective gradient-reduce bandwidth (per-accelerator NIC
#: share times the TP degree that shards the gradients) the DP
#: all-reduce starts losing to pipeline point-to-point traffic.  The
#: value places the Case Study II crossover where Fig. 10 shows it:
#: PP wins for 1-2 EDR-NIC nodes, DP for 4-8.
LOW_BANDWIDTH_THRESHOLD_BITS_PER_S = 4e11


@dataclass(frozen=True)
class MappingRecommendation:
    """A recommended mapping plus the reasoning that produced it."""

    parallelism: ParallelismSpec
    rationale: Tuple[str, ...]

    def explain(self) -> str:
        """The rationale as a printable bullet list."""
        return "\n".join(f"- {line}" for line in self.rationale)


def recommend_mapping(model: TransformerConfig,
                      system: SystemSpec) -> MappingRecommendation:
    """Apply the paper's conclusions to produce a mapping.

    The recommendation is heuristic — the exhaustive explorer in
    :mod:`repro.search.dse` is the ground truth — but it lands on the
    paper's preferred shape (TP intra, DP or PP inter) in one step.
    """
    rationale: List[str] = []
    node_size = system.node.n_accelerators

    tp_intra = _largest_supported_tp(node_size, model.n_heads)
    if tp_intra == node_size:
        rationale.append(
            f"TP fills the node (degree {tp_intra}): high intra-node "
            f"bandwidth absorbs the two all-reduces per layer "
            f"(conclusion 5).")
    else:
        rationale.append(
            f"TP limited to {tp_intra} of {node_size} accelerators per "
            f"node by the model's {model.n_heads} attention heads.")
    dp_intra = node_size // tp_intra
    if dp_intra > 1:
        rationale.append(
            f"Remaining {dp_intra} intra-node accelerators go to DP.")

    per_accel_bw = system.node.inter_bandwidth_per_accelerator_bits_per_s
    # TP shards the gradients, so the all-reduce effectively enjoys
    # tp_intra times the per-accelerator NIC share.
    gradient_bw = per_accel_bw * tp_intra
    if gradient_bw >= LOW_BANDWIDTH_THRESHOLD_BITS_PER_S:
        inter = ParallelismSpec(
            tp_intra=tp_intra, dp_intra=dp_intra,
            dp_inter=system.n_nodes)
        rationale.append(
            f"Effective gradient-reduce bandwidth ({gradient_bw:.3g} "
            f"bit/s) is healthy: DP across nodes — its all-reduce is "
            f"~2x cheaper than pipeline bubbles (conclusion 4).")
        return MappingRecommendation(inter, tuple(rationale))

    pp_inter = _largest_supported_pp(system.n_nodes, model.n_layers)
    dp_inter = system.n_nodes // pp_inter
    inter = ParallelismSpec(
        tp_intra=tp_intra, dp_intra=dp_intra,
        pp_inter=pp_inter, dp_inter=dp_inter)
    rationale.append(
        f"Effective gradient-reduce bandwidth ({gradient_bw:.3g} "
        f"bit/s) is scarce: PP's point-to-point traffic beats DP's "
        f"all-reduce (Case Study II), so PP={pp_inter} across nodes"
        + (f" with DP={dp_inter} for the rest." if dp_inter > 1 else "."))
    return MappingRecommendation(inter, tuple(rationale))


def _largest_supported_tp(node_size: int, n_heads: int) -> int:
    """Largest divisor of the node size that also divides the heads."""
    best = 1
    for degree in divisors(node_size):
        if n_heads % degree == 0:
            best = max(best, degree)
    return best


def _largest_supported_pp(n_nodes: int, n_layers: int) -> int:
    """Largest divisor of the node count within the layer budget."""
    best = 1
    for degree in divisors(n_nodes):
        if degree <= n_layers:
            best = max(best, degree)
    return best
