"""Trace ingestion: read measured timings back into the model's terms.

:mod:`repro.obs.export` writes Chrome trace-event JSON; this module is
the other half of the observability loop — it reads such a file (or a
simple CSV timing format) back into structured *observations* the
fitting layer (:mod:`repro.fitting.trace_fit`) and the drift reporter
(:mod:`repro.reporting.drift`) consume:

- :func:`load_chrome_trace` — strict, stdlib-only reader for the exact
  ``{"traceEvents": [...]}`` envelope ``repro.obs.export`` emits and
  ``python -m repro.obs`` validates.  Span records are reconstructed
  (``span_id``/``parent_id`` linkage, track names from ``thread_name``
  metadata, microsecond → second conversion) into an
  :class:`IngestedTrace`.
- :func:`load_csv_timings` — a minimal CSV schema
  (``term,seconds[,model,mapping,global_batch,observation,...]``) for
  profiles that never went through the tracer (e.g. hand-reduced
  framework logs); see ``docs/calibration.md`` for the column contract.

Both raise :class:`~repro.errors.IngestError` carrying the file and the
offending event index / line number — ``amped calibrate`` maps that to
a structured exit 2, never a traceback.

An :class:`IngestedTrace` exposes the span taxonomy PR 4 stamped on
emissions:

- :meth:`IngestedTrace.observations` — one
  :class:`EstimateObservation` per ``model.estimate_batch`` emission,
  with its ``term.*`` children reduced to a per-term seconds dict and
  the mapping reconstructed from the structured degree attrs;
- :meth:`IngestedTrace.collectives` — ``collective.*`` spans with
  their algorithm / payload-bytes / steps attrs;
- :meth:`IngestedTrace.stage_tracks` — the per-stage pipeline schedule
  tracks ``simulate_pipeline`` emits.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import IngestError, require_finite_fields
from repro.obs.trace import SpanRecord
from repro.parallelism.spec import ParallelismSpec
from repro.units import Seconds, microseconds_to_seconds

#: The breakdown component names a ``model.estimate_batch`` emission
#: tiles into ``term.<name>`` children (declaration order of
#: :class:`~repro.core.breakdown.TrainingTimeBreakdown`).
TERM_NAMES: Tuple[str, ...] = (
    "compute_forward", "compute_backward", "compute_weight_update",
    "comm_tp_intra", "comm_tp_inter", "comm_pp", "comm_moe",
    "comm_gradient_intra", "comm_gradient_inter", "comm_zero",
    "bubble")

#: The structured mapping attrs an estimate emission carries (added in
#: this PR so ingestion can rebuild the exact ParallelismSpec).
_DEGREE_ATTRS = ("tp_intra", "tp_inter", "pp_intra", "pp_inter",
                 "dp_intra", "dp_inter")

#: Required CSV columns; every further column is kept as metadata.
CSV_REQUIRED_COLUMNS = ("term", "seconds")


@dataclass(frozen=True)
class EstimateObservation:
    """One measured Eq. 1 evaluation: per-term seconds plus identity.

    Attributes
    ----------
    terms:
        Measured seconds per breakdown component (``compute_forward``,
        ``comm_pp``, ...).  For a trace this is each ``term.*`` child's
        duration; terms may be missing when the source CSV only
        profiled a subset.
    model, global_batch, evaluation_path:
        Identity attrs from the parent emission (``None``/0 when the
        source did not carry them).
    mapping:
        The reconstructed :class:`ParallelismSpec`, when the source
        carried the structured degree attrs (or parseable CSV
        columns); ``None`` otherwise — fitting then requires the
        caller to supply the mapping out of band.
    total_s:
        The parent emission's duration (the modeled batch time at
        recording; for CSVs, the sum of the term rows).
    source:
        ``"<path>#<ordinal>"`` provenance string for error messages.
    """

    terms: Mapping[str, Seconds]
    model: Optional[str] = None
    global_batch: int = 0
    evaluation_path: Optional[str] = None
    mapping: Optional[ParallelismSpec] = None
    total_s: Seconds = 0.0
    source: str = ""

    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def term_sum_s(self) -> Seconds:
        """Sum of every measured term (should match ``total_s`` for
        traces emitted by this library)."""
        return sum(self.terms.values())


@dataclass(frozen=True)
class CollectiveSample:
    """One ``collective.*`` span with its cost attrs."""

    name: str
    algorithm: str
    n_ranks: int
    payload_bytes: float
    steps: int
    modeled_time_s: Seconds
    source: str = ""

    def __post_init__(self) -> None:
        require_finite_fields(self)


@dataclass(frozen=True)
class StageTrack:
    """One pipeline-stage schedule track: its named task events."""

    track: str
    events: Tuple[SpanRecord, ...]

    @property
    def busy_s(self) -> Seconds:
        """Total task time on this stage's timeline."""
        return sum(event.duration_s for event in self.events)


@dataclass
class IngestedTrace:
    """A Chrome trace read back into span records and taxonomy views."""

    path: str
    records: List[SpanRecord] = field(default_factory=list)

    # -- taxonomy views ------------------------------------------------------

    def observations(self) -> List[EstimateObservation]:
        """Every ``model.estimate_batch`` emission as an observation."""
        children: Dict[int, Dict[str, float]] = {}
        parents: List[SpanRecord] = []
        for record in self.records:
            if record.name == "model.estimate_batch":
                parents.append(record)
            elif record.name.startswith("term.") \
                    and record.parent_id is not None:
                bucket = children.setdefault(record.parent_id, {})
                term = record.name[len("term."):]
                # Term children stamp the exact modeled seconds as an
                # attr; the event's dur went through the microsecond
                # encoding and can be an ulp off, so prefer the attr.
                exact = record.attrs.get("seconds")
                value = exact if isinstance(exact, (int, float)) \
                    and not isinstance(exact, bool) \
                    and math.isfinite(exact) else record.duration_s
                bucket[term] = bucket.get(term, 0.0) + value
        observations = []
        for ordinal, parent in enumerate(parents):
            terms = children.get(parent.span_id, {})
            attrs = parent.attrs
            observations.append(EstimateObservation(
                terms=terms,
                model=attrs.get("model"),
                global_batch=int(attrs.get("global_batch", 0) or 0),
                evaluation_path=attrs.get("evaluation_path"),
                mapping=_mapping_from_attrs(attrs),
                total_s=parent.duration_s,
                source=f"{self.path}#{ordinal}",
            ))
        return observations

    def collectives(self) -> List[CollectiveSample]:
        """Every ``collective.*`` span carrying the cost-attr taxonomy."""
        samples = []
        for ordinal, record in enumerate(self.records):
            if not record.name.startswith("collective."):
                continue
            attrs = record.attrs
            if "algorithm" not in attrs:
                continue  # a wall-clock shell without cost attrs
            samples.append(CollectiveSample(
                name=record.name,
                algorithm=str(attrs["algorithm"]),
                n_ranks=int(attrs.get("n_ranks", 0) or 0),
                payload_bytes=float(attrs.get("payload_bytes", 0.0)
                                    or 0.0),
                steps=int(attrs.get("steps", 0) or 0),
                modeled_time_s=float(attrs.get("modeled_time_s", 0.0)
                                     or 0.0),
                source=f"{self.path}#{ordinal}",
            ))
        return samples

    def stage_tracks(self, prefix: str = "pipeline.stage"
                     ) -> List[StageTrack]:
        """The per-stage schedule tracks, one :class:`StageTrack` per
        distinct ``pipeline.stage*`` timeline."""
        by_track: Dict[str, List[SpanRecord]] = {}
        for record in self.records:
            if record.track and record.track.startswith(prefix):
                by_track.setdefault(record.track, []).append(record)
        return [StageTrack(track=name,
                           events=tuple(sorted(
                               events, key=lambda r: (r.start_s,
                                                      r.span_id))))
                for name, events in sorted(by_track.items())]


def _mapping_from_attrs(attrs: Mapping[str, Any]
                        ) -> Optional[ParallelismSpec]:
    """Rebuild the ParallelismSpec from an emission's structured degree
    attrs; ``None`` when any degree is missing (older traces)."""
    if not all(key in attrs for key in _DEGREE_ATTRS):
        return None
    try:
        degrees = {key: int(attrs[key]) for key in _DEGREE_ATTRS}
        n_microbatches = attrs.get("n_microbatches")
        if n_microbatches is not None:
            degrees["n_microbatches"] = int(n_microbatches)
        return ParallelismSpec(**degrees)
    except (TypeError, ValueError) as error:
        raise IngestError(
            f"estimate emission carries unusable mapping attrs "
            f"({error})") from error


# ---------------------------------------------------------------------------
# Chrome trace reader
# ---------------------------------------------------------------------------


def load_chrome_trace(path: "str | Path") -> IngestedTrace:
    """Read a Chrome trace-event JSON file into an
    :class:`IngestedTrace`.

    Strict by design: the envelope, per-event required keys, numeric
    sanity of ``ts``/``dur`` and the ``span_id`` linkage are all
    checked, and every failure is an :class:`~repro.errors.IngestError`
    naming the file and the zero-based event index.
    """
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as error:
        raise IngestError(f"cannot read trace ({error})",
                          path=str(target)) from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise IngestError(f"not valid JSON ({error})",
                          path=str(target)) from error
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise IngestError(
            "expected an object with a 'traceEvents' array",
            path=str(target))
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise IngestError("'traceEvents' must be an array",
                          path=str(target))

    # Pass 1: thread_name metadata maps (pid, tid) rows back to the
    # virtual track names the exporter assigned.
    tracks: Dict[Tuple[int, int], str] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise IngestError("event is not an object",
                              path=str(target), offset=position)
        if event.get("ph") != "M":
            continue
        if event.get("name") != "thread_name":
            continue
        args = event.get("args")
        label = args.get("name") if isinstance(args, dict) else None
        if not isinstance(label, str):
            raise IngestError(
                "thread_name metadata event lacks args.name",
                path=str(target), offset=position)
        try:
            tracks[(int(event["pid"]), int(event["tid"]))] = label
        except (KeyError, TypeError, ValueError) as error:
            raise IngestError(
                f"thread_name metadata event has unusable pid/tid "
                f"({error})", path=str(target),
                offset=position) from error

    # Pass 2: complete events become span records.
    records: List[SpanRecord] = []
    seen_ids: Dict[int, int] = {}
    for position, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise IngestError(
                f"unsupported event phase {phase!r} (the exporter only "
                f"writes complete 'X' and metadata 'M' events)",
                path=str(target), offset=position)
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                raise IngestError(
                    f"event {event.get('name')!r} is missing required "
                    f"key {key!r}", path=str(target), offset=position)
        for key in ("ts", "dur"):
            value = event[key]
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)) \
                    or not math.isfinite(value) or value < 0:
                raise IngestError(
                    f"event {event['name']!r} has invalid "
                    f"{key}={value!r} (need a finite non-negative "
                    f"number of microseconds)",
                    path=str(target), offset=position)
        args = event.get("args")
        attrs: Dict[str, Any] = dict(args) if isinstance(args, dict) \
            else {}
        span_id = attrs.pop("span_id", None)
        parent_id = attrs.pop("parent_id", None)
        if span_id is None:
            # Foreign traces (a profiler that never went through
            # repro.obs) have no linkage; synthesize stable ids so the
            # record set is still walkable as a flat forest.
            span_id = -(position + 1)
        for label, value in (("span_id", span_id),
                             ("parent_id", parent_id)):
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)):
                raise IngestError(
                    f"event {event['name']!r} has non-integer "
                    f"{label}={value!r}", path=str(target),
                    offset=position)
        if span_id in seen_ids:
            raise IngestError(
                f"duplicate span_id {span_id} (first used by event "
                f"{seen_ids[span_id]})", path=str(target),
                offset=position)
        seen_ids[span_id] = position
        pid = int(event["pid"])
        tid = int(event["tid"])
        label = tracks.get((pid, tid))
        track = None
        thread_id = tid
        if label is not None:
            if label.startswith("thread "):
                try:
                    thread_id = int(label[len("thread "):])
                except ValueError:
                    track = label
            else:
                track = label
        records.append(SpanRecord(
            name=str(event["name"]),
            category=str(event.get("cat", "")),
            start_s=microseconds_to_seconds(event["ts"]),
            duration_s=microseconds_to_seconds(event["dur"]),
            pid=pid,
            thread_id=thread_id,
            span_id=span_id,
            parent_id=parent_id,
            track=track,
            attrs=attrs,
        ))
    for position, record in enumerate(records):
        if record.parent_id is not None \
                and record.parent_id not in seen_ids:
            raise IngestError(
                f"event {record.name!r} references unknown parent_id "
                f"{record.parent_id}", path=str(target),
                offset=seen_ids[record.span_id])
    return IngestedTrace(path=str(target), records=records)


# ---------------------------------------------------------------------------
# CSV reader
# ---------------------------------------------------------------------------


def load_csv_timings(path: "str | Path") -> List[EstimateObservation]:
    """Read measured per-term timings from a CSV file.

    Schema (``docs/calibration.md`` §2): a header row with at least
    ``term`` and ``seconds``; optional ``model``, ``mapping`` (ignored
    — informational), ``tp``/``pp``/``dp`` totals, ``global_batch``,
    ``n_microbatches`` and ``observation`` columns.  Rows sharing an
    ``observation`` value (default ``"0"``) are grouped into one
    :class:`EstimateObservation`; a mapping is attached when the
    ``tp``/``pp``/``dp`` columns are present (placed intra-node first,
    single-node semantics — multi-node CSVs should carry the six split
    degrees ``tp_intra``..``dp_inter`` instead).
    """
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as error:
        raise IngestError(f"cannot read CSV ({error})",
                          path=str(target)) from error
    reader = csv.DictReader(text.splitlines())
    if reader.fieldnames is None:
        raise IngestError("CSV file is empty (no header row)",
                          path=str(target))
    header = [name.strip() for name in reader.fieldnames]
    for column in CSV_REQUIRED_COLUMNS:
        if column not in header:
            raise IngestError(
                f"CSV header {header} is missing required column "
                f"{column!r}", path=str(target), offset=1)

    groups: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for line, row in enumerate(reader, start=2):
        cleaned = {(key.strip() if key else key):
                   (value.strip() if isinstance(value, str) else value)
                   for key, value in row.items()}
        term = cleaned.get("term") or ""
        if not term:
            raise IngestError("row has an empty 'term'",
                              path=str(target), offset=line)
        try:
            seconds = float(cleaned.get("seconds") or "")
        except ValueError:
            raise IngestError(
                f"row has non-numeric seconds="
                f"{cleaned.get('seconds')!r}", path=str(target),
                offset=line) from None
        if not math.isfinite(seconds) or seconds < 0:
            raise IngestError(
                f"row has invalid seconds={seconds!r} (need finite "
                f"and non-negative)", path=str(target), offset=line)
        key = cleaned.get("observation") or "0"
        group = groups.get(key)
        if group is None:
            group = {"terms": {}, "meta": {}, "line": line}
            groups[key] = group
            order.append(key)
        if term in group["terms"]:
            raise IngestError(
                f"observation {key!r} lists term {term!r} twice",
                path=str(target), offset=line)
        group["terms"][term] = seconds
        for meta_key in ("model", "global_batch", "tp", "pp", "dp",
                         "n_microbatches", "tp_intra", "tp_inter",
                         "pp_intra", "pp_inter", "dp_intra",
                         "dp_inter"):
            value = cleaned.get(meta_key)
            if value in (None, ""):
                continue
            previous = group["meta"].get(meta_key)
            if previous is not None and previous != value:
                raise IngestError(
                    f"observation {key!r} has conflicting "
                    f"{meta_key} values ({previous!r} vs {value!r})",
                    path=str(target), offset=line)
            group["meta"][meta_key] = value

    observations = []
    for key in order:
        group = groups[key]
        meta = group["meta"]
        observations.append(EstimateObservation(
            terms=dict(group["terms"]),
            model=meta.get("model"),
            global_batch=_int_meta(meta, "global_batch", target,
                                   group["line"]),
            evaluation_path=None,
            mapping=_mapping_from_csv_meta(meta, target, group["line"]),
            total_s=sum(group["terms"].values()),
            source=f"{target}#{key}",
        ))
    if not observations:
        raise IngestError("CSV file holds no timing rows",
                          path=str(target))
    return observations


def _int_meta(meta: Mapping[str, str], key: str, target: Path,
              line: int) -> int:
    value = meta.get(key)
    if value is None:
        return 0
    try:
        return int(value)
    except ValueError:
        raise IngestError(
            f"observation has non-integer {key}={value!r}",
            path=str(target), offset=line) from None


def _mapping_from_csv_meta(meta: Mapping[str, str], target: Path,
                           line: int) -> Optional[ParallelismSpec]:
    """A ParallelismSpec from either the six split-degree columns or
    the tp/pp/dp totals (single-node placement)."""
    def int_or_raise(key: str) -> int:
        try:
            return int(meta[key])
        except ValueError:
            raise IngestError(
                f"observation has non-integer {key}={meta[key]!r}",
                path=str(target), offset=line) from None

    n_microbatches = None
    if meta.get("n_microbatches") is not None:
        n_microbatches = int_or_raise("n_microbatches")
    if all(key in meta for key in _DEGREE_ATTRS):
        degrees = {key: int_or_raise(key) for key in _DEGREE_ATTRS}
        return ParallelismSpec(n_microbatches=n_microbatches,
                               **degrees)
    if all(key in meta for key in ("tp", "pp", "dp")):
        return ParallelismSpec(
            tp_intra=int_or_raise("tp"), pp_intra=int_or_raise("pp"),
            dp_intra=int_or_raise("dp"),
            n_microbatches=n_microbatches)
    return None


def load_observations(trace_path: "Optional[str | Path]" = None,
                      csv_path: "Optional[str | Path]" = None
                      ) -> List[EstimateObservation]:
    """Observations from a trace, a CSV, or both (concatenated in
    argument order) — the ``amped calibrate`` entry helper."""
    if trace_path is None and csv_path is None:
        raise IngestError(
            "nothing to ingest: provide a trace and/or a CSV file")
    observations: List[EstimateObservation] = []
    if trace_path is not None:
        observations.extend(load_chrome_trace(trace_path).observations())
    if csv_path is not None:
        observations.extend(load_csv_timings(csv_path))
    return observations
