"""Logging configuration for the CLI and library diagnostics.

Two logger trees, one knob (``--log-level``):

- ``repro.cli`` — the CLI's user-facing output.  Messages below ERROR
  go to stdout bare (``%(message)s``), ERROR and above go to stderr,
  so at the default ``info`` level the CLI's output is byte-identical
  to the historical ``print()`` behaviour while ``--log-level
  warning`` silences the tables without touching errors.
- ``repro`` — library diagnostics (e.g. the resilient sweep runtime's
  warnings).  These go to stderr with a ``LEVEL logger: message``
  prefix and never mix into parseable stdout.

Handlers resolve ``sys.stdout`` / ``sys.stderr`` at *emit* time rather
than capturing them at configuration time, so pytest's ``capsys`` and
any other stream redirection keep working.  ``configure_logging`` is
idempotent: it tags its handlers and replaces them on
reconfiguration, so repeated ``main()`` calls never stack duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import Callable, Dict, List, TextIO

from repro.errors import ConfigurationError

#: Accepted ``--log-level`` values, mapped to stdlib levels.
LOG_LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: Attribute marking handlers owned by :func:`configure_logging`.
_HANDLER_MARK = "_repro_obs_handler"


class _DynamicStreamHandler(logging.StreamHandler):
    """A stream handler that re-resolves its target stream per record."""

    def __init__(self, resolve: Callable[[], TextIO]) -> None:
        super().__init__(resolve())
        self._resolve = resolve

    def emit(self, record: logging.LogRecord) -> None:
        self.stream = self._resolve()
        super().emit(record)


class _BelowErrorFilter(logging.Filter):
    """Pass only records below ERROR (the stdout side of the split)."""

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < logging.ERROR


def _replace_handlers(logger: logging.Logger,
                      handlers: List[logging.Handler]) -> None:
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    for handler in handlers:
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)


def configure_logging(level: str = "info") -> None:
    """Install the CLI/diagnostic logging split at ``level``."""
    if level not in LOG_LEVELS:
        raise ConfigurationError(
            f"unknown log level {level!r}; choose from "
            f"{sorted(LOG_LEVELS)}")
    numeric = LOG_LEVELS[level]

    out_handler = _DynamicStreamHandler(lambda: sys.stdout)
    out_handler.setFormatter(logging.Formatter("%(message)s"))
    out_handler.addFilter(_BelowErrorFilter())
    err_handler = _DynamicStreamHandler(lambda: sys.stderr)
    err_handler.setFormatter(logging.Formatter("%(message)s"))
    err_handler.setLevel(logging.ERROR)
    cli = logging.getLogger("repro.cli")
    cli.propagate = False
    cli.setLevel(numeric)
    _replace_handlers(cli, [out_handler, err_handler])

    diag_handler = _DynamicStreamHandler(lambda: sys.stderr)
    diag_handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    diag = logging.getLogger("repro")
    diag.setLevel(numeric)
    _replace_handlers(diag, [diag_handler])
