"""Observability subsystem: span tracing, metrics, and exporters.

Three pieces, all dependency-free (stdlib only):

- :mod:`repro.obs.trace` — a nestable, thread- and process-aware span
  tracer with near-zero overhead when disabled, plus virtual
  (modeled-time) events so the analytical timeline (Eq. 1 terms,
  simulated pipeline schedules) can be inspected in the same viewers
  as wall-clock spans.
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry that
  also absorbs the operation- and collective-cache statistics and the
  sweep coverage counters.
- :mod:`repro.obs.export` — Chrome trace-event / Perfetto and JSON
  span-tree exporters with validators; ``python -m repro.obs FILE``
  validates artifacts from the command line.

See ``docs/observability.md`` for naming conventions and a Perfetto
walkthrough.
"""

from repro.obs.export import (
    detect_payload_kind,
    span_tree,
    to_chrome_trace,
    validate_chrome_trace,
    validate_metrics_snapshot,
    write_chrome_trace,
    write_metrics_snapshot,
    write_span_tree,
)
from repro.obs.logs import LOG_LEVELS, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_cache_metrics,
    get_metrics,
    reset_metrics,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    emit_component_events,
    get_tracer,
    span,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "collect_cache_metrics",
    "configure_logging",
    "detect_payload_kind",
    "emit_component_events",
    "get_metrics",
    "get_tracer",
    "reset_metrics",
    "span",
    "span_tree",
    "to_chrome_trace",
    "traced",
    "validate_chrome_trace",
    "validate_metrics_snapshot",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "write_span_tree",
]
