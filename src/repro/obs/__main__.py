"""Schema validation entry point: ``python -m repro.obs FILE [...]``.

Auto-detects whether each file is a Chrome trace-event document or a
metrics snapshot, validates it, and exits non-zero on the first
failure — the CI observability smoke step runs this over the artifacts
an instrumented sweep just wrote.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import (
    detect_payload_kind,
    load_json,
    validate_chrome_trace,
    validate_metrics_snapshot,
)

_VALIDATORS = {
    "trace": validate_chrome_trace,
    "metrics": validate_metrics_snapshot,
}


def validate_file(path: str) -> str:
    """Validate one JSON artifact; returns its detected kind.

    Raises :class:`ValueError` for unparseable, unrecognized, or
    schema-violating content and :class:`OSError` for unreadable paths.
    """
    try:
        payload = load_json(path)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from error
    kind = detect_payload_kind(payload)
    if kind is None:
        raise ValueError(
            f"{path}: neither a Chrome trace (traceEvents) nor a "
            "metrics snapshot (counters/gauges/histograms)")
    try:
        _VALIDATORS[kind](payload)
    except ValueError as error:
        raise ValueError(f"{path}: invalid {kind}: {error}") from error
    return kind


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate observability artifacts (Chrome traces, "
                    "metrics snapshots).")
    parser.add_argument("files", nargs="+",
                        help="JSON files to validate")
    args = parser.parse_args(argv)
    for path in args.files:
        try:
            kind = validate_file(path)
        except (OSError, ValueError) as error:
            print(f"FAIL {error}", file=sys.stderr)
            return 1
        print(f"ok {path} ({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
