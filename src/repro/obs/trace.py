"""Zero-dependency span tracer for the AMPeD reproduction.

The tracer records two kinds of timing data on a shared timeline:

- **wall-clock spans** — ``with span("collective.allreduce", ...)``
  around real work, measured with :func:`time.perf_counter`; spans nest
  through a thread-local stack, so a span opened inside another span
  records its parent, and every record carries the process id and
  thread id it was produced on;
- **virtual events** — :meth:`Tracer.add_event` records *modeled* time
  (an Eq. 1 term's seconds, a simulated pipeline task's schedule slot)
  with an explicit start and duration on a named track, so the model's
  internal timeline can be inspected next to the wall-clock one.

The default tracer is **disabled**: :func:`span` then returns a shared
no-op context manager and :meth:`Tracer.add_event` returns ``None``
without allocating, so instrumentation left in hot paths costs one
attribute check (the ``BENCH_obs.json`` overhead guard keeps this
honest).  Exporters for Chrome ``chrome://tracing`` / Perfetto and for
nested JSON span trees live in :mod:`repro.obs.export`; naming
conventions are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import functools
import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, require_finite_fields
from repro.units import Seconds


@dataclass(frozen=True)
class SpanRecord:
    """One completed span or virtual event.

    Attributes
    ----------
    name:
        Dotted lowercase identifier (``"collective.ring_allreduce"``).
    category:
        Coarse grouping for trace viewers (``"model"``, ``"pipeline"``,
        ``"collective"``, ``"search"``, ``"cli"``).
    start_s, duration_s:
        Start and extent in seconds.  Wall-clock spans measure from the
        tracer's epoch (:meth:`Tracer.enable` resets it); virtual
        events carry modeled time and start at whatever the emitter
        chose.
    pid, thread_id:
        Process and thread the record was produced on.
    track:
        Explicit timeline name for virtual events; ``None`` for
        wall-clock spans (which live on their thread's timeline).
    span_id, parent_id:
        Tree linkage; ``parent_id`` is ``None`` for roots.
    attrs:
        Free-form attributes (payload bytes, algorithm, mapping, ...).
    """

    name: str
    category: str
    start_s: Seconds
    duration_s: Seconds
    pid: int
    thread_id: int
    span_id: int
    parent_id: Optional[int] = None
    track: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Records are constructed once per span on the tracing hot path,
        # so the AMP005 finiteness guard is inlined: one isfinite() per
        # numeric field, falling back to the generic walker (which
        # carries the precise per-field error message, and skips
        # non-numeric values) only when something looks wrong.
        try:
            finite = (math.isfinite(self.start_s)
                      and math.isfinite(self.duration_s)
                      and math.isfinite(self.pid)
                      and math.isfinite(self.thread_id)
                      and math.isfinite(self.span_id)
                      and (self.parent_id is None
                           or math.isfinite(self.parent_id)))
        except TypeError:
            finite = False
        if not finite:
            require_finite_fields(self)
        if not self.name:
            raise ConfigurationError("span name must be non-empty")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"span duration must be non-negative, got "
                f"{self.duration_s}")

    @property
    def end_s(self) -> Seconds:
        """The record's end timestamp."""
        return self.start_s + self.duration_s


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        """No-op attribute setter."""

    def set_attrs(self, **attrs: Any) -> None:
        """No-op bulk attribute setter."""


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """A live wall-clock span: context manager measuring one region."""

    __slots__ = ("_tracer", "name", "category", "_attrs", "_start_s",
                 "_span_id", "_parent_id", "_active")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: Optional[Mapping[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self._attrs: Dict[str, Any] = dict(attrs or {})
        self._active = False

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to the span before it closes."""
        self._attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        """Attach several attributes to the span before it closes."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        if not tracer.enabled:
            return self
        self._active = True
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = tracer._allocate_id()
        stack.append(self._span_id)
        self._start_s = time.perf_counter() - tracer._epoch_s
        return self

    def __exit__(self, *exc_info: object) -> bool:
        if not self._active:
            return False
        self._active = False
        tracer = self._tracer
        end_s = time.perf_counter() - tracer._epoch_s
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._append(SpanRecord(
            name=self.name,
            category=self.category,
            start_s=self._start_s,
            duration_s=max(0.0, end_s - self._start_s),
            pid=os.getpid(),
            thread_id=threading.get_ident(),
            span_id=self._span_id,
            parent_id=self._parent_id,
            attrs=dict(self._attrs),
        ))
        return False


class _PendingComponents:
    """A deferred batch of ``term.<key>`` child records.

    :func:`emit_component_events` validates the component values once
    (the same checks :class:`SpanRecord.__post_init__` applies) and
    stores this compact entry instead of twelve-odd frozen dataclass
    instances; :meth:`Tracer.records` expands it on first read.  Child
    span ids are pre-allocated at emission time — ``parent_id + 1``
    onward — so the expansion is reproducible no matter when it runs.
    """

    __slots__ = ("category", "pid", "thread_id", "parent_id", "track",
                 "items")

    def __init__(self, category: str, pid: int, thread_id: int,
                 parent_id: int, track: Optional[str],
                 items: Tuple[Tuple[str, float], ...]) -> None:
        self.category = category
        self.pid = pid
        self.thread_id = thread_id
        self.parent_id = parent_id
        self.track = track
        self.items = items

    def materialize(self) -> List[SpanRecord]:
        """The child :class:`SpanRecord` instances, laid end-to-end."""
        records: List[SpanRecord] = []
        new_record = object.__new__
        cursor = 0.0
        child_id = self.parent_id
        for key, value in self.items:
            child_id += 1
            record = new_record(SpanRecord)
            record.__dict__.update(
                name=f"term.{key}",
                category=self.category,
                start_s=cursor,
                duration_s=float(value),
                pid=self.pid,
                thread_id=self.thread_id,
                span_id=child_id,
                parent_id=self.parent_id,
                track=self.track,
                attrs={"seconds": value},
            )
            records.append(record)
            cursor += value
        return records


class Tracer:
    """Thread-safe collector of :class:`SpanRecord` instances."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._records: List[Any] = []
        self._has_pending = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._track_serials: Dict[str, int] = {}
        self._epoch_s = time.perf_counter()

    # -- lifecycle ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether spans and events are being recorded."""
        return self._enabled

    def enable(self, reset: bool = True) -> None:
        """Start recording; ``reset`` also clears prior records and
        restarts the wall-clock epoch."""
        if reset:
            self.reset()
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (existing records are kept)."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every record and restart the wall-clock epoch."""
        with self._lock:
            self._records = []
            self._has_pending = False
            self._next_id = 0
            self._track_serials = {}
            self._epoch_s = time.perf_counter()

    def records(self) -> Tuple[SpanRecord, ...]:
        """Every record collected so far, in completion order.

        Bulk emissions (:func:`emit_component_events`) append a compact
        pending entry instead of materialized records; they are expanded
        here, once, so the emission hot path never pays per-record
        construction.
        """
        with self._lock:
            if self._has_pending:
                expanded: List[Any] = []
                for entry in self._records:
                    if type(entry) is _PendingComponents:
                        expanded.extend(entry.materialize())
                    else:
                        expanded.append(entry)
                self._records = expanded
                self._has_pending = False
            return tuple(self._records)

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "",
             attrs: Optional[Mapping[str, Any]] = None):
        """A wall-clock span context manager around real work.

        Returns the shared no-op span while tracing is disabled, so the
        disabled cost is a single attribute check plus one call.
        """
        if not self._enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, category, attrs)

    def add_event(self, name: str, start_s: Seconds,
                  duration_s: Seconds, *, category: str = "",
                  track: Optional[str] = None,
                  attrs: Optional[Mapping[str, Any]] = None,
                  parent_id: Optional[int] = None
                  ) -> Optional[SpanRecord]:
        """Record one virtual (modeled-time) event on ``track``.

        Returns the record (so callers can parent children under its
        ``span_id``), or ``None`` while tracing is disabled.
        """
        if not self._enabled:
            return None
        record = SpanRecord(
            name=name,
            category=category,
            start_s=float(start_s),
            duration_s=float(duration_s),
            pid=os.getpid(),
            thread_id=threading.get_ident(),
            span_id=self._allocate_id(),
            parent_id=parent_id,
            track=track,
            attrs=dict(attrs or {}),
        )
        self._append(record)
        return record

    def unique_track(self, prefix: str) -> str:
        """A fresh track name ``"<prefix>#<n>"`` — one per emission, so
        repeated evaluations never overlap on a shared timeline."""
        with self._lock:
            serial = self._track_serials.get(prefix, 0) + 1
            self._track_serials[prefix] = serial
        return f"{prefix}#{serial}"

    # -- internals ----------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _allocate_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive span ids under one lock
        acquisition; returns the first id of the block."""
        with self._lock:
            first = self._next_id + 1
            self._next_id += count
            return first

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def _append_many(self, records: List[SpanRecord]) -> None:
        """Append a batch of finished records under one lock
        acquisition (the bulk-emission path of
        :func:`emit_component_events`)."""
        with self._lock:
            self._records.extend(records)

    def _append_pending(self, parent: SpanRecord,
                        pending: "_PendingComponents") -> None:
        """Append a parent plus the deferred description of its child
        records under one lock acquisition; :meth:`records` expands it."""
        with self._lock:
            self._records.append(parent)
            self._records.append(pending)
            self._has_pending = True


#: The process-wide default tracer every instrumentation site uses.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def span(name: str, category: str = "",
         attrs: Optional[Mapping[str, Any]] = None):
    """A wall-clock span on the default tracer (no-op when disabled)."""
    return _TRACER.span(name, category=category, attrs=attrs)


def traced(name: Optional[str] = None, category: str = "",
           attrs: Optional[Mapping[str, Any]] = None) -> Callable:
    """Decorator form of :func:`span`.

    The enabled check happens at *call* time, so functions decorated at
    import time start producing spans as soon as the tracer is enabled::

        @traced("search.explore", category="search")
        def explore(...): ...
    """
    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _TRACER.enabled:
                return fn(*args, **kwargs)
            with _TRACER.span(label, category=category, attrs=attrs):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def emit_component_events(tracer: Tracer,
                          components: Mapping[str, float],
                          total_s: Seconds, *,
                          name: str,
                          track_prefix: str,
                          category: str = "model",
                          attrs: Optional[Mapping[str, Any]] = None
                          ) -> Optional[SpanRecord]:
    """Emit a parent event of ``total_s`` with the ``components`` laid
    end-to-end beneath it as ``term.<key>`` children.

    This is how :meth:`repro.core.model.AMPeD.estimate_batch` exposes
    the Eq. 1 decomposition: the children's durations sum to the
    parent's (up to floating-point rounding), so a span tree of a
    traced evaluation *is* the :class:`TrainingTimeBreakdown`.  Each
    emission gets its own track, so sweeps that evaluate many mappings
    under one trace never interleave their timelines.
    """
    if not tracer.enabled:
        return None
    track = tracer.unique_track(track_prefix)
    pid = os.getpid()
    thread_id = threading.get_ident()
    parent_id = tracer._allocate_ids(len(components) + 1)
    try:
        trusted = bool(name) and math.isfinite(total_s) and total_s >= 0
    except TypeError:
        trusted = False
    if trusted:
        parent = object.__new__(SpanRecord)
        parent.__dict__.update(
            name=name,
            category=category,
            start_s=0.0,
            duration_s=float(total_s),
            pid=pid,
            thread_id=thread_id,
            span_id=parent_id,
            parent_id=None,
            track=track,
            attrs=dict(attrs) if attrs else {},
        )
    else:
        parent = SpanRecord(
            name=name,
            category=category,
            start_s=0.0,
            duration_s=float(total_s),
            pid=pid,
            thread_id=thread_id,
            span_id=parent_id,
            track=track,
            attrs=dict(attrs) if attrs else {},
        )
    # Validate every child value once with the same checks
    # SpanRecord.__post_init__ would apply (finite, non-negative, finite
    # running cursor); a clean batch is deferred as one compact entry —
    # per-record construction happens lazily in Tracer.records() —
    # while a suspicious one takes the eager constructor path below so
    # it raises the exact validation error at emission time.
    try:
        cursor = 0.0
        clean = True
        for value in components.values():
            if not (math.isfinite(value) and value >= 0.0):
                clean = False
                break
            cursor += value
        clean = clean and math.isfinite(cursor)
    except TypeError:
        clean = False
    if clean:
        tracer._append_pending(parent, _PendingComponents(
            category, pid, thread_id, parent_id, track,
            tuple(components.items())))
        return parent
    records = [parent]
    cursor = 0.0
    child_id = parent_id
    for key, value in components.items():
        child_id += 1
        records.append(SpanRecord(
            name=f"term.{key}",
            category=category,
            start_s=cursor,
            duration_s=float(value),
            pid=pid,
            thread_id=thread_id,
            span_id=child_id,
            parent_id=parent_id,
            track=track,
            attrs={"seconds": value},
        ))
        cursor += value
    tracer._append_many(records)
    return parent
