"""Exporters and validators for tracer records and metrics snapshots.

Two output formats:

- **Chrome trace-event JSON** (:func:`to_chrome_trace`) — the
  ``{"traceEvents": [...]}`` envelope understood by
  ``chrome://tracing`` and https://ui.perfetto.dev.  Every
  :class:`~repro.obs.trace.SpanRecord` becomes a complete event
  (``"ph": "X"``) with microsecond ``ts``/``dur``; virtual tracks and
  wall-clock threads each get a small integer ``tid`` plus a
  ``thread_name`` metadata event, so modeled timelines (Eq. 1 terms,
  pipeline stages) appear as named rows next to real threads.
- **JSON span trees** (:func:`span_tree`) — records nested by
  ``parent_id`` into ``{"name", "start_s", "duration_s", "children"}``
  nodes, the shape the acceptance test walks to check that Eq. 1 term
  durations sum to the breakdown total.

The matching validators (:func:`validate_chrome_trace`,
:func:`validate_metrics_snapshot`) raise :class:`ValueError` with a
pointed message; ``python -m repro.obs <files>`` wraps them for CI.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace import SpanRecord
from repro.units import seconds_to_microseconds

#: Keys every complete ("X") trace event must carry.
REQUIRED_EVENT_KEYS: Tuple[str, ...] = ("name", "ph", "ts", "dur",
                                        "pid", "tid")


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to something ``json.dumps`` accepts
    strictly (non-finite floats would otherwise serialize as the
    invalid bare tokens ``NaN``/``Infinity``)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    return str(value)


def to_chrome_trace(records: Iterable[SpanRecord]) -> Dict[str, Any]:
    """Render tracer records as a Chrome trace-event document.

    Rows (``tid``) are assigned per ``(pid, track-or-thread)`` in first
    appearance order; virtual tracks keep their given name, wall-clock
    threads are labelled ``thread <ident>``.
    """
    ordered = list(records)
    tids: Dict[Tuple[int, str], int] = {}
    events: List[Dict[str, Any]] = []
    for record in ordered:
        label = record.track or f"thread {record.thread_id}"
        key = (record.pid, label)
        if key not in tids:
            tids[key] = len(tids) + 1
        args: Dict[str, Any] = {k: _json_safe(v)
                                for k, v in record.attrs.items()}
        args["span_id"] = record.span_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        events.append({
            "name": record.name,
            "cat": record.category or "repro",
            "ph": "X",
            "ts": seconds_to_microseconds(record.start_s),
            "dur": seconds_to_microseconds(record.duration_s),
            "pid": record.pid,
            "tid": tids[key],
            "args": args,
        })
    metadata = [{
        "name": "thread_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    } for (pid, label), tid in sorted(tids.items(), key=lambda kv: kv[1])]
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"]))
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[SpanRecord],
                       path: "str | Path") -> Path:
    """Validate and write a Chrome trace-event file; returns the path."""
    payload = to_chrome_trace(records)
    validate_chrome_trace(payload)
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, allow_nan=False)
                      + "\n")
    return target


def span_tree(records: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """Nest records by ``parent_id`` into a forest of plain dicts.

    Roots (and orphans whose parent is not in ``records``) appear at
    the top level; sibling order is by start time, ties by span id.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    ordered = list(records)
    for record in ordered:
        nodes[record.span_id] = {
            "name": record.name,
            "category": record.category,
            "start_s": record.start_s,
            "duration_s": record.duration_s,
            "pid": record.pid,
            "thread_id": record.thread_id,
            "track": record.track,
            "span_id": record.span_id,
            "attrs": {k: _json_safe(v) for k, v in record.attrs.items()},
            "children": [],
        }
    roots: List[Dict[str, Any]] = []
    for record in ordered:
        node = nodes[record.span_id]
        if record.parent_id is not None and record.parent_id in nodes:
            nodes[record.parent_id]["children"].append(node)
        else:
            roots.append(node)
    def sort_children(items: List[Dict[str, Any]]) -> None:
        items.sort(key=lambda n: (n["start_s"], n["span_id"]))
        for item in items:
            sort_children(item["children"])
    sort_children(roots)
    return roots


def write_span_tree(records: Iterable[SpanRecord],
                    path: "str | Path") -> Path:
    """Write the nested span tree as JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps({"spans": span_tree(records)},
                                 indent=2, allow_nan=False) + "\n")
    return target


def write_metrics_snapshot(snapshot: Dict[str, Any],
                           path: "str | Path") -> Path:
    """Validate and write a metrics snapshot; returns the path."""
    validate_metrics_snapshot(snapshot)
    target = Path(path)
    target.write_text(json.dumps(snapshot, indent=2, allow_nan=False)
                      + "\n")
    return target


def validate_chrome_trace(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` is a well-formed
    Chrome trace-event document.

    Checks the envelope, the required keys of every event, finiteness
    and non-negativity of every ``ts``/``dur``, and that the events of
    each ``(pid, tid)`` row are *monotonically consistent*: sorted by
    start, each event either begins at-or-after the previous event's
    end or is fully contained in a still-open enclosing event (proper
    nesting — trace viewers render anything else as garbage).
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace must be an object with a "
                         "'traceEvents' array")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")
    complete: List[Dict[str, Any]] = []
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {position} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(
                f"event {position} has unsupported phase {phase!r}")
        required = REQUIRED_EVENT_KEYS if phase == "X" else (
            "name", "ph", "pid", "tid")
        for key in required:
            if key not in event:
                raise ValueError(
                    f"event {position} ({event.get('name')!r}) is "
                    f"missing required key {key!r}")
        if phase != "X":
            continue
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool) or not math.isfinite(value):
                raise ValueError(
                    f"event {position} ({event['name']!r}) has "
                    f"non-finite {key}={value!r}")
            if value < 0:
                raise ValueError(
                    f"event {position} ({event['name']!r}) has "
                    f"negative {key}={value!r}")
        complete.append(event)
    _check_row_consistency(complete)


def _check_row_consistency(events: Sequence[Dict[str, Any]]) -> None:
    rows: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    for event in events:
        rows.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), row in rows.items():
        row.sort(key=lambda e: (e["ts"], -e["dur"]))
        scale = max((e["ts"] + e["dur"] for e in row), default=0.0)
        tolerance = max(0.001, 1e-9 * scale)
        open_spans: List[Tuple[float, float]] = []
        for event in row:
            start, end = event["ts"], event["ts"] + event["dur"]
            while open_spans and start >= open_spans[-1][1] - tolerance:
                open_spans.pop()
            if open_spans and end > open_spans[-1][1] + tolerance:
                raise ValueError(
                    f"row pid={pid} tid={tid}: event "
                    f"{event['name']!r} at ts={start} overlaps the "
                    f"enclosing event ending at {open_spans[-1][1]} "
                    "without nesting inside it")
            open_spans.append((start, end))


def validate_metrics_snapshot(payload: Any) -> None:
    """Raise :class:`ValueError` unless ``payload`` looks like a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dump."""
    if not isinstance(payload, dict):
        raise ValueError("metrics snapshot must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in payload or not isinstance(
                payload[section], dict):
            raise ValueError(
                f"metrics snapshot is missing the {section!r} object")
    for section in ("counters", "gauges"):
        for name, value in payload[section].items():
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool) or not math.isfinite(value):
                raise ValueError(
                    f"{section} entry {name!r} has non-numeric value "
                    f"{value!r}")
    for name, data in payload["histograms"].items():
        if not isinstance(data, dict):
            raise ValueError(f"histogram {name!r} must be an object")
        for key in ("count", "sum", "bounds", "bucket_counts",
                    "quantiles"):
            if key not in data:
                raise ValueError(
                    f"histogram {name!r} is missing key {key!r}")
        if len(data["bucket_counts"]) != len(data["bounds"]) + 1:
            raise ValueError(
                f"histogram {name!r} has {len(data['bucket_counts'])} "
                f"bucket counts for {len(data['bounds'])} bounds "
                "(expected bounds + 1)")


def load_json(path: "str | Path") -> Any:
    """Read and parse a JSON file (shared by the validation CLI)."""
    return json.loads(Path(path).read_text())


def detect_payload_kind(payload: Any) -> Optional[str]:
    """Best-effort classification of a JSON document: ``"trace"``,
    ``"metrics"``, or ``None`` when it is neither."""
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return "trace"
        if all(section in payload
               for section in ("counters", "gauges", "histograms")):
            return "metrics"
    return None
