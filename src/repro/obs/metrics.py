"""Counters, gauges, and fixed-bucket histograms for the reproduction.

One process-wide :class:`MetricsRegistry` (reachable through
:func:`get_metrics`) absorbs every operational counter the codebase
accumulates piecemeal today: the memoization statistics behind
``repro.core.cache_stats()`` / ``comm_cache_stats()``, the
:class:`repro.reporting.SweepReport` coverage counters kept live by the
resilient sweep runtime, and anything new instrumentation wants to
count.  ``snapshot()`` turns the whole registry into one JSON-friendly
dict; :func:`repro.obs.export.write_metrics_snapshot` persists it and
``python -m repro.obs`` validates it back.

Instruments are plain mutable classes (not dataclasses); the registry
lock guards the name tables and each instrument carries its own lock
for mutation, since handler threads of the serve daemon increment the
same instruments concurrently.  The hot-path cost of
``counter(...).inc()`` is a dict lookup plus two uncontended locks,
cheap enough to leave enabled unconditionally (unlike tracing, which
is off by default).
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, require_finite
from repro.units import SECONDS_PER_HOUR, SECONDS_PER_MINUTE

#: Default histogram bucket upper bounds, tuned for durations in
#: seconds: microseconds through hours, roughly half-decade spaced.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5,
    1.0, 5.0, 10.0, SECONDS_PER_MINUTE, 10 * SECONDS_PER_MINUTE,
    SECONDS_PER_HOUR,
)

#: Quantiles reported in histogram snapshots.
SNAPSHOT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and non-negative)."""
        require_finite(f"counter {self.name} increment", amount)
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that may move in either direction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._is_set = False

    def set(self, value: float) -> None:
        """Record the current value (must be finite)."""
        require_finite(f"gauge {self.name}", value)
        with self._lock:
            self._value = float(value)
            self._is_set = True

    @property
    def value(self) -> float:
        return self._value

    @property
    def is_set(self) -> bool:
        return self._is_set


class Histogram:
    """A fixed-bucket histogram with percentile estimates.

    Buckets are defined by sorted upper bounds; an observation lands in
    the first bucket whose bound is >= the value, or the overflow
    bucket past the last bound.  Quantiles are estimated as the upper
    bound of the bucket where the cumulative count crosses the target
    rank (the overflow bucket reports the observed maximum), which is
    exact enough for the order-of-magnitude questions these answer.
    """

    def __init__(self, name: str,
                 bounds: Iterable[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket bound")
        for bound in self.bounds:
            require_finite(f"histogram {name} bucket bound", bound)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly increasing, "
                f"got {self.bounds}")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (must be finite)."""
        require_finite(f"histogram {self.name} observation", value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            if self._count == 0:
                self._min = value
                self._max = value
            else:
                self._min = min(self._min, value)
                self._max = max(self._max, value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q`` quantile."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index == len(self.bounds):
                    return self._max
                return min(self.bounds[index], self._max)
        return self._max


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    A name identifies exactly one instrument kind; asking for an
    existing name with a different kind raises
    :class:`ConfigurationError` instead of silently shadowing it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered as ``name`` (created on first use)."""
        with self._lock:
            self._check_kind(name, "counter", self._counters)
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered as ``name`` (created on first use)."""
        with self._lock:
            self._check_kind(name, "gauge", self._gauges)
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None) -> Histogram:
        """The histogram registered as ``name`` (created on first use;
        ``bounds`` only applies at creation)."""
        with self._lock:
            self._check_kind(name, "histogram", self._histograms)
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(
                    name, bounds if bounds is not None
                    else DEFAULT_BUCKET_BOUNDS)
                self._histograms[name] = instrument
            return instrument

    def reset(self) -> None:
        """Drop every registered instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-friendly dump of every instrument's current state."""
        with self._lock:
            counters = {name: c.value
                        for name, c in sorted(self._counters.items())}
            gauges = {name: g.value
                      for name, g in sorted(self._gauges.items())}
            histograms = {}
            for name, h in sorted(self._histograms.items()):
                histograms[name] = {
                    "count": h.count,
                    "sum": h.sum,
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h._counts),
                    "quantiles": {f"p{int(q * 100)}": h.quantile(q)
                                  for q in SNAPSHOT_QUANTILES},
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def format_table(self) -> str:
        """Plain-text rendering of :meth:`snapshot` for terminal use."""
        snap = self.snapshot()
        lines: List[str] = ["metrics snapshot"]
        for kind in ("counters", "gauges"):
            section = snap[kind]
            if section:
                lines.append(f"  {kind}:")
                width = max(len(name) for name in section)
                for name, value in section.items():
                    lines.append(f"    {name.ljust(width)}  {value:g}")
        if snap["histograms"]:
            lines.append("  histograms:")
            for name, data in snap["histograms"].items():
                quantiles = data["quantiles"]
                detail = ", ".join(
                    f"{k}={v:g}" for k, v in quantiles.items())
                lines.append(
                    f"    {name}  count={data['count']} "
                    f"sum={data['sum']:g} {detail}")
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    def _check_kind(self, name: str, kind: str,
                    owner: Dict[str, object]) -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if table is owner:
                continue
            if name in table:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a "
                    f"{other_kind}, cannot reuse it as a {kind}")


#: The process-wide default registry used by all instrumentation sites.
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _METRICS


def reset_metrics() -> None:
    """Clear the process-wide default registry (tests, fresh runs)."""
    _METRICS.reset()


@contextmanager
def time_histogram(name: str,
                   registry: Optional[MetricsRegistry] = None
                   ) -> Iterator[Histogram]:
    """Observe a block's wall-clock duration into histogram ``name``.

    The duration lands in the histogram even when the block raises, so
    failure latency is accounted like success latency (the serve
    daemon's request histogram depends on this).  Yields the histogram
    for callers that want to attach further observations.
    """
    target = registry if registry is not None else _METRICS
    instrument = target.histogram(name)
    started = time.perf_counter()
    try:
        yield instrument
    finally:
        instrument.observe(time.perf_counter() - started)


def collect_cache_metrics(
        registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Fold the memoization statistics into gauges.

    Pulls ``repro.core.cache_stats()`` (the ``build_operations`` LRU),
    ``repro.core.comm_cache_stats()`` (the collective-time LRU),
    ``repro.search.compiler.compiled_cache_stats()`` (the sweep-compiler
    table cache), ``repro.search.vectorized.vectorized_stats()``
    (batch-array builds) and ``repro.search.shm.shm_stats()``
    (shared-memory table segments) into ``cache.operations.*`` /
    ``cache.collectives.*`` / ``cache.compiled.*`` /
    ``cache.vectorized.*`` / ``cache.shm.*`` gauges, so a single
    snapshot answers "did the fast path actually hit the cache" and
    "how hot are the compiled term tables".  Imports lazily:
    :mod:`repro.core` imports the tracer, so a module-level import here
    would be circular.
    """
    from repro.core.communication import comm_cache_stats
    from repro.core.operations import cache_stats
    from repro.search.compiler import compiled_cache_stats
    from repro.search.shm import shm_stats
    from repro.search.vectorized import vectorized_stats

    target = registry if registry is not None else _METRICS
    for prefix, stats in (("cache.operations", cache_stats()),
                          ("cache.collectives", comm_cache_stats()),
                          ("cache.compiled", compiled_cache_stats()),
                          ("cache.vectorized", vectorized_stats()),
                          ("cache.shm", shm_stats())):
        for key, value in stats.items():
            if value is None:
                continue
            target.gauge(f"{prefix}.{key}").set(float(value))
    return target
