"""Disabled-tracer overhead benchmark for the instrumented fast path.

PR 1 bought a ~40x collapsed-path speedup (``BENCH_dse.json``); this
benchmark guards it against the observability instrumentation.  It
times the same workload — every legal mapping of the Case Study I
cluster evaluated through the collapsed Eq. 1 path — with the tracer
disabled and again with it enabled, and reports both throughputs plus
the ratio against the recorded ``BENCH_dse.json`` fast-path baseline.
The perf-marked test in ``benchmarks/bench_obs.py`` asserts the
disabled-tracer run stays within the ISSUE 4 budget (< 5% regression)
and writes ``BENCH_obs.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.core.model import AMPeD
from repro.errors import MappingError, MemoryCapacityError
from repro.hardware.catalog import megatron_a100_cluster
from repro.hardware.system import SystemSpec
from repro.units import Seconds
from repro.obs.trace import get_tracer
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.benchmark import _clear_caches
from repro.transformer.config import TransformerConfig
from repro.transformer.zoo import MEGATRON_1T

#: Maximum tolerated throughput regression with tracing disabled,
#: relative to the recorded ``BENCH_dse.json`` fast-path baseline.
MAX_OVERHEAD_FRACTION = 0.05

#: Keys every overhead payload must carry.
OBS_BENCH_KEYS = ("benchmark", "model", "system", "global_batch",
                  "n_mappings", "tracing_off", "tracing_on",
                  "enabled_overhead", "baseline_fast_mappings_per_s",
                  "off_vs_baseline")


def _time_collapsed_s(template: AMPeD, mappings, global_batch: int
                      ) -> Seconds:
    """Seconds to evaluate every mapping on the collapsed path."""
    _clear_caches()
    start = time.perf_counter()
    for spec in mappings:
        candidate = replace(template, parallelism=spec)
        try:
            candidate.estimate_batch(global_batch)
        except (MappingError, MemoryCapacityError):
            pass
    return time.perf_counter() - start


def run_obs_benchmark(system: Optional[SystemSpec] = None,
                      model: Optional[TransformerConfig] = None,
                      global_batch: int = 2048,
                      repeats: int = 3,
                      baseline_fast_mappings_per_s: Optional[float]
                      = None) -> dict:
    """Measure the instrumented collapsed path with tracing off and on.

    Each mode takes the best of ``repeats`` cold-cache passes (minimum
    wall-clock — the standard noise filter for throughput benches).
    ``baseline_fast_mappings_per_s`` is the recorded ``BENCH_dse.json``
    fast-path throughput; when given, the payload includes the ratio
    the overhead guard asserts on.
    """
    if system is None:
        system = megatron_a100_cluster()
    if model is None:
        model = MEGATRON_1T
    template = AMPeD.for_mapping(model, system, dp=system.n_accelerators,
                                 efficiency=CASE_STUDY_EFFICIENCY)
    template = replace(template, evaluation_path="collapsed")
    mappings = enumerate_mappings(system, model)
    n_mappings = len(mappings)
    tracer = get_tracer()
    was_enabled = tracer.enabled

    try:
        tracer.disable()
        off_runs: List[float] = []
        for _ in range(max(1, repeats)):
            off_runs.append(_time_collapsed_s(template, mappings,
                                              global_batch))
        off_s = min(off_runs)

        on_runs: List[float] = []
        n_records = 0
        for _ in range(max(1, repeats)):
            tracer.enable(reset=True)
            on_runs.append(_time_collapsed_s(template, mappings,
                                             global_batch))
            n_records = len(tracer.records())
            tracer.disable()
        on_s = min(on_runs)
    finally:
        if was_enabled:
            tracer.enable(reset=False)
        else:
            tracer.disable()
        tracer.reset()

    off_rate = n_mappings / off_s if off_s > 0 else 0.0
    on_rate = n_mappings / on_s if on_s > 0 else 0.0
    payload = {
        "benchmark": "obs-overhead",
        "model": model.name,
        "system": system.describe(),
        "global_batch": global_batch,
        "n_mappings": n_mappings,
        "tracing_off": {"seconds": off_s, "mappings_per_s": off_rate},
        "tracing_on": {"seconds": on_s, "mappings_per_s": on_rate,
                       "n_records": n_records},
        # >1 means tracing-on is slower, as expected; it buys the trace.
        "enabled_overhead": on_s / off_s if off_s > 0 else 0.0,
        "baseline_fast_mappings_per_s": baseline_fast_mappings_per_s,
        "off_vs_baseline": (
            off_rate / baseline_fast_mappings_per_s
            if baseline_fast_mappings_per_s else None),
    }
    return payload


def validate_obs_bench(payload: dict) -> None:
    """Raise ``ValueError`` when ``payload`` violates the schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload)}")
    for key in OBS_BENCH_KEYS:
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
    for mode in ("tracing_off", "tracing_on"):
        phase = payload[mode]
        if phase["seconds"] <= 0 or phase["mappings_per_s"] <= 0:
            raise ValueError(
                f"{mode!r} timings must be positive, got {phase}")
    if payload["tracing_on"]["n_records"] < 1:
        raise ValueError("tracing-on pass recorded no spans — the "
                         "instrumentation is not firing")


def write_obs_bench_json(payload: dict, path) -> Path:
    """Validate and write ``payload`` to ``path``; returns the path."""
    validate_obs_bench(payload)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target
