"""Discrete-event simulation of pipeline-parallel execution.

Given per-task durations and a schedule (:mod:`repro.pipeline.schedule`),
the simulator list-schedules every task subject to:

- *stage exclusivity* — a stage runs one task at a time, in its
  schedule's order;
- *dataflow* — F of (virtual) stage ``v`` needs F of ``v - 1`` for the
  same microbatch (plus the inter-stage transfer time); B of ``v`` needs
  B of ``v + 1`` and the stage's own F (stored activations).

The result reports the makespan, per-stage busy time, the empirical
bubble fraction, and the overlap ratio ``R`` relative to the naive
bound — the quantity Eq. 8 exposes as a knob.  Property tests assert
that GPipe's simulated bubble fraction matches ``(S - 1)/M`` and that
interleaving shrinks it by ``~1/n_chunks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ConfigurationError,
    SimulationError,
    require_finite_fields,
)
from repro.obs.trace import Tracer, get_tracer
from repro.units import Seconds
from repro.pipeline.schedule import (
    BACKWARD,
    FORWARD,
    Task,
    build_schedule,
)


@dataclass(frozen=True)
class PipelineWorkload:
    """Durations of the pipeline's unit tasks (seconds).

    ``forward_time`` and ``backward_time`` are per microbatch per
    *virtual* stage (i.e. per chunk when interleaving); ``comm_time`` is
    the activation/error transfer between adjacent virtual stages.
    """

    forward_time: Seconds
    backward_time: Seconds
    comm_time: Seconds = 0.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if self.forward_time <= 0:
            raise ConfigurationError(
                f"forward_time must be positive, got {self.forward_time}")
        if self.backward_time < 0:
            raise ConfigurationError(
                f"backward_time must be non-negative, got "
                f"{self.backward_time}")
        if self.comm_time < 0:
            raise ConfigurationError(
                f"comm_time must be non-negative, got {self.comm_time}")

    def duration(self, phase: str) -> Seconds:
        """Duration of one task of ``phase``."""
        return self.forward_time if phase == FORWARD else self.backward_time

    def duration_for(self, task: Task) -> Seconds:
        """Duration of ``task`` (uniform across stages for this
        workload; heterogeneous workloads override per stage)."""
        return self.duration(task.phase)


@dataclass(frozen=True)
class HeterogeneousWorkload:
    """Per-stage task durations for pipelines over mixed hardware.

    ``forward_times[s]`` / ``backward_times[s]`` are the per-microbatch
    durations of stage ``s`` (chunked schedules index by the *physical*
    stage).  Used by :mod:`repro.hetero` to simulate pipelines whose
    stages run on different accelerator generations.
    """

    forward_times: Tuple[float, ...]
    backward_times: Tuple[float, ...]
    comm_time: float = 0.0

    def __post_init__(self) -> None:
        require_finite_fields(self)
        if not self.forward_times:
            raise ConfigurationError(
                "need at least one stage of forward times")
        if len(self.forward_times) != len(self.backward_times):
            raise ConfigurationError(
                f"{len(self.forward_times)} forward vs "
                f"{len(self.backward_times)} backward stage times")
        if any(t <= 0 for t in self.forward_times):
            raise ConfigurationError(
                f"forward times must be positive: {self.forward_times}")
        if any(t < 0 for t in self.backward_times):
            raise ConfigurationError(
                f"backward times must be non-negative: "
                f"{self.backward_times}")
        if self.comm_time < 0:
            raise ConfigurationError(
                f"comm_time must be non-negative, got {self.comm_time}")

    @property
    def n_stages(self) -> int:
        """Stage count the duration tables cover."""
        return len(self.forward_times)

    def duration_for(self, task: Task) -> Seconds:
        """Duration of ``task`` on its stage."""
        if task.stage >= self.n_stages:
            raise ConfigurationError(
                f"task stage {task.stage} outside the "
                f"{self.n_stages}-stage workload")
        if task.phase == FORWARD:
            return self.forward_times[task.stage]
        return self.backward_times[task.stage]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline simulation."""

    makespan_s: float
    busy_s: Tuple[float, ...]
    n_stages: int
    n_microbatches: int
    n_chunks: int
    task_finish: Dict[Task, float]


    def __post_init__(self) -> None:
        require_finite_fields(self)

    @property
    def total_busy_s(self) -> float:
        """Work time summed over stages."""
        return sum(self.busy_s)

    @property
    def idle_s(self) -> float:
        """Idle stage-seconds: ``makespan * stages - busy``."""
        return self.makespan_s * self.n_stages - self.total_busy_s

    @property
    def bubble_fraction(self) -> float:
        """Share of stage-time spent idle — the simulated counterpart of
        Eq. 8's ``R (N_PP - 1) / N_ub`` bound."""
        if self.makespan_s == 0:
            return 0.0
        return self.idle_s / (self.makespan_s * self.n_stages)

    def overlap_ratio(self, naive_bubble_fraction: float) -> float:
        """Empirical ``R``: this run's bubble fraction over the naive
        schedule's — how much of the bubble the schedule hides."""
        if naive_bubble_fraction <= 0:
            raise ConfigurationError(
                f"naive bubble fraction must be positive, got "
                f"{naive_bubble_fraction}")
        return self.bubble_fraction / naive_bubble_fraction


def simulate_pipeline(workload, n_stages: int,
                      n_microbatches: int, schedule: str = "gpipe",
                      n_chunks: int = 1) -> PipelineResult:
    """Run one pipeline schedule to completion and measure it.

    ``workload`` is a :class:`PipelineWorkload` (uniform stages) or a
    :class:`HeterogeneousWorkload` (per-stage durations).  Raises
    :class:`SimulationError` on a schedule deadlock (a task whose
    dependencies can never complete), which would indicate a malformed
    custom schedule.
    """
    orders = build_schedule(schedule, n_stages, n_microbatches, n_chunks)
    chunks = n_chunks if schedule == "interleaved" else 1
    n_virtual = n_stages * chunks
    last_virtual = n_virtual - 1

    finish: Dict[Task, float] = {}
    stage_free = [0.0] * n_stages
    busy = [0.0] * n_stages
    cursor = [0] * n_stages  # next task index per stage

    remaining = sum(len(order) for order in orders)
    while remaining:
        progressed = False
        for stage in range(n_stages):
            while cursor[stage] < len(orders[stage]):
                task = orders[stage][cursor[stage]]
                ready = _ready_time(task, finish, workload, n_stages,
                                    last_virtual)
                if ready is None:
                    break  # blocked; try other stages first
                start = max(ready, stage_free[stage])
                duration = workload.duration_for(task)
                finish[task] = start + duration
                stage_free[stage] = start + duration
                busy[stage] += duration
                cursor[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [orders[s][cursor[s]] for s in range(n_stages)
                     if cursor[s] < len(orders[s])]
            raise SimulationError(
                f"pipeline schedule deadlocked; blocked tasks: {stuck}")

    makespan = max(stage_free) if finish else 0.0
    result = PipelineResult(
        makespan_s=makespan,
        busy_s=tuple(busy),
        n_stages=n_stages,
        n_microbatches=n_microbatches,
        n_chunks=chunks,
        task_finish=finish,
    )
    tracer = get_tracer()
    if tracer.enabled:
        _emit_schedule_trace(tracer, result, workload, schedule)
    return result


def _emit_schedule_trace(tracer: Tracer, result: PipelineResult,
                         workload, schedule: str) -> None:
    """Emit the simulated schedule as virtual trace events.

    Each physical stage becomes one track (``pipeline.gpipe#1/stage
    0``, ...), each task one event placed at its modeled start, so the
    pipeline bubbles appear as literal gaps between slices in Perfetto.
    A summary event on a sibling track spans the whole makespan and
    carries the empirical bubble fraction.
    """
    base = tracer.unique_track(f"pipeline.{schedule}")
    summary = tracer.add_event(
        "pipeline.makespan", 0.0, result.makespan_s,
        category="pipeline", track=f"{base}/schedule",
        attrs={"schedule": schedule,
               "n_stages": result.n_stages,
               "n_microbatches": result.n_microbatches,
               "n_chunks": result.n_chunks,
               "bubble_fraction": result.bubble_fraction})
    parent_id = summary.span_id if summary is not None else None
    ordered = sorted(result.task_finish.items(),
                     key=lambda item: (item[0].stage, item[1]))
    for task, finish_s in ordered:
        duration_s = workload.duration_for(task)
        label = f"{task.phase}{task.microbatch}"
        if result.n_chunks > 1:
            label = f"{label}.{task.chunk}"
        tracer.add_event(
            label, finish_s - duration_s, duration_s,
            category="pipeline", track=f"{base}/stage {task.stage}",
            parent_id=parent_id,
            attrs={"phase": task.phase, "stage": task.stage,
                   "microbatch": task.microbatch, "chunk": task.chunk})


def _ready_time(task: Task, finish: Dict[Task, float],
                workload: PipelineWorkload, n_stages: int,
                last_virtual: int) -> Optional[float]:
    """Earliest time ``task``'s dependencies allow it to start, or
    ``None`` if a dependency has not finished yet."""
    deps: List[Tuple[Task, float]] = []
    virtual = task.virtual_stage(n_stages)
    if task.phase == FORWARD:
        if virtual > 0:
            prev_stage = (virtual - 1) % n_stages
            prev_chunk = (virtual - 1) // n_stages
            deps.append((Task(FORWARD, prev_stage, task.microbatch,
                              prev_chunk), workload.comm_time))
    else:
        # Backward needs this stage's own forward (stored activations)...
        deps.append((Task(FORWARD, task.stage, task.microbatch,
                          task.chunk), 0.0))
        # ...and the downstream backward, unless it is the last stage.
        if virtual < last_virtual:
            next_stage = (virtual + 1) % n_stages
            next_chunk = (virtual + 1) // n_stages
            deps.append((Task(BACKWARD, next_stage, task.microbatch,
                              next_chunk), workload.comm_time))
    ready = 0.0
    for dep, transfer in deps:
        if dep not in finish:
            return None
        ready = max(ready, finish[dep] + transfer)
    return ready


def naive_bubble_fraction(n_stages: int, n_microbatches: int) -> float:
    """The analytical GPipe bubble bound ``(S - 1) / M`` against which
    :meth:`PipelineResult.overlap_ratio` measures ``R``.

    Exact for equal forward/backward task times and zero communication:
    the makespan is ``(M + S - 1) (f + b)`` versus ``M (f + b)`` of work
    per stage... giving an idle share of ``(S - 1) / (M + S - 1)``; the
    Eq. 8 convention normalizes by work rather than makespan, i.e.
    ``(S - 1) / M`` extra time over the bubble-free pipeline.
    """
    if n_stages < 1 or n_microbatches < 1:
        raise ConfigurationError(
            f"need n_stages >= 1 and n_microbatches >= 1, got "
            f"{n_stages}, {n_microbatches}")
    return (n_stages - 1) / (n_microbatches + n_stages - 1)
