"""Discrete-event pipeline-schedule simulator.

Validates Eq. 8's bubble model from first principles: tasks, schedules
(GPipe / 1F1B / interleaved) and a list scheduler that measures real
bubble fractions and overlap ratios ``R``.  Also the substrate for the
Fig. 2b validation experiment, standing in for the paper's torchgpipe
runs.
"""

from repro.pipeline.schedule import (
    BACKWARD,
    FORWARD,
    SCHEDULES,
    Task,
    bubble_prefactor,
    build_schedule,
    gpipe_order,
    interleaved_order,
    one_f_one_b_order,
)
from repro.pipeline.simulator import (
    HeterogeneousWorkload,
    PipelineResult,
    PipelineWorkload,
    naive_bubble_fraction,
    simulate_pipeline,
)

__all__ = [
    "Task",
    "FORWARD",
    "BACKWARD",
    "SCHEDULES",
    "bubble_prefactor",
    "build_schedule",
    "gpipe_order",
    "one_f_one_b_order",
    "interleaved_order",
    "PipelineWorkload",
    "HeterogeneousWorkload",
    "PipelineResult",
    "simulate_pipeline",
    "naive_bubble_fraction",
]
