"""Pipeline schedules: which task each stage runs next.

A *task* is one microbatch's forward or backward pass through one stage.
A schedule fixes, per stage, the order in which that stage attempts its
tasks; the simulator then derives actual start times from dependencies.

Three schedules are provided:

- ``gpipe`` — all forwards, then all backwards (Huang et al.); the
  schedule of the paper's Table III validation.
- ``1f1b`` — the PipeDream-flush schedule Megatron-LM uses: a warm-up of
  forwards, then strict one-forward-one-backward alternation.  Same
  bubble as GPipe, far lower activation memory.
- ``interleaved`` — 1F1B over ``v`` model chunks per stage (Megatron's
  interleaved schedule); shrinks the bubble by ``~1/v``, which is the
  mechanism behind Eq. 8's ``R < 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

#: Task phases.
FORWARD = "F"
BACKWARD = "B"

SCHEDULES = ("gpipe", "1f1b", "interleaved")


@dataclass(frozen=True)
class Task:
    """One unit of pipeline work.

    ``chunk`` indexes the model chunk for interleaved schedules (0 for
    the plain schedules); ``(stage, chunk)`` identifies the *virtual*
    stage the task belongs to.
    """

    phase: str
    stage: int
    microbatch: int
    chunk: int = 0

    def __post_init__(self) -> None:
        if self.phase not in (FORWARD, BACKWARD):
            raise ConfigurationError(
                f"phase must be '{FORWARD}' or '{BACKWARD}', got "
                f"{self.phase!r}")
        for name in ("stage", "microbatch", "chunk"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be non-negative, got "
                    f"{getattr(self, name)}")

    def virtual_stage(self, n_stages: int) -> int:
        """Position in the unrolled (chunked) pipeline: chunk ``c`` on
        stage ``s`` is virtual stage ``c * n_stages + s``."""
        return self.chunk * n_stages + self.stage

    def __repr__(self) -> str:  # compact debugging aid
        return f"{self.phase}(s={self.stage},m={self.microbatch}," \
               f"c={self.chunk})"


def _check(n_stages: int, n_microbatches: int) -> None:
    if n_stages < 1:
        raise ConfigurationError(
            f"n_stages must be >= 1, got {n_stages}")
    if n_microbatches < 1:
        raise ConfigurationError(
            f"n_microbatches must be >= 1, got {n_microbatches}")


def bubble_prefactor(n_stages: int, n_microbatches: int,
                     overlap_ratio: float = 1.0) -> float:
    """Closed-form Eq. 8 prefactor ``R * (N_PP - 1) / N_ub``.

    The entire schedule dependence of the bubble term — fill/drain
    steps over microbatch count, derated by the overlap ratio ``R``
    that interleaved schedules buy — collapses to this scalar keyed on
    ``(N_PP, N_ub)`` (and ``R``); the sweep compiler tabulates it once
    per distinct key and multiplies it onto the per-candidate step
    time.  Arithmetic matches :func:`repro.core.bubbles.bubble_time`
    operation for operation, so tabulated bubbles stay bit-identical
    to the reference path.  A one-stage pipeline has no fill/drain
    phase and costs nothing.
    """
    _check(n_stages, n_microbatches)
    if overlap_ratio < 0:
        raise ConfigurationError(
            f"overlap_ratio must be non-negative, got {overlap_ratio}")
    if n_stages <= 1:
        return 0.0
    return overlap_ratio * (n_stages - 1) / n_microbatches


def gpipe_order(n_stages: int, n_microbatches: int) -> List[List[Task]]:
    """Per-stage task order for the GPipe schedule.

    Stage ``s`` runs F(0)...F(M-1) then B(M-1)...B(0).
    """
    _check(n_stages, n_microbatches)
    orders = []
    for stage in range(n_stages):
        tasks = [Task(FORWARD, stage, mb) for mb in range(n_microbatches)]
        tasks += [Task(BACKWARD, stage, mb)
                  for mb in reversed(range(n_microbatches))]
        orders.append(tasks)
    return orders


def one_f_one_b_order(n_stages: int,
                      n_microbatches: int) -> List[List[Task]]:
    """Per-stage task order for the 1F1B (PipeDream-flush) schedule.

    Stage ``s`` warms up with ``min(M, n_stages - s)`` forwards, then
    alternates one backward / one forward until both phases complete.
    """
    _check(n_stages, n_microbatches)
    orders = []
    for stage in range(n_stages):
        warmup = min(n_microbatches, n_stages - stage)
        tasks = [Task(FORWARD, stage, mb) for mb in range(warmup)]
        next_forward = warmup
        next_backward = 0
        while next_backward < n_microbatches:
            tasks.append(Task(BACKWARD, stage, next_backward))
            next_backward += 1
            if next_forward < n_microbatches:
                tasks.append(Task(FORWARD, stage, next_forward))
                next_forward += 1
        orders.append(tasks)
    return orders


def interleaved_order(n_stages: int, n_microbatches: int,
                      n_chunks: int) -> List[List[Task]]:
    """Per-stage task order for the interleaved (chunked) schedule.

    The model is cut into ``n_stages * n_chunks`` pieces; stage ``s``
    owns chunks ``0..n_chunks-1`` (virtual stages ``s + c*n_stages``).
    Each stage runs the GPipe pattern chunk-major: all forwards of chunk
    0, then chunk 1, ...; backwards in reverse.  This shrinks the
    fill/drain bubble by roughly ``1/n_chunks``.
    """
    _check(n_stages, n_microbatches)
    if n_chunks < 1:
        raise ConfigurationError(
            f"n_chunks must be >= 1, got {n_chunks}")
    orders = []
    for stage in range(n_stages):
        tasks = [Task(FORWARD, stage, mb, chunk)
                 for chunk in range(n_chunks)
                 for mb in range(n_microbatches)]
        tasks += [Task(BACKWARD, stage, mb, chunk)
                  for chunk in reversed(range(n_chunks))
                  for mb in reversed(range(n_microbatches))]
        orders.append(tasks)
    return orders


def build_schedule(name: str, n_stages: int, n_microbatches: int,
                   n_chunks: int = 1) -> List[List[Task]]:
    """Dispatch on a schedule name (one of :data:`SCHEDULES`)."""
    if name == "gpipe":
        return gpipe_order(n_stages, n_microbatches)
    if name == "1f1b":
        return one_f_one_b_order(n_stages, n_microbatches)
    if name == "interleaved":
        return interleaved_order(n_stages, n_microbatches, n_chunks)
    raise ConfigurationError(
        f"unknown schedule {name!r}; expected one of {SCHEDULES}")
