"""Unit tests for the zero-dependency span tracer."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    emit_component_events,
    get_tracer,
    span,
    traced,
)


def _record(**overrides) -> SpanRecord:
    base = dict(name="x", category="test", start_s=0.0, duration_s=1.0,
                pid=1, thread_id=1, span_id=1)
    base.update(overrides)
    return SpanRecord(**base)


class TestSpanRecord:
    def test_end_is_start_plus_duration(self):
        assert _record(start_s=2.0, duration_s=3.0).end_s == 5.0

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            _record(name="")

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            _record(duration_s=-0.1)

    def test_rejects_non_finite_times(self):
        with pytest.raises(ConfigurationError):
            _record(start_s=float("nan"))


class TestDisabledTracer:
    def test_disabled_by_default(self):
        assert not Tracer().enabled

    def test_span_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work", category="test") as live:
            live.set_attr("k", 1)
            live.set_attrs(a=1, b=2)
        assert tracer.records() == ()

    def test_disabled_spans_share_one_object(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")

    def test_add_event_returns_none(self):
        assert Tracer().add_event("e", 0.0, 1.0) is None

    def test_module_level_span_uses_default_tracer(self):
        with span("work"):
            pass
        assert get_tracer().records() == ()


class TestEnabledTracer:
    def test_span_produces_record(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", category="test",
                         attrs={"static": 1}) as live:
            live.set_attr("dynamic", 2)
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.category == "test"
        assert record.attrs == {"static": 1, "dynamic": 2}
        assert record.duration_s >= 0
        assert record.parent_id is None

    def test_nested_spans_link_parents(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records()
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        first, second, outer = tracer.records()
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id

    def test_span_ids_unique(self):
        tracer = Tracer()
        tracer.enable()
        for _ in range(10):
            with tracer.span("work"):
                pass
        ids = [r.span_id for r in tracer.records()]
        assert len(set(ids)) == len(ids)

    def test_threads_keep_separate_parent_stacks(self):
        tracer = Tracer()
        tracer.enable()

        def worker():
            with tracer.span("thread-span"):
                pass

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {r.name: r for r in tracer.records()}
        # The other thread's span must NOT be parented under the span
        # open on the main thread.
        assert by_name["thread-span"].parent_id is None
        assert (by_name["thread-span"].thread_id
                != by_name["main-span"].thread_id)

    def test_enable_reset_clears_records(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("old"):
            pass
        tracer.enable(reset=True)
        assert tracer.records() == ()

    def test_disable_keeps_records(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("kept"):
            pass
        tracer.disable()
        assert len(tracer.records()) == 1


class TestVirtualEvents:
    def test_add_event_records_modeled_time(self):
        tracer = Tracer()
        tracer.enable()
        record = tracer.add_event("term", 1.5, 2.5, category="model",
                                  track="eq1", attrs={"seconds": 2.5})
        assert record is not None
        assert record.start_s == 1.5
        assert record.duration_s == 2.5
        assert record.track == "eq1"
        assert tracer.records() == (record,)

    def test_unique_track_never_repeats(self):
        tracer = Tracer()
        names = {tracer.unique_track("eq1") for _ in range(5)}
        assert len(names) == 5
        assert all(name.startswith("eq1#") for name in names)

    def test_reset_restarts_track_serials(self):
        tracer = Tracer()
        first = tracer.unique_track("eq1")
        tracer.reset()
        assert tracer.unique_track("eq1") == first


class TestTracedDecorator:
    def test_enabled_check_at_call_time(self):
        tracer = get_tracer()

        @traced("decorated.work", category="test")
        def work():
            return 42

        assert work() == 42
        assert tracer.records() == ()
        tracer.enable()
        assert work() == 42
        (record,) = tracer.records()
        assert record.name == "decorated.work"

    def test_defaults_to_qualname(self):
        tracer = get_tracer()
        tracer.enable()

        @traced()
        def helper():
            pass

        helper()
        (record,) = tracer.records()
        assert "helper" in record.name


class TestEmitComponentEvents:
    def test_children_tile_the_parent(self):
        tracer = Tracer()
        tracer.enable()
        components = {"a": 1.0, "b": 2.0, "c": 3.0}
        parent = emit_component_events(
            tracer, components, 6.0, name="model.estimate_batch",
            track_prefix="model.eq1")
        records = tracer.records()
        assert parent is not None
        children = [r for r in records if r.parent_id == parent.span_id]
        assert [c.name for c in children] == ["term.a", "term.b",
                                              "term.c"]
        # End-to-end tiling: each child starts where the previous ended
        # and together they cover the parent exactly.
        cursor = 0.0
        for child, expected in zip(children, (1.0, 2.0, 3.0)):
            assert child.start_s == pytest.approx(cursor)
            assert child.duration_s == pytest.approx(expected)
            cursor += expected
        assert cursor == pytest.approx(parent.duration_s)
        assert all(r.track == parent.track for r in records)

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer()
        assert emit_component_events(
            tracer, {"a": 1.0}, 1.0, name="n",
            track_prefix="p") is None
        assert tracer.records() == ()
