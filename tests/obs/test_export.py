"""Exporter and validator tests, including the traced-pipeline golden.

The golden test drives :func:`repro.pipeline.simulator.simulate_pipeline`
under an enabled tracer and checks the exported document is a
well-formed Chrome trace: every complete event carries the required
keys, the per-row timestamps are monotonically consistent, and the
span nesting matches the simulated stage count.
"""

import json
import math

import pytest

from repro.obs.export import (
    REQUIRED_EVENT_KEYS,
    detect_payload_kind,
    span_tree,
    to_chrome_trace,
    validate_chrome_trace,
    validate_metrics_snapshot,
    write_chrome_trace,
    write_span_tree,
)
from repro.obs.trace import SpanRecord, Tracer, get_tracer
from repro.pipeline.simulator import PipelineWorkload, simulate_pipeline
from repro.units import seconds_to_microseconds

N_STAGES = 4
N_MICROBATCHES = 8
WORKLOAD = PipelineWorkload(forward_time=1.0, backward_time=2.0)


def _traced_pipeline_records():
    tracer = get_tracer()
    tracer.enable(reset=True)
    result = simulate_pipeline(WORKLOAD, n_stages=N_STAGES,
                               n_microbatches=N_MICROBATCHES,
                               schedule="1f1b")
    tracer.disable()
    return result, tracer.records()


class TestPipelineGoldenTrace:
    def test_exports_valid_chrome_trace(self, tmp_path):
        _, records = _traced_pipeline_records()
        path = write_chrome_trace(records, tmp_path / "pipeline.json")
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        complete = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert complete
        for event in complete:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event
            assert math.isfinite(event["ts"]) and event["ts"] >= 0
            assert math.isfinite(event["dur"]) and event["dur"] >= 0

    def test_one_track_per_stage_plus_schedule_row(self):
        _, records = _traced_pipeline_records()
        tracks = {r.track for r in records}
        stage_tracks = {t for t in tracks if "/stage " in t}
        assert len(stage_tracks) == N_STAGES
        assert sum(1 for t in tracks if t.endswith("/schedule")) == 1

    def test_task_events_cover_the_schedule(self):
        result, records = _traced_pipeline_records()
        summary = next(r for r in records
                       if r.name == "pipeline.makespan")
        tasks = [r for r in records
                 if r.parent_id == summary.span_id]
        # Forward + backward per microbatch per stage.
        assert len(tasks) == 2 * N_STAGES * N_MICROBATCHES
        assert summary.duration_s == pytest.approx(result.makespan_s)
        assert max(t.end_s for t in tasks) == pytest.approx(
            result.makespan_s)
        assert summary.attrs["n_stages"] == N_STAGES
        assert summary.attrs["schedule"] == "1f1b"

    def test_row_timestamps_monotonically_consistent(self):
        _, records = _traced_pipeline_records()
        payload = to_chrome_trace(records)
        rows = {}
        for event in payload["traceEvents"]:
            if event["ph"] != "X":
                continue
            rows.setdefault((event["pid"], event["tid"]),
                            []).append(event)
        for row in rows.values():
            assert row == sorted(row,
                                 key=lambda e: (e["ts"], -e["dur"]))

    def test_validates_as_file_payload(self, tmp_path):
        _, records = _traced_pipeline_records()
        path = write_chrome_trace(records, tmp_path / "t.json")
        assert detect_payload_kind(json.loads(path.read_text())) == \
            "trace"


class TestToChromeTrace:
    def test_microsecond_units(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add_event("e", 1.0, 2.0, track="row")
        payload = to_chrome_trace(tracer.records())
        (event,) = [e for e in payload["traceEvents"]
                    if e["ph"] == "X"]
        assert event["ts"] == seconds_to_microseconds(1.0)
        assert event["dur"] == seconds_to_microseconds(2.0)

    def test_thread_name_metadata_per_track(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add_event("a", 0.0, 1.0, track="alpha")
        tracer.add_event("b", 0.0, 1.0, track="beta")
        payload = to_chrome_trace(tracer.records())
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"alpha", "beta"}

    def test_non_finite_attrs_stringified(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add_event("e", 0.0, 1.0, track="row",
                         attrs={"bad": float("inf"), "obj": object()})
        payload = to_chrome_trace(tracer.records())
        json.dumps(payload, allow_nan=False)  # must not raise


class TestSpanTree:
    def test_nests_by_parent(self):
        tracer = Tracer()
        tracer.enable()
        parent = tracer.add_event("root", 0.0, 3.0, track="t")
        tracer.add_event("child", 0.0, 1.0, track="t",
                         parent_id=parent.span_id)
        tracer.add_event("child2", 1.0, 2.0, track="t",
                         parent_id=parent.span_id)
        (root,) = span_tree(tracer.records())
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["child",
                                                         "child2"]

    def test_orphans_become_roots(self):
        record = SpanRecord(name="orphan", category="", start_s=0.0,
                            duration_s=1.0, pid=1, thread_id=1,
                            span_id=7, parent_id=99)
        (root,) = span_tree([record])
        assert root["name"] == "orphan"

    def test_write_span_tree(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        tracer.add_event("root", 0.0, 1.0, track="t")
        path = write_span_tree(tracer.records(), tmp_path / "tree.json")
        payload = json.loads(path.read_text())
        assert payload["spans"][0]["name"] == "root"


class TestValidators:
    def test_rejects_missing_envelope(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [
                {"name": "e", "ph": "B", "pid": 1, "tid": 1}]})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace({"traceEvents": [
                {"name": "e", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0}]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace({"traceEvents": [
                {"name": "e", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0, "dur": -1}]})

    def test_rejects_overlapping_row_events(self):
        with pytest.raises(ValueError, match="overlaps"):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0, "dur": 10},
                {"name": "b", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 5, "dur": 10}]})

    def test_accepts_nested_row_events(self):
        validate_chrome_trace({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1,
             "ts": 2, "dur": 5}]})

    def test_metrics_validator_rejects_missing_section(self):
        with pytest.raises(ValueError, match="histograms"):
            validate_metrics_snapshot({"counters": {}, "gauges": {}})

    def test_metrics_validator_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="non-numeric"):
            validate_metrics_snapshot({
                "counters": {"c": "three"}, "gauges": {},
                "histograms": {}})

    def test_metrics_validator_rejects_bucket_mismatch(self):
        with pytest.raises(ValueError, match="bucket counts"):
            validate_metrics_snapshot({
                "counters": {}, "gauges": {},
                "histograms": {"h": {
                    "count": 1, "sum": 1.0, "bounds": [1.0],
                    "bucket_counts": [1], "quantiles": {}}}})

    def test_detect_payload_kind(self):
        assert detect_payload_kind({"traceEvents": []}) == "trace"
        assert detect_payload_kind({"counters": {}, "gauges": {},
                                    "histograms": {}}) == "metrics"
        assert detect_payload_kind([1, 2]) is None
        assert detect_payload_kind({"x": 1}) is None
