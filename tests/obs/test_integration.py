"""End-to-end observability acceptance tests (ISSUE 4 criteria).

- A traced Megatron-1T evaluation exports a span tree whose per-term
  durations sum to the :class:`TrainingTimeBreakdown` total.
- The CLI ``--trace`` / ``--metrics`` flags write files that the
  ``python -m repro.obs`` validator accepts, and ``--log-level``
  controls the default output.
- Sweep journals carry a metrics record whose counters accumulate
  across a resumed run.
"""

import json

import pytest

from repro.cli import main
from repro.core.model import AMPeD
from repro.hardware.catalog import megatron_a100_cluster
from repro.obs.__main__ import main as validate_main
from repro.obs.export import span_tree, validate_chrome_trace
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.search.resilience import SweepJournal, run_sweep
from repro.transformer.zoo import MEGATRON_1T


class TestTracedMegatron1T:
    def test_term_durations_sum_to_breakdown_total(self):
        """The span tree of a traced evaluation IS the Eq. 1 split."""
        system = megatron_a100_cluster()
        amped = AMPeD.for_mapping(MEGATRON_1T, system, tp=8, pp=8,
                                  dp=16,
                                  efficiency=CASE_STUDY_EFFICIENCY)
        tracer = get_tracer()
        tracer.enable(reset=True)
        breakdown = amped.estimate_batch(2048)
        tracer.disable()
        roots = span_tree(tracer.records())
        (root,) = [r for r in roots
                   if r["name"] == "model.estimate_batch"]
        assert root["duration_s"] == pytest.approx(breakdown.total)
        terms = {c["name"]: c["duration_s"] for c in root["children"]}
        assert terms == {
            f"term.{key}": pytest.approx(value)
            for key, value in breakdown.as_dict().items()}
        assert sum(terms.values()) == pytest.approx(breakdown.total)
        assert root["attrs"]["model"] == MEGATRON_1T.name

    def test_sweep_evaluations_get_distinct_tracks(self, tiny_amped):
        tracer = get_tracer()
        tracer.enable(reset=True)
        tiny_amped.estimate_batch(64)
        tiny_amped.estimate_batch(128)
        tracer.disable()
        tracks = {r.track for r in tracer.records()
                  if r.name == "model.estimate_batch"}
        assert len(tracks) == 2


class TestCliFlags:
    ESTIMATE = ["estimate", "--nodes", "4", "--tp", "8", "--dp", "4",
                "--batch", "512"]

    def test_trace_flag_writes_valid_chrome_trace(self, tmp_path,
                                                  capsys):
        trace_path = tmp_path / "trace.json"
        exit_code = main(self.ESTIMATE + ["--trace", str(trace_path)])
        assert exit_code == 0
        payload = json.loads(trace_path.read_text())
        validate_chrome_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "cli.estimate" in names
        assert "model.estimate_batch" in names
        assert f"wrote trace to {trace_path}" in capsys.readouterr().out

    def test_metrics_flag_writes_snapshot(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        exit_code = main(self.ESTIMATE
                         + ["--metrics", str(metrics_path)])
        assert exit_code == 0
        payload = json.loads(metrics_path.read_text())
        assert any(name.startswith("cache.")
                   for name in payload["gauges"])
        assert "wrote metrics to" in capsys.readouterr().out

    def test_metrics_flag_without_path_prints_table(self, capsys):
        exit_code = main(self.ESTIMATE + ["--metrics"])
        assert exit_code == 0
        assert "metrics snapshot" in capsys.readouterr().out

    def test_log_level_warning_silences_stdout(self, capsys):
        exit_code = main(self.ESTIMATE + ["--log-level", "warning"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_default_output_unchanged(self, capsys):
        main(self.ESTIMATE)
        default = capsys.readouterr().out
        main(self.ESTIMATE + ["--log-level", "info"])
        explicit = capsys.readouterr().out
        assert default == explicit
        assert "training time breakdown" in default

    def test_errors_go_to_stderr(self, capsys):
        # TP=64 does not divide Megatron-145B's 96 attention heads.
        exit_code = main(["estimate", "--nodes", "16", "--tp", "64",
                          "--dp", "2", "--batch", "512",
                          "--log-level", "warning"])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert captured.out == ""

    def test_sweep_reports_journal_cumulative(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        base = ["sweep", "--nodes", "2", "--model", "mingpt-85m",
                "--batch", "256", "--top", "3"]
        assert main(base + ["--journal", str(journal)]) == 0
        assert "journal cumulative: 1 run(s)" in capsys.readouterr().out
        assert main(base + ["--resume", str(journal)]) == 0
        assert "journal cumulative: 2 run(s)" in capsys.readouterr().out


class TestJournalMetricsRecord:
    def test_cumulative_counters_accumulate_across_resume(
            self, tiny_amped, efficiency, tmp_path):
        from dataclasses import replace

        template = replace(tiny_amped, efficiency=efficiency)
        journal = tmp_path / "journal.jsonl"
        first = run_sweep(template, 64, max_results=5,
                          journal_path=journal)
        assert first.cumulative["counters"]["runs"] == 1
        evaluated = first.cumulative["counters"]["evaluated"]
        assert evaluated > 0

        stored = SweepJournal.load_metrics(journal)
        assert stored["counters"] == first.cumulative["counters"]

        second = run_sweep(template, 64, max_results=5,
                           journal_path=journal, resume=True)
        counters = second.cumulative["counters"]
        assert counters["runs"] == 2
        # Resume replays the journal: coverage stays, nothing re-runs.
        assert counters["evaluated"] == evaluated

    def test_sweep_populates_process_metrics(self, tiny_amped,
                                             efficiency):
        from dataclasses import replace

        template = replace(tiny_amped, efficiency=efficiency)
        run_sweep(template, 64, max_results=5)
        snapshot = get_metrics().snapshot()
        assert snapshot["counters"]["sweep.evaluated"] > 0
        assert snapshot["gauges"]["sweep.heartbeat_monotonic_s"] > 0
        assert snapshot["histograms"]["sweep.candidate_seconds"][
            "count"] > 0


class TestValidatorCli:
    def _write_trace(self, tmp_path):
        tracer = get_tracer()
        tracer.enable(reset=True)
        tracer.add_event("e", 0.0, 1.0, track="row")
        from repro.obs.export import write_chrome_trace
        path = write_chrome_trace(tracer.records(),
                                  tmp_path / "trace.json")
        tracer.disable()
        return path

    def test_accepts_valid_files(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        metrics = tmp_path / "metrics.json"
        registry = get_metrics()
        registry.counter("c").inc()
        from repro.obs.export import write_metrics_snapshot
        write_metrics_snapshot(registry.snapshot(), metrics)
        assert validate_main([str(trace), str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "(trace)" in out
        assert "(metrics)" in out

    def test_rejects_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert validate_main([str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_rejects_unknown_payload(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text('{"hello": 1}')
        assert validate_main([str(other)]) == 1

    def test_rejects_missing_file(self, tmp_path):
        assert validate_main([str(tmp_path / "absent.json")]) == 1
