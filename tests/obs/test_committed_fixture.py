"""The committed calibration fixture stays valid and numerically true.

``tests/fixtures/calibration_trace.json`` is a golden anchor (see the
README next to it): the ingester must accept it forever, and the model
self-calibrated against it must show ~zero drift.  If the drift test
fails after an *intentional* change to the model's numbers, regenerate
the fixture with the command in the README.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.model import AMPeD
from repro.fitting.trace_fit import fit_from_observations
from repro.obs.__main__ import validate_file
from repro.obs.ingest import load_chrome_trace
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.reporting.drift import compute_drift
from repro.transformer.zoo import get_model

FIXTURE = Path(__file__).parents[1] / "fixtures" \
    / "calibration_trace.json"


@pytest.fixture(scope="module")
def observation():
    observations = load_chrome_trace(FIXTURE).observations()
    assert len(observations) == 1
    return observations[0]


class TestCommittedFixture:
    def test_schema_validates(self):
        assert validate_file(str(FIXTURE)) == "trace"

    def test_identity_survives_the_commit(self, observation):
        assert observation.model == "Megatron-145B"
        assert observation.global_batch == 512
        assert observation.mapping is not None
        assert observation.mapping.tp == 8
        assert observation.mapping.dp == 4
        assert all(value >= 0.0
                   for value in observation.terms.values())

    def test_self_drift_is_zero(self, observation):
        """Golden anchor: the model still produces these numbers."""
        base = AMPeD(model=get_model("megatron-145b"),
                     system=_fixture_system(),
                     parallelism=observation.mapping,
                     efficiency=CASE_STUDY_EFFICIENCY,
                     validate=False)
        report = compute_drift(base, [observation])
        assert report.healthy
        assert report.max_rel_error < 1e-9

    def test_fit_on_the_fixture_converges(self, observation):
        base = AMPeD(model=get_model("megatron-145b"),
                     system=_fixture_system(),
                     parallelism=observation.mapping,
                     efficiency=CASE_STUDY_EFFICIENCY,
                     validate=False)
        fit = fit_from_observations(base, [observation],
                                    parameters=("flops_fraction",))
        assert fit.converged
        assert fit.coefficients.flops_fraction \
            == pytest.approx(1.0, rel=1e-6)


def _fixture_system():
    """The ``--nodes 4`` CLI system the fixture was recorded on."""
    from repro.hardware.catalog import ACCELERATORS
    from repro.hardware.interconnect import IB_HDR, NVLINK3
    from repro.hardware.node import NodeSpec
    from repro.hardware.system import SystemSpec

    return SystemSpec(
        node=NodeSpec(accelerator=ACCELERATORS["a100"],
                      n_accelerators=8, intra_link=NVLINK3,
                      inter_link=IB_HDR, n_nics=8),
        n_nodes=4)
