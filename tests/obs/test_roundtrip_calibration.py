"""The closed observability loop, end to end (this PR's acceptance).

One test module walks the entire pipeline on a zoo model:

    estimate under tracer → export Chrome trace → ingest → fit → drift

asserting the three headline criteria: (a) ingested per-term seconds
equal the breakdown **exactly** (bit-for-bit, via the term attrs);
(b) self-calibration against a machine obeying known coefficients
recovers every coefficient to ≤1e-6 relative; (c) the recalibrated
model shows ~zero drift against the same observations.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.model import AMPeD
from repro.fitting.trace_fit import (
    FIT_PARAMETERS,
    FittedCoefficients,
    fit_from_observations,
)
from repro.hardware.catalog import megatron_a100_cluster
from repro.obs.export import write_chrome_trace
from repro.obs.ingest import load_chrome_trace
from repro.obs.trace import get_tracer
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.reporting.drift import compute_drift
from repro.transformer.zoo import MEGATRON_530B

#: The "machine being measured": known coefficients the fit must find.
TRUTH = FittedCoefficients(
    efficiency_a=0.95, efficiency_b=30.0, flops_fraction=0.88,
    link_latency_scale=1.4, link_bandwidth_scale=0.75)

#: (tp, pp, dp, n_microbatches, global_batch) mappings spanning the
#: microbatch regimes that keep every coefficient identifiable.
MAPPINGS = (
    (8, 8, 16, None, 2048),
    (8, 8, 16, 32, 4096),
    (8, 16, 8, 16, 1024),
    (4, 8, 32, 8, 512),
)


@pytest.fixture(scope="module")
def loop(tmp_path_factory):
    """Run the pipeline once, share its artifacts across the tests."""
    system = megatron_a100_cluster()
    base = AMPeD.for_mapping(
        MEGATRON_530B, system, tp=8, pp=8, dp=16,
        efficiency=MicrobatchEfficiency(a=1.0, b=16.0, floor=0.05),
        evaluation_path="collapsed")

    measured = TRUTH.apply(base)
    tracer = get_tracer()
    tracer.enable(reset=True)
    breakdowns = []
    for tp, pp, dp, n_microbatches, global_batch in MAPPINGS:
        scenario = AMPeD.for_mapping(
            MEGATRON_530B, measured.system, tp=tp, pp=pp, dp=dp,
            n_microbatches=n_microbatches,
            efficiency=measured.efficiency,
            evaluation_path="collapsed")
        breakdowns.append(scenario.estimate_batch(global_batch))
    records = tracer.records()
    tracer.disable()
    tracer.reset()

    path = write_chrome_trace(
        records, tmp_path_factory.mktemp("loop") / "measured.json")
    observations = load_chrome_trace(path).observations()
    fit = fit_from_observations(base, observations)
    drift = compute_drift(fit.coefficients.apply(base), observations)
    return {"base": base, "breakdowns": breakdowns,
            "observations": observations, "fit": fit, "drift": drift}


class TestIngestFidelity:
    def test_one_observation_per_estimate(self, loop):
        assert len(loop["observations"]) == len(MAPPINGS)

    def test_terms_equal_breakdowns_exactly(self, loop):
        """Bit-exact recovery — not approx — via the term attrs."""
        for observation, breakdown in zip(loop["observations"],
                                          loop["breakdowns"]):
            assert dict(observation.terms) == breakdown.as_dict()

    def test_observations_carry_their_mappings(self, loop):
        for observation, (tp, pp, dp, n_microbatches, global_batch) \
                in zip(loop["observations"], MAPPINGS):
            mapping = observation.mapping
            assert mapping is not None
            assert mapping.tp == tp
            assert mapping.pp == pp
            assert mapping.dp == dp
            assert observation.global_batch == global_batch
            assert observation.model == MEGATRON_530B.name


class TestSelfCalibration:
    def test_recovers_coefficients_to_1e6(self, loop):
        fit = loop["fit"]
        assert fit.converged
        for name in FIT_PARAMETERS:
            recovered = getattr(fit.coefficients, name)
            truth = getattr(TRUTH, name)
            assert abs(recovered - truth) / truth < 1e-6, name

    def test_fit_is_well_conditioned_and_exact(self, loop):
        fit = loop["fit"]
        assert fit.warnings == []
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n_observations == len(MAPPINGS)

    def test_drift_after_recalibration_is_zero(self, loop):
        drift = loop["drift"]
        assert drift.healthy
        assert drift.max_rel_error < 1e-6

    def test_uncalibrated_base_drifts(self, loop):
        """Sanity: before calibration the same observations DO drift
        (the loop is measuring something real)."""
        report = compute_drift(loop["base"], loop["observations"])
        assert not report.healthy
