"""Unit tests for the metrics registry and the cache-stats fold."""

import pytest

from repro.core.communication import comm_cache_stats
from repro.core.operations import cache_stats
from repro.errors import ConfigurationError
from repro.obs.export import validate_metrics_snapshot
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_cache_metrics,
    get_metrics,
    reset_metrics,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(float("inf"))


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.is_set

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            Gauge("g").set(float("nan"))


class TestHistogram:
    def test_counts_and_sum(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)

    def test_quantile_reports_bucket_bound(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(50.0)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.99) == 1.0
        # The top quantile lands in the 10..100 bucket but is capped at
        # the observed maximum.
        assert hist.quantile(1.0) == 50.0

    def test_overflow_bucket_reports_max(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(123.0)
        assert hist.quantile(0.5) == 123.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", bounds=(1.0,)).quantile(0.5) == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigurationError):
            registry.gauge("name")
        with pytest.raises(ConfigurationError):
            registry.histogram("name")

    def test_empty_name_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("")

    def test_snapshot_validates(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("heartbeat").set(1.5)
        registry.histogram("latency").observe(0.02)
        snapshot = registry.snapshot()
        validate_metrics_snapshot(snapshot)
        assert snapshot["counters"]["runs"] == 3
        assert snapshot["gauges"]["heartbeat"] == 1.5
        hist = snapshot["histograms"]["latency"]
        assert hist["count"] == 1
        assert set(hist["quantiles"]) == {"p50", "p90", "p99"}
        assert len(hist["bucket_counts"]) == len(hist["bounds"]) + 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_format_table_lists_each_instrument(self):
        registry = MetricsRegistry()
        registry.counter("sweep.evaluated").inc(7)
        registry.gauge("sweep.degraded").set(1)
        registry.histogram("sweep.candidate_seconds").observe(0.1)
        table = registry.format_table()
        assert "sweep.evaluated" in table
        assert "sweep.degraded" in table
        assert "sweep.candidate_seconds" in table

    def test_format_table_empty(self):
        assert "(empty)" in MetricsRegistry().format_table()

    def test_default_registry_is_process_wide(self):
        get_metrics().counter("shared").inc()
        assert get_metrics().snapshot()["counters"]["shared"] == 1
        reset_metrics()
        assert get_metrics().snapshot()["counters"] == {}


class TestCacheMetricsRoundTrip:
    def test_gauges_cover_both_caches(self):
        registry = collect_cache_metrics(MetricsRegistry())
        gauges = registry.snapshot()["gauges"]
        for prefix, stats in (("cache.operations", cache_stats()),
                              ("cache.collectives",
                               comm_cache_stats())):
            for key, value in stats.items():
                if value is None:
                    continue
                assert gauges[f"{prefix}.{key}"] == float(value)

    def test_gauges_move_with_cache_activity(self, tiny_amped):
        before = collect_cache_metrics(
            MetricsRegistry()).snapshot()["gauges"]
        # A known call sequence: the same evaluation twice — the second
        # pass must hit the memoized collective-time cache.
        tiny_amped.estimate_batch(64)
        tiny_amped.estimate_batch(64)
        after = collect_cache_metrics(
            MetricsRegistry()).snapshot()["gauges"]
        assert (after["cache.collectives.hits"]
                > before["cache.collectives.hits"])

    def test_defaults_to_process_registry(self):
        assert collect_cache_metrics() is get_metrics()
        gauges = get_metrics().snapshot()["gauges"]
        assert any(name.startswith("cache.") for name in gauges)
