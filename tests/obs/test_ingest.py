"""Trace/CSV ingestion: the read half of the observability loop.

Every happy path goes through a real tracer → export → ingest cycle
(no hand-rolled fixtures drifting from the exporter); every error
path asserts a structured :class:`IngestError` naming the file and
offset — never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.collectives.ring import simulate_ring_allreduce
from repro.errors import IngestError, ReproError
from repro.hardware.interconnect import NVLINK3
from repro.obs.export import write_chrome_trace
from repro.obs.ingest import (
    TERM_NAMES,
    load_chrome_trace,
    load_csv_timings,
    load_observations,
)
from repro.obs.trace import get_tracer
from repro.parallelism.spec import ParallelismSpec


@pytest.fixture
def traced_estimate(tiny_amped, tmp_path):
    """One traced evaluation exported to disk: (path, breakdown)."""
    tracer = get_tracer()
    tracer.enable(reset=True)
    breakdown = tiny_amped.estimate_batch(64)
    simulate_ring_allreduce(8 * 1024 * 8, 4, NVLINK3)
    tracer.disable()
    path = write_chrome_trace(tracer.records(),
                              tmp_path / "trace.json")
    return path, breakdown


class TestChromeTraceRoundTrip:
    def test_observation_terms_equal_breakdown_exactly(
            self, traced_estimate):
        """Bit-exact: the term attrs carry the unquantized seconds."""
        path, breakdown = traced_estimate
        (observation,) = load_chrome_trace(path).observations()
        assert dict(observation.terms) == breakdown.as_dict()
        assert observation.term_sum_s == pytest.approx(breakdown.total)
        assert observation.total_s == pytest.approx(breakdown.total)

    def test_observation_identity_attrs(self, traced_estimate,
                                        tiny_amped):
        path, _ = traced_estimate
        (observation,) = load_chrome_trace(path).observations()
        assert observation.model == tiny_amped.model.name
        assert observation.global_batch == 64
        assert observation.evaluation_path == "collapsed"
        assert observation.source.endswith("#0")

    def test_mapping_reconstructed_from_degree_attrs(
            self, traced_estimate, tiny_amped):
        from dataclasses import replace

        path, _ = traced_estimate
        (observation,) = load_chrome_trace(path).observations()
        # The emission resolves the defaulted microbatch count, so the
        # reconstruction equals the spec with n_microbatches explicit.
        original = tiny_amped.parallelism
        assert observation.mapping == replace(
            original, n_microbatches=original.microbatches)

    def test_collective_samples_carry_cost_attrs(self,
                                                 traced_estimate):
        path, _ = traced_estimate
        (sample,) = load_chrome_trace(path).collectives()
        assert sample.name == "collective.ring_allreduce"
        assert sample.algorithm == "ring-allreduce"
        assert sample.n_ranks == 4
        assert sample.payload_bytes == 8 * 1024
        assert sample.steps > 0
        assert sample.modeled_time_s > 0

    def test_stage_tracks_collect_named_timelines(self, tmp_path):
        tracer = get_tracer()
        tracer.enable(reset=True)
        tracer.add_event("stage0.fwd", 0.0, 1.0,
                         track="pipeline.stage 0")
        tracer.add_event("stage1.fwd", 1.0, 1.0,
                         track="pipeline.stage 1")
        tracer.add_event("stage0.bwd", 2.0, 2.0,
                         track="pipeline.stage 0")
        tracer.disable()
        path = write_chrome_trace(tracer.records(),
                                  tmp_path / "stages.json")
        tracks = load_chrome_trace(path).stage_tracks()
        assert [t.track for t in tracks] == ["pipeline.stage 0",
                                             "pipeline.stage 1"]
        assert tracks[0].busy_s == pytest.approx(3.0)
        assert [e.name for e in tracks[0].events] == ["stage0.fwd",
                                                      "stage0.bwd"]

    def test_foreign_trace_synthesizes_span_ids(self, tmp_path):
        """Traces from other profilers (no span_id args) still load."""
        target = tmp_path / "foreign.json"
        target.write_text(json.dumps({"traceEvents": [
            {"name": "kernel", "ph": "X", "ts": 0, "dur": 10,
             "pid": 1, "tid": 1},
            {"name": "kernel", "ph": "X", "ts": 10, "dur": 5,
             "pid": 1, "tid": 1},
        ]}))
        trace = load_chrome_trace(target)
        assert [r.span_id for r in trace.records] == [-1, -2]
        assert trace.observations() == []


class TestChromeTraceErrors:
    def _expect(self, target, match):
        with pytest.raises(IngestError, match=match) as excinfo:
            load_chrome_trace(target)
        assert str(target) in str(excinfo.value)

    def test_missing_file(self, tmp_path):
        self._expect(tmp_path / "absent.json", "cannot read trace")

    def test_invalid_json(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{nope")
        self._expect(target, "not valid JSON")

    def test_missing_envelope(self, tmp_path):
        target = tmp_path / "bare.json"
        target.write_text(json.dumps([{"ph": "X"}]))
        self._expect(target, "traceEvents")

    def test_events_not_a_list(self, tmp_path):
        target = tmp_path / "scalar.json"
        target.write_text(json.dumps({"traceEvents": 7}))
        self._expect(target, "must be an array")

    def _write_events(self, tmp_path, events):
        target = tmp_path / "trace.json"
        target.write_text(json.dumps({"traceEvents": events}))
        return target

    def test_unsupported_phase(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "b", "ph": "B", "ts": 0, "pid": 1, "tid": 1}])
        self._expect(target, "unsupported event phase 'B'")

    def test_missing_required_key(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}])
        self._expect(target, "missing required key 'dur'")

    def test_negative_timestamp(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "x", "ph": "X", "ts": -3, "dur": 1,
             "pid": 1, "tid": 1}])
        self._expect(target, "invalid ts=-3")

    def test_error_carries_event_offset(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "ok", "ph": "X", "ts": 0, "dur": 1,
             "pid": 1, "tid": 1},
            {"name": "bad", "ph": "X", "ts": 0, "dur": "soon",
             "pid": 1, "tid": 1}])
        with pytest.raises(IngestError) as excinfo:
            load_chrome_trace(target)
        assert excinfo.value.offset == 1
        assert f"{target}:1:" in str(excinfo.value)

    def test_non_integer_span_id(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1,
             "tid": 1, "args": {"span_id": "one"}}])
        self._expect(target, "non-integer span_id")

    def test_duplicate_span_id(self, tmp_path):
        event = {"name": "x", "ph": "X", "ts": 0, "dur": 1,
                 "pid": 1, "tid": 1, "args": {"span_id": 5}}
        target = self._write_events(tmp_path, [event, dict(event)])
        self._expect(target, "duplicate span_id 5")

    def test_unknown_parent_id(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1,
             "tid": 1, "args": {"span_id": 1, "parent_id": 99}}])
        self._expect(target, "unknown parent_id 99")

    def test_thread_name_without_label(self, tmp_path):
        target = self._write_events(tmp_path, [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {}}])
        self._expect(target, "lacks args.name")

    def test_ingest_error_is_a_repro_error(self):
        assert issubclass(IngestError, ReproError)


class TestCsvTimings:
    def _write(self, tmp_path, text):
        target = tmp_path / "timings.csv"
        target.write_text(text)
        return target

    def test_groups_rows_into_observations(self, tmp_path):
        target = self._write(tmp_path, "\n".join([
            "term,seconds,observation,model,global_batch,tp,pp,dp",
            "compute_forward,1.5,a,tiny,64,4,1,1",
            "comm_pp,0.25,a,tiny,64,4,1,1",
            "compute_forward,1.4,b,tiny,128,2,2,1",
            ""]))
        first, second = load_csv_timings(target)
        assert first.terms == {"compute_forward": 1.5, "comm_pp": 0.25}
        assert first.total_s == pytest.approx(1.75)
        assert first.model == "tiny"
        assert first.global_batch == 64
        assert first.mapping == ParallelismSpec(tp_intra=4)
        assert second.global_batch == 128
        assert second.mapping == ParallelismSpec(tp_intra=2,
                                                 pp_intra=2)

    def test_six_degree_columns_win_over_totals(self, tmp_path):
        target = self._write(tmp_path, "\n".join([
            "term,seconds,tp_intra,tp_inter,pp_intra,pp_inter,"
            "dp_intra,dp_inter,n_microbatches,global_batch",
            "compute_forward,2.0,2,2,1,4,1,1,8,256",
            ""]))
        (observation,) = load_csv_timings(target)
        assert observation.mapping == ParallelismSpec(
            tp_intra=2, tp_inter=2, pp_inter=4, n_microbatches=8)

    def test_rows_without_mapping_yield_none(self, tmp_path):
        target = self._write(tmp_path,
                             "term,seconds\ncompute_forward,1.0\n")
        (observation,) = load_csv_timings(target)
        assert observation.mapping is None
        assert observation.global_batch == 0

    def test_missing_required_column(self, tmp_path):
        target = self._write(tmp_path, "term,millis\nfwd,1\n")
        with pytest.raises(IngestError, match="missing required "
                                              "column 'seconds'"):
            load_csv_timings(target)

    def test_empty_file(self, tmp_path):
        target = self._write(tmp_path, "")
        with pytest.raises(IngestError, match="no header row"):
            load_csv_timings(target)

    def test_header_only(self, tmp_path):
        target = self._write(tmp_path, "term,seconds\n")
        with pytest.raises(IngestError, match="no timing rows"):
            load_csv_timings(target)

    def test_non_numeric_seconds_names_the_line(self, tmp_path):
        target = self._write(
            tmp_path,
            "term,seconds\ncompute_forward,1.0\ncomm_pp,soon\n")
        with pytest.raises(IngestError, match="non-numeric") as excinfo:
            load_csv_timings(target)
        assert excinfo.value.offset == 3

    def test_negative_seconds(self, tmp_path):
        target = self._write(tmp_path,
                             "term,seconds\ncompute_forward,-1\n")
        with pytest.raises(IngestError, match="invalid seconds"):
            load_csv_timings(target)

    def test_duplicate_term_in_observation(self, tmp_path):
        target = self._write(
            tmp_path,
            "term,seconds\ncompute_forward,1\ncompute_forward,2\n")
        with pytest.raises(IngestError, match="twice"):
            load_csv_timings(target)

    def test_conflicting_metadata(self, tmp_path):
        target = self._write(tmp_path, "\n".join([
            "term,seconds,observation,global_batch",
            "compute_forward,1,a,64",
            "comm_pp,1,a,128",
            ""]))
        with pytest.raises(IngestError, match="conflicting "
                                              "global_batch"):
            load_csv_timings(target)


class TestLoadObservations:
    def test_requires_at_least_one_source(self):
        with pytest.raises(IngestError, match="nothing to ingest"):
            load_observations()

    def test_concatenates_trace_then_csv(self, traced_estimate,
                                         tmp_path):
        trace_path, _ = traced_estimate
        csv_path = tmp_path / "extra.csv"
        csv_path.write_text("term,seconds\ncompute_forward,9.0\n")
        observations = load_observations(trace_path, csv_path)
        assert len(observations) == 2
        assert observations[1].terms == {"compute_forward": 9.0}

    def test_term_names_match_breakdown_order(self, tiny_amped):
        assert tuple(tiny_amped.estimate_batch(64).as_dict()) \
            == TERM_NAMES
