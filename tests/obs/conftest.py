"""Shared state hygiene for the observability tests.

The tracer and metrics registry are process-wide singletons; every
test in this package starts from (and leaves behind) a disabled,
empty tracer and an empty registry so tests cannot bleed into each
other or into the rest of the suite.
"""

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import get_tracer


@pytest.fixture(autouse=True)
def clean_observability_state():
    tracer = get_tracer()
    tracer.disable()
    tracer.reset()
    reset_metrics()
    yield
    tracer.disable()
    tracer.reset()
    reset_metrics()
