"""Unit tests for per-sublayer operation counting, against hand
computations on a tiny model (h=64, s=32, L=4, f=256, V=1000)."""

import pytest

from repro.errors import ConfigurationError
from repro.transformer.layers import (
    attention_sublayer,
    embedding_sublayer,
    layer_sublayers,
    logits_sublayer,
    mlp_sublayer,
    moe_ffn_sublayer,
)


class TestAttention:
    def test_mac_flops_formula(self, tiny_model):
        # 8*b*s*h^2 + 4*b*s^2*h with b=2, s=32, h=64
        ops = attention_sublayer(tiny_model, 2)
        expected = 8 * 2 * 32 * 64 * 64 + 4 * 2 * 32 * 32 * 64
        assert ops.mac_flops == expected

    def test_parameters(self, tiny_model):
        ops = attention_sublayer(tiny_model, 1)
        assert ops.parameters == 4 * 64 * 64 + 4 * 64

    def test_scales_linearly_with_batch(self, tiny_model):
        one = attention_sublayer(tiny_model, 1)
        four = attention_sublayer(tiny_model, 4)
        assert four.mac_flops == 4 * one.mac_flops
        assert four.nonlinear_ops == 4 * one.nonlinear_ops
        assert four.parameters == one.parameters

    def test_nonlinear_includes_softmax_heads(self, tiny_model):
        wider = tiny_model.scaled(hidden_size=64)
        base = attention_sublayer(wider, 1).nonlinear_ops
        # doubling heads (same hidden) doubles only the softmax term
        import dataclasses
        more_heads = dataclasses.replace(tiny_model, n_heads=8)
        extra = attention_sublayer(more_heads, 1).nonlinear_ops
        assert extra > base

    def test_rejects_zero_batch(self, tiny_model):
        with pytest.raises(ConfigurationError):
            attention_sublayer(tiny_model, 0)


class TestMLP:
    def test_mac_flops_formula(self, tiny_model):
        # 4*b*s*h*f with b=2, s=32, h=64, f=256
        ops = mlp_sublayer(tiny_model, 2)
        assert ops.mac_flops == 4 * 2 * 32 * 64 * 256

    def test_parameters(self, tiny_model):
        ops = mlp_sublayer(tiny_model, 1)
        assert ops.parameters == 2 * 64 * 256 + 64 + 256

    def test_standard_ffn_is_16bsh2(self, tiny_model):
        ops = mlp_sublayer(tiny_model, 1)
        assert ops.mac_flops == 16 * 1 * 32 * 64 * 64


class TestMoEFFN:
    def test_compute_scales_with_topk_not_experts(self, tiny_moe_model):
        ops = moe_ffn_sublayer(tiny_moe_model, 1)
        dense = mlp_sublayer(tiny_moe_model, 1)
        gating = 2 * 1 * 32 * 64 * 4
        assert ops.mac_flops == dense.mac_flops * 2 + gating

    def test_parameters_scale_with_experts(self, tiny_moe_model):
        ops = moe_ffn_sublayer(tiny_moe_model, 1)
        dense = mlp_sublayer(tiny_moe_model, 1)
        gating_params = 64 * 4
        assert ops.parameters == dense.parameters * 4 + gating_params

    def test_expert_parameters_exclude_gating(self, tiny_moe_model):
        ops = moe_ffn_sublayer(tiny_moe_model, 1)
        dense = mlp_sublayer(tiny_moe_model, 1)
        assert ops.expert_parameters == dense.parameters * 4
        assert ops.expert_parameters < ops.parameters

    def test_dense_model_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            moe_ffn_sublayer(tiny_model, 1)


class TestLayerAssembly:
    def test_dense_layer_has_two_sublayers(self, tiny_model):
        subs = layer_sublayers(tiny_model, 1, 0)
        assert [s.name for s in subs] == ["attention", "mlp"]

    def test_moe_layer_swaps_ffn(self, tiny_moe_model):
        assert [s.name for s in layer_sublayers(tiny_moe_model, 1, 1)] \
            == ["attention", "moe-ffn"]
        assert [s.name for s in layer_sublayers(tiny_moe_model, 1, 0)] \
            == ["attention", "mlp"]


class TestEmbeddingAndLogits:
    def test_embedding_has_no_macs(self, tiny_model):
        ops = embedding_sublayer(tiny_model, 3)
        assert ops.mac_flops == 0.0
        assert ops.parameters == 1000 * 64 + 32 * 64

    def test_logits_mac_formula(self, tiny_model):
        ops = logits_sublayer(tiny_model, 2)
        assert ops.mac_flops == 2 * 2 * 32 * 64 * 1000

    def test_tied_embeddings_add_no_logit_params(self, tiny_model):
        assert logits_sublayer(tiny_model, 1).parameters == 0.0

    def test_untied_embeddings(self, tiny_model):
        import dataclasses
        untied = dataclasses.replace(tiny_model, tied_embeddings=False)
        assert logits_sublayer(untied, 1).parameters == 1000 * 64
