"""Unit tests for the model zoo."""

import pytest

from repro.transformer.config import TransformerConfig
from repro.transformer.params import total_parameters
from repro.transformer.zoo import (
    GLAM_1_2T,
    GPIPE_T24,
    GPT3_175B,
    MINGPT_85M,
    MINGPT_PP,
    MODELS,
    get_model,
)


class TestRegistry:
    def test_all_entries_are_configs(self):
        assert all(isinstance(m, TransformerConfig)
                   for m in MODELS.values())

    def test_lookup_case_insensitive(self):
        assert get_model("MEGATRON-145B").name == "Megatron-145B"

    def test_unknown_model_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("gpt-5")
        assert "megatron-145b" in str(excinfo.value)

    def test_registry_covers_paper_models(self):
        expected = {"mingpt-85m", "mingpt-pp", "megatron-145b",
                    "megatron-310b", "megatron-530b", "megatron-1t",
                    "gpt3-175b", "gpipe-t24", "glam-1.2t"}
        assert expected <= set(MODELS)

    def test_megatron_family_sizes(self):
        """The smaller family members land on their advertised sizes."""
        from repro.transformer.params import total_parameters
        for key, billions in (("megatron-1.7b", 1.7),
                              ("megatron-3.6b", 3.6),
                              ("megatron-7.5b", 7.5),
                              ("megatron-18b", 18),
                              ("megatron-39b", 39),
                              ("megatron-76b", 76)):
            total = total_parameters(get_model(key))
            assert total == pytest.approx(billions * 1e9, rel=0.12)

    def test_megatron_family_monotone(self):
        """Depth, width and parameters all grow along the family."""
        from repro.transformer.params import total_parameters
        keys = ["megatron-1.7b", "megatron-3.6b", "megatron-7.5b",
                "megatron-18b", "megatron-39b", "megatron-76b",
                "megatron-145b", "megatron-310b", "megatron-530b",
                "megatron-1t"]
        models = [get_model(key) for key in keys]
        params = [total_parameters(model) for model in models]
        widths = [model.hidden_size for model in models]
        assert params == sorted(params)
        assert widths == sorted(widths)


class TestPaperArchitectures:
    def test_mingpt_85m_architecture(self):
        assert (MINGPT_85M.n_layers, MINGPT_85M.n_heads,
                MINGPT_85M.hidden_size) == (12, 12, 768)

    def test_mingpt_pp_architecture(self):
        """The paper's stated PP-validation variant: 16 layers, 8 heads,
        hidden 1024."""
        assert (MINGPT_PP.n_layers, MINGPT_PP.n_heads,
                MINGPT_PP.hidden_size) == (16, 8, 1024)

    def test_gpt3_architecture(self):
        assert (GPT3_175B.n_layers, GPT3_175B.hidden_size) == (96, 12288)
        assert total_parameters(GPT3_175B) == pytest.approx(175e9,
                                                            rel=0.05)

    def test_gpipe_has_24_layers(self):
        assert GPIPE_T24.n_layers == 24

    def test_glam_is_about_1_2t(self):
        assert GLAM_1_2T.uses_moe
        assert GLAM_1_2T.moe.n_experts == 64
        assert GLAM_1_2T.n_moe_layers == 32
        assert total_parameters(GLAM_1_2T) == pytest.approx(1.2e12,
                                                            rel=0.1)
