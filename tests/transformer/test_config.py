"""Unit tests for transformer configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.transformer.config import MoEConfig, TransformerConfig


def make(**overrides) -> TransformerConfig:
    base = dict(name="m", n_layers=4, hidden_size=64, n_heads=4,
                sequence_length=32, vocab_size=100)
    base.update(overrides)
    return TransformerConfig(**base)


class TestTransformerConfig:
    def test_ffn_defaults_to_4h(self):
        assert make().ffn_size == 256

    def test_ffn_override(self):
        assert make(ffn_hidden_size=512).ffn_size == 512

    def test_head_dim(self):
        assert make().head_dim == 16

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigurationError):
            make(hidden_size=65)

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigurationError):
            make(n_layers=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            make(name="")

    def test_rejects_negative_ffn(self):
        with pytest.raises(ConfigurationError):
            make(ffn_hidden_size=-1)

    def test_dense_has_no_moe_layers(self):
        model = make()
        assert not model.uses_moe
        assert model.n_moe_layers == 0
        assert not any(model.is_moe_layer(i) for i in range(4))

    def test_scaled_copies(self):
        wider = make().scaled(hidden_size=128)
        assert wider.hidden_size == 128
        assert wider.n_layers == 4


class TestMoEConfig:
    def test_every_other_layer(self):
        model = make(moe=MoEConfig(n_experts=4, expert_interval=2))
        assert model.n_moe_layers == 2
        assert [model.is_moe_layer(i) for i in range(4)] \
            == [False, True, False, True]

    def test_every_layer(self):
        model = make(moe=MoEConfig(n_experts=4, expert_interval=1))
        assert model.n_moe_layers == 4

    def test_layer_index_bounds(self):
        model = make(moe=MoEConfig(n_experts=4))
        with pytest.raises(ConfigurationError):
            model.is_moe_layer(4)
        with pytest.raises(ConfigurationError):
            model.is_moe_layer(-1)

    def test_without_moe(self):
        model = make(moe=MoEConfig(n_experts=4))
        dense = model.without_moe()
        assert dense.moe is None
        assert dense.n_moe_layers == 0
        # original untouched
        assert model.uses_moe

    def test_without_moe_on_dense_is_identity(self):
        model = make()
        assert model.without_moe() is model

    def test_rejects_single_expert(self):
        with pytest.raises(ConfigurationError):
            MoEConfig(n_experts=1)

    def test_rejects_topk_above_experts(self):
        with pytest.raises(ConfigurationError):
            MoEConfig(n_experts=4, top_k=5)

    def test_rejects_capacity_below_one(self):
        with pytest.raises(ConfigurationError):
            MoEConfig(n_experts=4, capacity_factor=0.5)


class TestNonFiniteInputs:
    def test_rejects_nan_capacity_factor(self):
        with pytest.raises(ConfigurationError, match="finite"):
            MoEConfig(n_experts=4, capacity_factor=float("nan"))

    @pytest.mark.parametrize("field", ["n_layers", "hidden_size",
                                       "sequence_length", "vocab_size"])
    def test_rejects_nan_count_fields(self, field):
        with pytest.raises(ConfigurationError):
            make(**{field: float("nan")})
