"""Unit tests for the compute-optimal budget helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.transformer.params import active_parameters_per_token
from repro.transformer.scaling_laws import (
    chinchilla_optimal_tokens,
    overtraining_ratio,
    training_flops_budget,
)
from repro.transformer.zoo import GLAM_1_2T, MEGATRON_145B


class TestChinchilla:
    def test_twenty_tokens_per_parameter(self):
        tokens = chinchilla_optimal_tokens(MEGATRON_145B)
        active = active_parameters_per_token(MEGATRON_145B)
        assert tokens == pytest.approx(20 * active)

    def test_145b_needs_about_3t_tokens(self):
        assert chinchilla_optimal_tokens(MEGATRON_145B) \
            == pytest.approx(2.9e12, rel=0.1)

    def test_moe_budgeted_by_active_params(self):
        """GLaM's 1.2T stored parameters do not inflate the budget;
        only its ~100B active parameters count."""
        tokens = chinchilla_optimal_tokens(GLAM_1_2T)
        assert tokens < 20 * 1.2e12 / 3

    def test_custom_ratio(self):
        assert chinchilla_optimal_tokens(MEGATRON_145B,
                                         tokens_per_parameter=10) \
            == pytest.approx(
                chinchilla_optimal_tokens(MEGATRON_145B) / 2)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            chinchilla_optimal_tokens(MEGATRON_145B,
                                      tokens_per_parameter=0)


class TestBudgets:
    def test_flops_budget_6nd(self):
        tokens = 1e12
        budget = training_flops_budget(MEGATRON_145B, tokens)
        active = active_parameters_per_token(MEGATRON_145B)
        assert budget == pytest.approx(6 * active * tokens)

    def test_default_uses_chinchilla(self):
        assert training_flops_budget(MEGATRON_145B) \
            == pytest.approx(training_flops_budget(
                MEGATRON_145B,
                chinchilla_optimal_tokens(MEGATRON_145B)))

    def test_overtraining_ratio(self):
        optimal = chinchilla_optimal_tokens(MEGATRON_145B)
        assert overtraining_ratio(MEGATRON_145B, optimal) \
            == pytest.approx(1.0)
        assert overtraining_ratio(MEGATRON_145B, 2 * optimal) \
            == pytest.approx(2.0)

    def test_rejects_bad_tokens(self):
        with pytest.raises(ConfigurationError):
            overtraining_ratio(MEGATRON_145B, 0)
