"""Unit tests for parameter counting and FLOP formulas."""

import pytest

from repro.transformer.params import (
    active_parameters_per_token,
    dense_layer_parameters,
    flops_per_token,
    layer_parameters,
    model_flops_per_batch,
    total_parameters,
)
from repro.transformer.zoo import (
    MEGATRON_1T,
    MEGATRON_145B,
    MEGATRON_310B,
    MEGATRON_530B,
    MINGPT_85M,
)


class TestZooParameterCounts:
    """The Megatron entries must land on their advertised sizes."""

    @pytest.mark.parametrize("model,billions", [
        (MEGATRON_145B, 145), (MEGATRON_310B, 310),
        (MEGATRON_530B, 530), (MEGATRON_1T, 1000),
    ])
    def test_megatron_sizes(self, model, billions):
        total = total_parameters(model)
        assert total == pytest.approx(billions * 1e9, rel=0.06)

    def test_mingpt_85m(self):
        layers_only = total_parameters(MINGPT_85M,
                                       include_embeddings=False)
        assert layers_only == pytest.approx(85e6, rel=0.05)


class TestLayerParameters:
    def test_dense_layer_is_12h2_plus_small(self, tiny_model):
        params = dense_layer_parameters(tiny_model)
        assert params == pytest.approx(12 * 64 * 64, rel=0.02)

    def test_layer_parameters_match_dense(self, tiny_model):
        assert layer_parameters(tiny_model, 0) \
            == dense_layer_parameters(tiny_model)

    def test_moe_layer_heavier(self, tiny_moe_model):
        assert layer_parameters(tiny_moe_model, 1) \
            > layer_parameters(tiny_moe_model, 0)


class TestActiveParameters:
    def test_dense_active_equals_total_without_embeddings(self, tiny_model):
        assert active_parameters_per_token(tiny_model) \
            == total_parameters(tiny_model, include_embeddings=False)

    def test_moe_active_below_total(self, tiny_moe_model):
        active = active_parameters_per_token(tiny_moe_model)
        total = total_parameters(tiny_moe_model,
                                 include_embeddings=False)
        assert active < total

    def test_moe_active_scales_with_topk(self, tiny_moe_model):
        import dataclasses

        from repro.transformer.config import MoEConfig
        top1 = dataclasses.replace(
            tiny_moe_model,
            moe=MoEConfig(n_experts=4, expert_interval=2, top_k=1))
        assert active_parameters_per_token(top1) \
            < active_parameters_per_token(tiny_moe_model)


class TestFlops:
    def test_batch_linearity(self, tiny_model):
        one = model_flops_per_batch(tiny_model, 1)
        eight = model_flops_per_batch(tiny_model, 8)
        assert eight == pytest.approx(8 * one)

    def test_backward_multiplier(self, tiny_model):
        fwd_only = model_flops_per_batch(tiny_model, 1,
                                         backward_multiplier=0.0)
        fwd_bwd = model_flops_per_batch(tiny_model, 1,
                                        backward_multiplier=2.0)
        assert fwd_bwd == pytest.approx(3 * fwd_only)

    def test_logits_toggle(self, tiny_model):
        with_logits = model_flops_per_batch(tiny_model, 1)
        without = model_flops_per_batch(tiny_model, 1,
                                        include_logits=False)
        assert with_logits > without

    def test_flops_per_token_approx_6p(self):
        """For s << h dense models, FLOPs/token ~ 6 x parameters."""
        per_token = flops_per_token(MEGATRON_145B)
        params = total_parameters(MEGATRON_145B,
                                  include_embeddings=False)
        assert per_token == pytest.approx(6 * params, rel=0.15)
