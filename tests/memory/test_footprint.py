"""Unit tests for the memory footprint model."""

import pytest

from repro.core.zero import ZeroConfig
from repro.errors import ConfigurationError
from repro.hardware.precision import FP8_TRAINING, MIXED_FP16
from repro.memory.footprint import (
    activation_bytes_per_layer,
    estimate_footprint,
)
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.params import total_parameters


class TestActivations:
    def test_scales_linearly_with_microbatch(self, tiny_model):
        one = activation_bytes_per_layer(tiny_model, 1, MIXED_FP16)
        four = activation_bytes_per_layer(tiny_model, 4, MIXED_FP16)
        assert four == pytest.approx(4 * one)

    def test_tp_shards_activations(self, tiny_model):
        full = activation_bytes_per_layer(tiny_model, 4, MIXED_FP16)
        sharded = activation_bytes_per_layer(tiny_model, 4, MIXED_FP16,
                                             tp_degree=4)
        assert sharded == pytest.approx(full / 4)

    def test_precision_scales(self, tiny_model):
        fp16 = activation_bytes_per_layer(tiny_model, 4, MIXED_FP16)
        fp8 = activation_bytes_per_layer(tiny_model, 4, FP8_TRAINING)
        assert fp8 == pytest.approx(fp16 / 2)

    def test_rejects_zero_microbatch(self, tiny_model):
        with pytest.raises(ConfigurationError):
            activation_bytes_per_layer(tiny_model, 0, MIXED_FP16)


class TestFootprint:
    def test_serial_parameter_bytes(self, tiny_model, serial_spec):
        footprint = estimate_footprint(tiny_model, serial_spec, 1,
                                       MIXED_FP16)
        expected = total_parameters(tiny_model) * 2  # 16 bits = 2 bytes
        assert footprint.parameters == pytest.approx(expected)

    def test_adam_states_are_12_bytes(self, tiny_model, serial_spec):
        footprint = estimate_footprint(tiny_model, serial_spec, 1,
                                       MIXED_FP16)
        assert footprint.optimizer_states \
            == pytest.approx(total_parameters(tiny_model) * 12)

    def test_tp_and_pp_shard_model_state(self, tiny_model):
        serial = estimate_footprint(tiny_model, ParallelismSpec(), 1,
                                    MIXED_FP16)
        sharded = estimate_footprint(
            tiny_model, ParallelismSpec(tp_intra=2, pp_inter=2), 1,
            MIXED_FP16)
        assert sharded.parameters == pytest.approx(serial.parameters / 4)

    def test_zero_stages_shed_state(self, tiny_model):
        spec = ParallelismSpec(dp_inter=4)
        by_stage = [estimate_footprint(tiny_model, spec, 1, MIXED_FP16,
                                       zero=ZeroConfig(stage=stage)).total
                    for stage in (0, 1, 2, 3)]
        assert by_stage == sorted(by_stage, reverse=True)
        assert by_stage[3] < by_stage[0]

    def test_zero1_sheds_exactly_optimizer(self, tiny_model):
        spec = ParallelismSpec(dp_inter=4)
        plain = estimate_footprint(tiny_model, spec, 1, MIXED_FP16)
        zero1 = estimate_footprint(tiny_model, spec, 1, MIXED_FP16,
                                   zero=ZeroConfig(stage=1))
        assert zero1.optimizer_states \
            == pytest.approx(plain.optimizer_states / 4)
        assert zero1.parameters == plain.parameters

    def test_as_dict_includes_total(self, tiny_model, serial_spec):
        data = estimate_footprint(tiny_model, serial_spec, 1,
                                  MIXED_FP16).as_dict()
        assert data["total"] == pytest.approx(
            data["parameters"] + data["gradients"]
            + data["optimizer_states"] + data["activations"])

    def test_in_flight_microbatches_scale_activations(self, tiny_model):
        spec = ParallelismSpec(pp_inter=4, n_microbatches=16)
        few = estimate_footprint(tiny_model, spec, 1, MIXED_FP16,
                                 in_flight_microbatches=1)
        many = estimate_footprint(tiny_model, spec, 1, MIXED_FP16,
                                  in_flight_microbatches=16)
        assert many.activations == pytest.approx(16 * few.activations)

    def test_default_in_flight_is_1f1b_bound(self, tiny_model):
        spec = ParallelismSpec(pp_inter=4, n_microbatches=16)
        default = estimate_footprint(tiny_model, spec, 1, MIXED_FP16)
        explicit = estimate_footprint(tiny_model, spec, 1, MIXED_FP16,
                                      in_flight_microbatches=4)
        assert default.activations == pytest.approx(explicit.activations)
