"""Unit tests for activation-recomputation memory modeling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.precision import MIXED_FP16
from repro.memory.footprint import (
    activation_bytes_per_layer,
    checkpointed_activation_bytes_per_layer,
    estimate_footprint,
)
from repro.parallelism.spec import ParallelismSpec


class TestCheckpointedActivations:
    def test_only_layer_input_survives(self, tiny_model):
        # s * ub * h * 2 bytes, undivided
        expected = 32 * 4 * 64 * 2
        assert checkpointed_activation_bytes_per_layer(
            tiny_model, 4, MIXED_FP16) == expected

    def test_far_below_full_storage(self, tiny_model):
        full = activation_bytes_per_layer(tiny_model, 4, MIXED_FP16)
        checkpointed = checkpointed_activation_bytes_per_layer(
            tiny_model, 4, MIXED_FP16)
        assert checkpointed < full / 10

    def test_tp_shards(self, tiny_model):
        flat = checkpointed_activation_bytes_per_layer(
            tiny_model, 4, MIXED_FP16)
        sharded = checkpointed_activation_bytes_per_layer(
            tiny_model, 4, MIXED_FP16, tp_degree=4)
        assert sharded == pytest.approx(flat / 4)

    def test_rejects_bad_inputs(self, tiny_model):
        with pytest.raises(ConfigurationError):
            checkpointed_activation_bytes_per_layer(
                tiny_model, 0, MIXED_FP16)
        with pytest.raises(ConfigurationError):
            checkpointed_activation_bytes_per_layer(
                tiny_model, 4, MIXED_FP16, tp_degree=0)


class TestFootprintIntegration:
    def test_recompute_shrinks_only_activations(self, tiny_model):
        spec = ParallelismSpec(pp_inter=4, n_microbatches=8)
        stored = estimate_footprint(tiny_model, spec, 4, MIXED_FP16)
        recomputed = estimate_footprint(
            tiny_model, spec, 4, MIXED_FP16,
            recompute_activations=True)
        assert recomputed.activations < stored.activations
        assert recomputed.parameters == stored.parameters
        assert recomputed.optimizer_states == stored.optimizer_states

    def test_recompute_raises_max_microbatch(self, tiny_model):
        """A microbatch that overflows with stored activations can fit
        with recomputation."""
        spec = ParallelismSpec()
        budget = estimate_footprint(tiny_model, spec, 64,
                                    MIXED_FP16).total * 0.5
        stored = estimate_footprint(tiny_model, spec, 64, MIXED_FP16)
        recomputed = estimate_footprint(tiny_model, spec, 64,
                                        MIXED_FP16,
                                        recompute_activations=True)
        assert stored.total > budget
        assert recomputed.total < stored.total
