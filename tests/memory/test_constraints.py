"""Unit tests for memory-capacity constraints."""

import pytest

from repro.errors import ConfigurationError, MemoryCapacityError
from repro.hardware.catalog import A100, V100_SXM3
from repro.hardware.precision import MIXED_FP16
from repro.memory.constraints import (
    fits_in_memory,
    max_feasible_microbatch,
    require_fits,
)
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.zoo import MEGATRON_145B, MINGPT_85M


class TestFits:
    def test_small_model_fits(self, serial_spec):
        assert fits_in_memory(MINGPT_85M, serial_spec, 8, MIXED_FP16,
                              V100_SXM3)

    def test_145b_does_not_fit_one_gpu(self, serial_spec):
        assert not fits_in_memory(MEGATRON_145B, serial_spec, 1,
                                  MIXED_FP16, A100)

    def test_145b_fits_when_sharded_enough(self):
        spec = ParallelismSpec(tp_intra=8, pp_inter=16,
                               n_microbatches=16)
        assert fits_in_memory(MEGATRON_145B, spec, 1, MIXED_FP16, A100)

    def test_require_fits_raises_with_sizes(self, serial_spec):
        with pytest.raises(MemoryCapacityError) as excinfo:
            require_fits(MEGATRON_145B, serial_spec, 1, MIXED_FP16, A100)
        assert excinfo.value.required_bytes \
            > excinfo.value.available_bytes

    def test_require_fits_passes_silently(self, serial_spec):
        require_fits(MINGPT_85M, serial_spec, 8, MIXED_FP16, V100_SXM3)


class TestMaxMicrobatch:
    def test_monotone_definition(self, serial_spec):
        best = max_feasible_microbatch(MINGPT_85M, serial_spec,
                                       MIXED_FP16, V100_SXM3)
        assert best is not None
        assert fits_in_memory(MINGPT_85M, serial_spec, best, MIXED_FP16,
                              V100_SXM3)
        assert not fits_in_memory(MINGPT_85M, serial_spec, best + 1,
                                  MIXED_FP16, V100_SXM3)

    def test_none_when_weights_overflow(self, serial_spec):
        assert max_feasible_microbatch(MEGATRON_145B, serial_spec,
                                       MIXED_FP16, A100) is None

    def test_sharding_increases_budget(self):
        small = max_feasible_microbatch(
            MINGPT_85M, ParallelismSpec(), MIXED_FP16, V100_SXM3)
        larger = max_feasible_microbatch(
            MINGPT_85M, ParallelismSpec(tp_intra=4), MIXED_FP16,
            V100_SXM3)
        assert larger > small

    def test_rejects_bad_upper_bound(self, serial_spec):
        with pytest.raises(ConfigurationError):
            max_feasible_microbatch(MINGPT_85M, serial_spec, MIXED_FP16,
                                    V100_SXM3, upper_bound=0)
