"""Unit tests for pipeline schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.schedule import (
    BACKWARD,
    FORWARD,
    Task,
    build_schedule,
    gpipe_order,
    interleaved_order,
    one_f_one_b_order,
)


class TestTask:
    def test_virtual_stage(self):
        assert Task(FORWARD, stage=1, microbatch=0, chunk=2) \
            .virtual_stage(4) == 9

    def test_rejects_bad_phase(self):
        with pytest.raises(ConfigurationError):
            Task("X", 0, 0)

    def test_rejects_negative_indices(self):
        with pytest.raises(ConfigurationError):
            Task(FORWARD, -1, 0)


class TestGPipe:
    def test_all_forwards_then_backwards(self):
        order = gpipe_order(2, 3)[0]
        phases = [t.phase for t in order]
        assert phases == [FORWARD] * 3 + [BACKWARD] * 3

    def test_backwards_reversed(self):
        order = gpipe_order(2, 3)[0]
        backward_mbs = [t.microbatch for t in order if t.phase == BACKWARD]
        assert backward_mbs == [2, 1, 0]

    def test_task_count(self):
        orders = gpipe_order(4, 8)
        assert all(len(order) == 16 for order in orders)


class TestOneFOneB:
    def test_warmup_depth_depends_on_stage(self):
        orders = one_f_one_b_order(4, 8)
        for stage, order in enumerate(orders):
            warmup = 0
            for task in order:
                if task.phase != FORWARD:
                    break
                warmup += 1
            assert warmup == min(8, 4 - stage)

    def test_every_task_exactly_once(self):
        for order in one_f_one_b_order(4, 8):
            assert len(order) == len(set(order)) == 16

    def test_alternation_after_warmup(self):
        order = one_f_one_b_order(4, 8)[0]  # warmup 4
        tail = [t.phase for t in order[4:12]]
        assert tail == [BACKWARD, FORWARD] * 4


class TestInterleaved:
    def test_chunk_count(self):
        order = interleaved_order(2, 3, 2)[0]
        assert len(order) == 2 * 3 * 2
        assert {t.chunk for t in order} == {0, 1}

    def test_single_chunk_matches_gpipe(self):
        assert interleaved_order(2, 3, 1) == gpipe_order(2, 3)


class TestBuildSchedule:
    def test_dispatch(self):
        assert build_schedule("gpipe", 2, 4) == gpipe_order(2, 4)
        assert build_schedule("1f1b", 2, 4) == one_f_one_b_order(2, 4)
        assert build_schedule("interleaved", 2, 4, 2) \
            == interleaved_order(2, 4, 2)

    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            build_schedule("zigzag", 2, 4)

    def test_rejects_zero_stages(self):
        with pytest.raises(ConfigurationError):
            gpipe_order(0, 4)
