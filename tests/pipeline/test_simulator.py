"""Unit tests for the discrete-event pipeline simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.simulator import (
    PipelineWorkload,
    naive_bubble_fraction,
    simulate_pipeline,
)

UNIT = PipelineWorkload(forward_time=1.0, backward_time=1.0)


class TestWorkload:
    def test_rejects_zero_forward(self):
        with pytest.raises(ConfigurationError):
            PipelineWorkload(forward_time=0.0, backward_time=1.0)

    def test_rejects_negative_comm(self):
        with pytest.raises(ConfigurationError):
            PipelineWorkload(forward_time=1.0, backward_time=1.0,
                             comm_time=-0.1)


class TestSingleStage:
    def test_no_pipeline_no_bubble(self):
        result = simulate_pipeline(UNIT, n_stages=1, n_microbatches=8)
        assert result.makespan_s == pytest.approx(16.0)
        assert result.bubble_fraction == pytest.approx(0.0)


class TestGPipeMakespan:
    def test_closed_form_makespan(self):
        """Equal tasks, no comm: makespan = (M + S - 1) * (f + b)."""
        result = simulate_pipeline(UNIT, n_stages=4, n_microbatches=8,
                                   schedule="gpipe")
        assert result.makespan_s == pytest.approx((8 + 3) * 2.0)

    def test_bubble_matches_closed_form(self):
        for stages, mbs in ((2, 4), (4, 8), (4, 16), (8, 32)):
            result = simulate_pipeline(UNIT, n_stages=stages,
                                       n_microbatches=mbs)
            assert result.bubble_fraction \
                == pytest.approx(naive_bubble_fraction(stages, mbs))

    def test_busy_time_is_work(self):
        result = simulate_pipeline(UNIT, n_stages=4, n_microbatches=8)
        assert result.total_busy_s == pytest.approx(4 * 8 * 2.0)

    def test_unequal_forward_backward(self):
        workload = PipelineWorkload(forward_time=1.0, backward_time=2.0)
        result = simulate_pipeline(workload, n_stages=4,
                                   n_microbatches=16)
        assert result.makespan_s == pytest.approx((16 + 3) * 3.0)

    def test_comm_stretches_fill(self):
        with_comm = simulate_pipeline(
            PipelineWorkload(1.0, 1.0, comm_time=0.5),
            n_stages=4, n_microbatches=8)
        without = simulate_pipeline(UNIT, n_stages=4, n_microbatches=8)
        assert with_comm.makespan_s > without.makespan_s


class TestSchedules:
    def test_1f1b_same_makespan_as_gpipe(self):
        """1F1B reduces memory, not the bubble."""
        gpipe = simulate_pipeline(UNIT, 4, 16, schedule="gpipe")
        one_f = simulate_pipeline(UNIT, 4, 16, schedule="1f1b")
        assert one_f.makespan_s == pytest.approx(gpipe.makespan_s)

    def test_interleaving_shrinks_bubble(self):
        base = simulate_pipeline(UNIT, 4, 16, schedule="gpipe")
        half_tasks = PipelineWorkload(0.5, 0.5)
        chunked = simulate_pipeline(half_tasks, 4, 16,
                                    schedule="interleaved", n_chunks=2)
        assert chunked.bubble_fraction < base.bubble_fraction

    def test_interleaved_overlap_ratio_below_one(self):
        half_tasks = PipelineWorkload(0.5, 0.5)
        chunked = simulate_pipeline(half_tasks, 4, 16,
                                    schedule="interleaved", n_chunks=4)
        naive = naive_bubble_fraction(4, 16)
        assert chunked.overlap_ratio(naive) < 1.0

    def test_overlap_ratio_rejects_zero_reference(self):
        result = simulate_pipeline(UNIT, 4, 16)
        with pytest.raises(ConfigurationError):
            result.overlap_ratio(0.0)


class TestNaiveBound:
    def test_formula(self):
        assert naive_bubble_fraction(4, 16) == pytest.approx(3 / 19)

    def test_single_stage_zero(self):
        assert naive_bubble_fraction(1, 16) == 0.0

    def test_rejects_zero_microbatches(self):
        with pytest.raises(ConfigurationError):
            naive_bubble_fraction(4, 0)
