"""Unit tests for the ASCII charts."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.ascii_plot import bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_max(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        line_a, line_b = text.splitlines()
        assert line_b.count("#") == 10
        assert line_a.count("#") == 5

    def test_zero_value_has_no_bar(self):
        text = bar_chart(["a", "b"], [0.0, 2.0])
        assert "#" not in text.splitlines()[0]

    def test_values_printed(self):
        assert "2" in bar_chart(["a"], [2.0])

    def test_unit_suffix(self):
        assert "days" in bar_chart(["a"], [2.0], unit="days")

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="T").startswith("T\n=")

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart([1, 2, 4], {"s1": [1.0, 2.0, 3.0],
                                      "s2": [3.0, 2.0, 1.0]})
        assert "o = s1" in text
        assert "x = s2" in text

    def test_y_range_line(self):
        text = line_chart([1, 2], {"s": [1.0, 5.0]})
        assert "y: 1 .. 5" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            line_chart([1, 2], {"s": [1.0]})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            line_chart([], {})

    def test_flat_series_does_not_crash(self):
        text = line_chart([1, 2, 3], {"s": [2.0, 2.0, 2.0]})
        assert "y: 2 .. 2" in text
