"""Unit tests for CSV/JSON export."""

import csv

import pytest

from repro.errors import ConfigurationError
from repro.reporting.export import export_csv, export_json, load_json


class TestCSV:
    def test_round_trip(self, tmp_path):
        path = export_csv(tmp_path / "out.csv", ["a", "b"],
                          [(1, 2.5), (3, 4.5)])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_creates_parent_dirs(self, tmp_path):
        path = export_csv(tmp_path / "deep/dir/out.csv", ["a"], [(1,)])
        assert path.exists()

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_csv(tmp_path / "out.csv", ["a", "b"], [(1,)])

    def test_rejects_no_headers(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_csv(tmp_path / "out.csv", [], [])


class TestJSON:
    def test_round_trip(self, tmp_path):
        payload = {"series": [1, 2, 3], "name": "fig"}
        path = export_json(tmp_path / "out.json", payload)
        assert load_json(path) == payload

    def test_creates_parent_dirs(self, tmp_path):
        path = export_json(tmp_path / "a/b/out.json", [1])
        assert path.exists()
