"""Unit tests for markdown rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.markdown import MarkdownReport, render_markdown_table


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["a", "b"], [(1, 2.5)])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.5 |"

    def test_pipes_escaped(self):
        text = render_markdown_table(["x"], [("a|b",)])
        assert "a\\|b" in text

    def test_float_format(self):
        text = render_markdown_table(["v"], [(3.14159,)],
                                     float_format="{:.2f}")
        assert "3.14" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            render_markdown_table(["a", "b"], [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_markdown_table([], [])


class TestMarkdownReport:
    def test_full_document(self):
        report = (MarkdownReport("My Repro")
                  .add_section("Results", "Everything reproduced.")
                  .add_table(["k", "v"], [("x", 1)],
                             caption="one table"))
        text = report.render()
        assert text.startswith("# My Repro")
        assert "## Results" in text
        assert "| k | v |" in text
        assert "*one table*" in text
        assert text.endswith("\n")

    def test_rejects_empty_title(self):
        with pytest.raises(ConfigurationError):
            MarkdownReport("")

    def test_sections_chain(self):
        report = MarkdownReport("t").add_section("a").add_section("b")
        assert report.render().count("##") == 2
