"""bench_history: trajectory loading, sparklines, rendering, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.reporting.bench_history import (
    OBS_COLUMNS,
    PHASE_COLUMNS,
    SERVE_COLUMNS,
    SPARK_LEVELS,
    load_trajectory,
    main,
    render_history,
    sparkline,
)


def _entry(commit, **rates):
    record = {"commit": commit, "timestamp": "2026-08-09T00:00:00Z"}
    record.update(rates)
    return record


MIXED_ERA = [
    # Pre-vectorized era: only reference/fast/compiled rates exist.
    _entry("aaaa111", reference_mappings_per_s=9000.0,
           fast_mappings_per_s=120000.0,
           compiled_mappings_per_s=300000.0),
    # Vectorized backend lands.
    _entry("bbbb222", reference_mappings_per_s=9100.0,
           fast_mappings_per_s=125000.0,
           compiled_mappings_per_s=320000.0,
           vectorized_mappings_per_s=3200000.0,
           crossproduct_mappings_per_s=140000.0),
    _entry("cccc333", reference_mappings_per_s=9050.0,
           fast_mappings_per_s=123000.0,
           compiled_mappings_per_s=330000.0,
           vectorized_mappings_per_s=3400000.0,
           crossproduct_mappings_per_s=147000.0),
]


SUITE_ERA = MIXED_ERA + [
    # The obs/serve suites land: their fields appear on new rows only.
    _entry("dddd444", reference_mappings_per_s=9200.0,
           fast_mappings_per_s=126000.0,
           compiled_mappings_per_s=335000.0,
           vectorized_mappings_per_s=3500000.0,
           crossproduct_mappings_per_s=150000.0,
           obs_enabled_overhead=1.288,
           serve_warm_p50_s=0.00087,
           serve_warm_requests_per_s=1046.0,
           serve_burst_requests_per_s=1598.0),
]


class TestSparkline:
    def test_scales_to_finite_range(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] == SPARK_LEVELS[0]
        assert line[-1] == SPARK_LEVELS[-1]

    def test_none_renders_as_gap(self):
        line = sparkline([None, 5.0, None])
        assert line[0] == line[2] == " "
        assert line[1] in SPARK_LEVELS

    def test_all_none_is_all_gaps(self):
        assert sparkline([None, None]) == "  "

    def test_constant_series_does_not_divide_by_zero(self):
        line = sparkline([7.0, 7.0, 7.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_empty_series(self):
        assert sparkline([]) == ""


class TestLoadTrajectory:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no benchmark "):
            load_trajectory(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_trajectory(target)

    def test_non_list_payload(self, tmp_path):
        target = tmp_path / "object.json"
        target.write_text(json.dumps({"commit": "abc"}))
        with pytest.raises(ConfigurationError, match="list of entry"):
            load_trajectory(target)

    def test_round_trip(self, tmp_path):
        target = tmp_path / "history.json"
        target.write_text(json.dumps(MIXED_ERA))
        assert load_trajectory(target) == MIXED_ERA


class TestRenderHistory:
    def test_mixed_eras_render_without_special_casing(self):
        text = render_history(MIXED_ERA)
        assert "aaaa111" in text and "cccc333" in text
        for header, _ in PHASE_COLUMNS:
            assert header in text
        # The pre-vectorized row prints a dash for the absent phases.
        first_row = next(line for line in text.splitlines()
                         if "aaaa111" in line)
        assert "-" in first_row

    def test_sparkline_gap_for_missing_era(self):
        text = render_history(MIXED_ERA)
        vectorized_line = next(
            line for line in text.splitlines()
            if line.startswith("vectorized/s"))
        marks = vectorized_line[len("vectorized/s"):].lstrip(" ")
        # Exactly the pre-vectorized run is a gap; trailing marks are
        # real samples.  lstrip above ate the alignment padding *and*
        # the gap, so compare against the sample count instead.
        assert len(marks) == 2

    def test_last_filter(self):
        text = render_history(MIXED_ERA, last=1)
        assert "cccc333" in text
        assert "aaaa111" not in text
        assert "(1 runs)" in text

    def test_last_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="at least 1"):
            render_history(MIXED_ERA, last=0)

    def test_empty_trajectory(self):
        with pytest.raises(ConfigurationError, match="empty"):
            render_history([])


class TestSuiteTables:
    def test_obs_and_serve_tables_render_when_present(self):
        text = render_history(SUITE_ERA)
        assert "observability overhead trajectory" in text
        assert "serve latency trajectory" in text
        for header, _ in OBS_COLUMNS + SERVE_COLUMNS:
            assert header in text
        assert "0.00087" in text     # warm p50 keeps its precision
        assert "1,598" in text       # burst rate formats as a rate

    def test_suites_omitted_when_absent_from_every_row(self):
        text = render_history(MIXED_ERA)
        assert "observability overhead" not in text
        assert "serve latency" not in text
        assert "DSE throughput trajectory" in text

    def test_pre_suite_rows_print_dash_and_sparkline_gap(self):
        text = render_history(SUITE_ERA)
        obs_section = text.split("observability overhead trajectory")[1]
        first_row = next(line for line in obs_section.splitlines()
                         if "aaaa111" in line)
        assert first_row.rstrip().endswith("-")
        overhead_line = next(line for line in obs_section.splitlines()
                             if line.startswith("overhead x"))
        # Three pre-suite gaps, one real sample.
        assert len(overhead_line[len("overhead x"):].lstrip(" ")) == 1

    def test_last_filter_applies_to_every_suite(self):
        text = render_history(SUITE_ERA, last=1)
        assert text.count("(1 runs)") == 3
        assert "aaaa111" not in text


class TestMain:
    def test_renders_and_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "history.json"
        target.write_text(json.dumps(MIXED_ERA))
        assert main(["--path", str(target)]) == 0
        out = capsys.readouterr().out
        assert "DSE throughput trajectory" in out
        assert "vectorized/s" in out

    def test_last_flag(self, tmp_path, capsys):
        target = tmp_path / "history.json"
        target.write_text(json.dumps(MIXED_ERA))
        assert main(["--path", str(target), "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert "bbbb222" in out and "aaaa111" not in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["--path", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_renders_committed_trajectory(self, capsys):
        """The repo's own ledger renders (it always has ≥1 entry)."""
        assert main(["--path", "BENCH_trajectory.json"]) == 0
        assert "trajectory" in capsys.readouterr().out
