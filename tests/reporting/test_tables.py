"""Unit tests for the text table renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.reporting.tables import render_table


class TestRenderTable:
    def test_basic_structure(self):
        text = render_table(["name", "value"],
                            [("alpha", 1.5), ("b", 22.0)])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "alpha" in lines[2]

    def test_title(self):
        text = render_table(["x"], [("y",)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_float_formatting(self):
        text = render_table(["v"], [(3.14159,)],
                            float_format="{:.2f}")
        assert "3.14" in text

    def test_numbers_right_aligned(self):
        text = render_table(["name", "v"], [("a", 1.0), ("bb", 100.0)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  1") or rows[0].rstrip().endswith("1")

    def test_column_count_enforced(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [("only-one",)])

    def test_needs_headers(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_handles_mixed_types(self):
        text = render_table(["a", "b", "c"], [(True, 7, "text")])
        assert "True" in text and "7" in text and "text" in text
