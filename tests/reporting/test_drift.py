"""Drift reporting: modeled-vs-measured per-term honesty checks."""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.obs.ingest import EstimateObservation
from repro.obs.metrics import get_metrics, reset_metrics
from repro.reporting.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    compute_drift,
)


@pytest.fixture(autouse=True)
def clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


def observe(amped, global_batch, scale=1.0, **overrides):
    """One observation of ``amped`` itself, optionally distorted."""
    terms = {name: value * scale for name, value
             in amped.estimate_batch(global_batch).as_dict().items()}
    terms.update(overrides)
    return EstimateObservation(terms=terms, model=amped.model.name,
                               global_batch=global_batch,
                               mapping=amped.parallelism,
                               total_s=sum(terms.values()),
                               source="test#0")


class TestSelfDrift:
    def test_model_against_itself_is_healthy(self, tiny_amped):
        report = compute_drift(tiny_amped,
                               [observe(tiny_amped, 64),
                                observe(tiny_amped, 128)])
        assert report.healthy
        assert report.flagged == []
        assert report.max_rel_error < 1e-12
        assert report.n_observations == 2

    def test_metrics_reflect_the_report(self, tiny_amped):
        compute_drift(tiny_amped, [observe(tiny_amped, 64)])
        snapshot = get_metrics().snapshot()
        assert snapshot["gauges"]["drift.max_rel_error"] < 1e-12
        assert snapshot["gauges"]["drift.flagged_terms"] == 0
        assert snapshot["counters"]["drift.observations"] == 1


class TestFlagging:
    def test_uniform_miscalibration_flags_terms(self, tiny_amped):
        """Measurements 20% above the model exceed the 5% default."""
        report = compute_drift(tiny_amped,
                               [observe(tiny_amped, 64, scale=1.2)])
        assert not report.healthy
        assert report.flagged
        for item in report.flagged:
            # modeled ≈ measured / 1.2 → rel error ≈ −1/6.
            assert item.max_abs_rel_error == pytest.approx(1 / 6,
                                                           rel=1e-9)

    def test_threshold_is_respected(self, tiny_amped):
        observations = [observe(tiny_amped, 64, scale=1.03)]
        assert compute_drift(tiny_amped, observations,
                             threshold=0.05).healthy
        assert not compute_drift(tiny_amped, observations,
                                 threshold=0.01).healthy

    def test_terms_absent_from_observation_are_skipped(self,
                                                       tiny_amped):
        partial = EstimateObservation(
            terms={"compute_forward":
                   tiny_amped.estimate_batch(64).compute_forward},
            global_batch=64, mapping=tiny_amped.parallelism)
        report = compute_drift(tiny_amped, [partial])
        assert [item.term for item in report.terms] \
            == ["compute_forward"]
        assert report.healthy

    def test_measured_zero_modeled_nonzero_is_infinite(self,
                                                       tiny_amped):
        broken = observe(tiny_amped, 64, compute_forward=0.0)
        report = compute_drift(tiny_amped, [broken])
        flagged = {item.term: item for item in report.flagged}
        assert math.isinf(flagged["compute_forward"].max_abs_rel_error)


class TestSerialization:
    def test_as_dict_is_strict_json(self, tiny_amped):
        broken = observe(tiny_amped, 64, compute_forward=0.0)
        payload = compute_drift(tiny_amped, [broken]).as_dict()
        text = json.dumps(payload, allow_nan=False)
        decoded = json.loads(text)
        assert decoded["max_rel_error"] is None
        assert decoded["healthy"] is False
        by_term = {item["term"]: item for item in decoded["terms"]}
        assert by_term["compute_forward"]["max_abs_rel_error"] is None

    def test_format_table_orders_worst_first(self, tiny_amped):
        report = compute_drift(
            tiny_amped,
            [observe(tiny_amped, 64,
                     comm_tp_intra=tiny_amped.estimate_batch(64)
                     .comm_tp_intra * 2.0)])
        table = report.format_table()
        assert "DRIFT" in table and "ok" in table
        assert "1 term(s) above threshold" in table
        lines = [line for line in table.splitlines()
                 if line and not line.startswith(("-", "="))]
        # First data row is the distorted term.
        assert "comm_tp_intra" in lines[2]

    def test_healthy_verdict_in_title(self, tiny_amped):
        table = compute_drift(tiny_amped,
                              [observe(tiny_amped, 64)]).format_table()
        assert "healthy" in table
        assert f"threshold {DEFAULT_DRIFT_THRESHOLD:.1%}" in table


class TestValidation:
    def test_threshold_must_be_positive(self, tiny_amped):
        with pytest.raises(ConfigurationError, match="positive"):
            compute_drift(tiny_amped, [observe(tiny_amped, 64)],
                          threshold=0.0)

    def test_observations_required(self, tiny_amped):
        with pytest.raises(ConfigurationError, match="no observations"):
            compute_drift(tiny_amped, [])

    def test_observation_needs_global_batch(self, tiny_amped):
        nameless = EstimateObservation(terms={"compute_forward": 1.0},
                                       global_batch=0)
        with pytest.raises(ConfigurationError, match="global_batch"):
            compute_drift(tiny_amped, [nameless])

    def test_mapping_falls_back_to_the_model(self, tiny_amped):
        bare = replace(observe(tiny_amped, 64), mapping=None)
        assert compute_drift(tiny_amped, [bare]).healthy
