"""Unit tests for collective topology factors."""

import pytest

from repro.errors import ConfigurationError
from repro.parallelism.topology import (
    FULLY_CONNECTED,
    PAIRWISE_ALLTOALL,
    RING,
    TOPOLOGIES,
    TREE,
)


class TestRing:
    def test_paper_example(self):
        """Eq. 6's worked example: 2 (N - 1) / N."""
        assert RING.factor(8) == 2 * 7 / 8

    def test_single_rank_free(self):
        assert RING.factor(1) == 0.0
        assert RING.steps(1) == 0

    def test_steps(self):
        assert RING.steps(8) == 14

    def test_factor_approaches_two(self):
        assert RING.factor(1024) == pytest.approx(2.0, abs=0.01)

    def test_latency_term_is_c_times_steps(self):
        assert RING.latency_term(1e-6, 8) == pytest.approx(14e-6)


class TestTree:
    def test_full_payload_steps(self):
        assert TREE.factor(8) == 6.0  # 2*log2(8) full-size rounds
        assert TREE.steps(8) == 6

    def test_non_power_of_two_rounds_up(self):
        assert TREE.steps(5) == 2 * 3

    def test_single_rank_free(self):
        assert TREE.factor(1) == 0.0

    def test_tree_beats_ring_on_latency(self):
        assert TREE.steps(1024) < RING.steps(1024)

    def test_ring_beats_tree_on_volume(self):
        assert RING.factor(1024) < TREE.factor(1024)


class TestAllToAll:
    def test_paper_moe_factor(self):
        """Eq. 9's default: (N - 1) / N."""
        assert PAIRWISE_ALLTOALL.factor(128) == 127 / 128

    def test_steps(self):
        assert PAIRWISE_ALLTOALL.steps(8) == 7

    def test_single_rank_free(self):
        assert PAIRWISE_ALLTOALL.factor(1) == 0.0


class TestFullyConnected:
    def test_one_step(self):
        assert FULLY_CONNECTED.steps(8) == 1

    def test_factor(self):
        assert FULLY_CONNECTED.factor(8) == 7 / 8

    def test_half_the_ring_volume(self):
        assert FULLY_CONNECTED.factor(16) \
            == pytest.approx(RING.factor(16) / 2)


class TestShared:
    @pytest.mark.parametrize("topology", list(TOPOLOGIES.values()),
                             ids=list(TOPOLOGIES))
    def test_rejects_zero_participants(self, topology):
        with pytest.raises(ConfigurationError):
            topology.factor(0)

    @pytest.mark.parametrize("topology", list(TOPOLOGIES.values()),
                             ids=list(TOPOLOGIES))
    def test_volume_term_scales_with_payload(self, topology):
        small = topology.volume_term(1e6, 16, 1e9, 8)
        large = topology.volume_term(2e6, 16, 1e9, 8)
        assert large == pytest.approx(2 * small)

    def test_registry_names_match(self):
        for name, topology in TOPOLOGIES.items():
            assert topology.name == name
