"""Unit tests for ParallelismSpec and placement."""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.parallelism.spec import ParallelismSpec, spec_from_totals


class TestDegrees:
    def test_defaults_are_serial(self, serial_spec):
        assert serial_spec.world_size == 1
        assert serial_spec.describe() == "serial"

    def test_aggregate_products(self):
        spec = ParallelismSpec(tp_intra=2, tp_inter=2, pp_intra=2,
                               pp_inter=4, dp_intra=2, dp_inter=8)
        assert (spec.tp, spec.pp, spec.dp) == (4, 8, 16)
        assert spec.world_size == 4 * 8 * 16
        assert spec.intra_degree == 8
        assert spec.inter_degree == 64

    def test_microbatches_default_to_pp(self):
        spec = ParallelismSpec(pp_inter=8)
        assert spec.microbatches == 8

    def test_microbatches_explicit(self):
        spec = ParallelismSpec(pp_inter=8, n_microbatches=32)
        assert spec.microbatches == 32

    def test_uses_inter_flags(self):
        assert ParallelismSpec(tp_inter=2).uses_inter_tp
        assert not ParallelismSpec(tp_intra=4).uses_inter_tp
        assert ParallelismSpec(pp_inter=2).uses_inter_pp

    def test_rejects_zero_degree(self):
        with pytest.raises(ConfigurationError):
            ParallelismSpec(tp_intra=0)

    def test_rejects_negative_overlap(self):
        with pytest.raises(ConfigurationError):
            ParallelismSpec(bubble_overlap_ratio=-0.1)

    def test_with_microbatches(self):
        spec = ParallelismSpec(pp_inter=4).with_microbatches(64)
        assert spec.microbatches == 64

    def test_with_overlap(self):
        assert ParallelismSpec().with_overlap(0.5) \
            .bubble_overlap_ratio == 0.5

    def test_describe_omits_unit_degrees(self):
        assert ParallelismSpec(tp_intra=8).describe() == "TP=8x1"


class TestValidation:
    def test_accepts_exact_tiling(self, small_system):
        spec = ParallelismSpec(tp_intra=4, dp_inter=4)
        spec.validate_against(small_system)  # no raise

    def test_rejects_intra_mismatch(self, small_system):
        with pytest.raises(MappingError):
            ParallelismSpec(tp_intra=2, dp_inter=4) \
                .validate_against(small_system)

    def test_rejects_inter_mismatch(self, small_system):
        with pytest.raises(MappingError):
            ParallelismSpec(tp_intra=4, dp_inter=2) \
                .validate_against(small_system)

    def test_rejects_pp_deeper_than_layers(self):
        with pytest.raises(MappingError):
            ParallelismSpec(pp_inter=8).validate_against_model(
                n_layers=4, n_heads=8)

    def test_rejects_tp_not_dividing_heads(self):
        with pytest.raises(MappingError):
            ParallelismSpec(tp_intra=3).validate_against_model(
                n_layers=16, n_heads=8)


class TestPlacement:
    def test_tp_fills_node_first(self, small_system):
        spec = spec_from_totals(small_system, tp=4, dp=4)
        assert (spec.tp_intra, spec.tp_inter) == (4, 1)
        assert (spec.dp_intra, spec.dp_inter) == (1, 4)

    def test_tp_spills_across_nodes(self, small_system):
        spec = spec_from_totals(small_system, tp=8, dp=2)
        assert (spec.tp_intra, spec.tp_inter) == (4, 2)
        assert spec.dp_inter == 2

    def test_pp_after_tp(self, small_system):
        spec = spec_from_totals(small_system, tp=2, pp=4, dp=2)
        assert (spec.pp_intra, spec.pp_inter) == (2, 2)
        assert (spec.dp_intra, spec.dp_inter) == (1, 2)

    def test_rejects_wrong_world_size(self, small_system):
        with pytest.raises(MappingError):
            spec_from_totals(small_system, tp=4, dp=2)

    def test_rejects_fragmenting_split(self, small_system):
        # TP=3 cannot divide a 4-accelerator node
        with pytest.raises(MappingError):
            spec_from_totals(small_system, tp=3, dp=16)

    def test_kwargs_forwarded(self, small_system):
        spec = spec_from_totals(small_system, dp=16, n_microbatches=7)
        assert spec.microbatches == 7
