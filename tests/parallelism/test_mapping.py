"""Unit tests for mapping enumeration and named mappings."""

import pytest

from repro.errors import MappingError
from repro.parallelism.mapping import (
    enumerate_mappings,
    factor_triples,
    mapping_for,
)


class TestFactorTriples:
    def test_count_for_8(self):
        triples = list(factor_triples(8))
        assert len(triples) == 10  # ordered triples multiplying to 8
        assert all(x * y * z == 8 for x, y, z in triples)

    def test_one(self):
        assert list(factor_triples(1)) == [(1, 1, 1)]

    def test_unique(self):
        triples = list(factor_triples(16))
        assert len(triples) == len(set(triples))


class TestEnumeration:
    def test_every_mapping_tiles_system(self, small_system):
        for spec in enumerate_mappings(small_system):
            spec.validate_against(small_system)  # no raise

    def test_model_filter_drops_deep_pipelines(self, small_system,
                                               tiny_model):
        unfiltered = enumerate_mappings(small_system)
        filtered = enumerate_mappings(small_system, tiny_model)
        assert len(filtered) < len(unfiltered)
        assert all(spec.pp <= tiny_model.n_layers for spec in filtered)

    def test_model_filter_drops_wide_tp(self, small_system, tiny_model):
        # tiny model has 4 heads; TP degree 8+ impossible, 16 certainly
        for spec in enumerate_mappings(small_system, tiny_model):
            assert spec.tp <= 4

    def test_kwargs_forwarded(self, small_system):
        mappings = enumerate_mappings(small_system, n_microbatches=5)
        assert all(spec.microbatches == 5 for spec in mappings)


class TestMappingFor:
    def test_pure_inter(self, small_system):
        spec = mapping_for(small_system, intra="tp", inter="dp")
        assert spec.describe() == "TP=4x1, DP=1x4"

    def test_mixed_inter(self, small_system):
        spec = mapping_for(small_system, intra="tp", inter="pp+dp",
                           inter_split=(2, 2))
        assert (spec.pp_inter, spec.dp_inter) == (2, 2)

    def test_mixed_requires_split(self, small_system):
        with pytest.raises(MappingError):
            mapping_for(small_system, intra="tp", inter="pp+dp")

    def test_split_must_multiply_to_nodes(self, small_system):
        with pytest.raises(MappingError):
            mapping_for(small_system, intra="tp", inter="pp+dp",
                        inter_split=(2, 3))

    def test_unknown_type_rejected(self, small_system):
        with pytest.raises(MappingError):
            mapping_for(small_system, intra="xx", inter="dp")

    def test_result_tiles_system(self, small_system):
        spec = mapping_for(small_system, intra="dp", inter="tp+pp",
                           inter_split=(4, 1))
        spec.validate_against(small_system)
