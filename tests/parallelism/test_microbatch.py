"""Unit tests for microbatch sizing and the efficiency fit."""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.parallelism.microbatch import (
    CASE_STUDY_EFFICIENCY,
    PERFECT_EFFICIENCY,
    MicrobatchEfficiency,
    microbatch_size,
    replica_batch_size,
)
from repro.parallelism.spec import ParallelismSpec


class TestEfficiencyFit:
    def test_saturating_form(self):
        eff = MicrobatchEfficiency(a=1.0, b=4.0)
        assert eff(4) == pytest.approx(0.5)
        assert eff(12) == pytest.approx(0.75)

    def test_ceiling_clamps(self):
        eff = MicrobatchEfficiency(a=1.5, b=1.0)
        assert eff(1e9) == 1.0

    def test_floor_clamps(self):
        eff = MicrobatchEfficiency(a=1.0, b=100.0, floor=0.25)
        assert eff(1) == 0.25

    def test_monotone_nondecreasing(self):
        eff = CASE_STUDY_EFFICIENCY
        values = [eff(ub) for ub in (1, 2, 4, 8, 16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_case_study_operating_points(self):
        """The paper's quoted points: ~30% at ub 16, ~80% at ub 128."""
        assert CASE_STUDY_EFFICIENCY(16) == pytest.approx(0.30, abs=0.02)
        assert CASE_STUDY_EFFICIENCY(128) == pytest.approx(0.80, abs=0.02)

    def test_case_study_floor_is_25_percent(self):
        assert CASE_STUDY_EFFICIENCY(0.5) == 0.25

    def test_perfect_is_always_one(self):
        assert PERFECT_EFFICIENCY(0.001) == 1.0
        assert PERFECT_EFFICIENCY(1e9) == 1.0

    def test_rejects_non_positive_ub(self):
        with pytest.raises(ConfigurationError):
            CASE_STUDY_EFFICIENCY(0)

    def test_rejects_floor_above_ceiling(self):
        with pytest.raises(ConfigurationError):
            MicrobatchEfficiency(floor=0.9, ceiling=0.5)

    def test_from_points_recovers_values(self):
        eff = MicrobatchEfficiency.from_points((16, 0.30), (128, 0.80))
        assert eff(16) == pytest.approx(0.30, rel=1e-6)
        assert eff(128) == pytest.approx(0.80, rel=1e-6)

    def test_from_points_rejects_decreasing(self):
        with pytest.raises(ConfigurationError):
            MicrobatchEfficiency.from_points((16, 0.8), (128, 0.3))

    def test_from_points_rejects_equal_ub(self):
        with pytest.raises(ConfigurationError):
            MicrobatchEfficiency.from_points((16, 0.3), (16, 0.8))


class TestMicrobatchSize:
    def test_paper_rule(self):
        """ub = batch / (N_DP * N_ub) (§V-B / §VI-B)."""
        spec = ParallelismSpec(dp_inter=8, pp_inter=4)  # N_ub = pp = 4
        assert microbatch_size(1024, spec) == 32.0

    def test_explicit_microbatches(self):
        spec = ParallelismSpec(dp_inter=8, n_microbatches=16)
        assert microbatch_size(1024, spec) == 8.0

    def test_serial_is_full_batch(self, serial_spec):
        assert microbatch_size(64, serial_spec) == 64.0

    def test_rejects_subunit_microbatch(self):
        spec = ParallelismSpec(dp_inter=64, pp_inter=4)
        with pytest.raises(MappingError):
            microbatch_size(64, spec)

    def test_rejects_zero_batch(self, serial_spec):
        with pytest.raises(ConfigurationError):
            microbatch_size(0, serial_spec)

    def test_replica_batch(self):
        spec = ParallelismSpec(dp_intra=4, dp_inter=8)
        assert replica_batch_size(1024, spec) == 32.0


class TestNonFiniteInputs:
    @pytest.mark.parametrize("field", ["a", "b", "floor", "ceiling"])
    def test_rejects_nan_fit_parameters(self, field):
        with pytest.raises(ConfigurationError, match="finite"):
            MicrobatchEfficiency(**{field: float("nan")})

    @pytest.mark.parametrize("value", [float("nan"), float("inf")])
    def test_rejects_non_finite_microbatch_size(self, value):
        with pytest.raises(ConfigurationError):
            CASE_STUDY_EFFICIENCY(value)
