"""Tests reproducing Case Study II (Fig. 10)."""

import pytest

from repro.experiments.casestudy2 import (
    energy_comparison,
    reproduce_fig10,
)


@pytest.fixture(scope="module")
def fig10():
    return reproduce_fig10()


class TestFig10:
    def test_covers_paper_node_sizes(self, fig10):
        assert set(fig10) == {1, 2, 4, 8}

    def test_pp_wins_at_one_nic(self, fig10):
        """The paper's headline: with 1 accelerator + 1 NIC per node,
        PP beats DP."""
        assert fig10[1].winner == "PP"

    def test_dp_wins_at_eight_nics(self, fig10):
        assert fig10[8].winner == "DP"

    def test_crossover_exists(self, fig10):
        """Somewhere between 1 and 8 NICs the winner flips."""
        winners = [fig10[k].winner for k in (1, 2, 4, 8)]
        assert "PP" in winners and "DP" in winners
        # and the flip is monotone: once DP wins it keeps winning
        first_dp = winners.index("DP")
        assert all(w == "DP" for w in winners[first_dp:])

    def test_dp_improves_with_more_nics(self, fig10):
        dp_days = [fig10[k].dp_days for k in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(dp_days, dp_days[1:]))

    def test_pp_insensitive_to_nic_count(self, fig10):
        """PP's point-to-point traffic does not aggregate NICs, so its
        time moves far less than DP's across node shapes."""
        pp_days = [fig10[k].pp_days for k in (1, 2, 4, 8)]
        dp_days = [fig10[k].dp_days for k in (1, 2, 4, 8)]
        pp_swing = max(pp_days) / min(pp_days)
        dp_swing = max(dp_days) / min(dp_days)
        assert pp_swing < dp_swing

    def test_bubble_share_near_paper_value_at_one_nic(self, fig10):
        """The paper quotes ~11% pipeline bubbles for its PP config."""
        assert 0.02 < fig10[1].pp_bubble_share < 0.30

    def test_breakeven_reported_when_pp_slower(self, fig10):
        for point in fig10.values():
            if point.pp_days > point.dp_days:
                assert point.energy_breakeven_idle_fraction is not None


class TestEnergy:
    def test_energy_comparison_fields(self):
        result = energy_comparison(node_size=4)
        assert set(result) == {"dp_days", "pp_days", "dp_kwh", "pp_kwh",
                               "idle_fraction"}
        assert result["dp_kwh"] > 0 and result["pp_kwh"] > 0

    def test_low_idle_power_narrows_energy_gap(self):
        """Lower idle power makes the bubbly PP config relatively more
        energy-efficient (the paper's Case Study II argument)."""
        hot = energy_comparison(node_size=4, idle_fraction=0.9)
        cold = energy_comparison(node_size=4, idle_fraction=0.1)
        hot_ratio = hot["pp_kwh"] / hot["dp_kwh"]
        cold_ratio = cold["pp_kwh"] / cold["dp_kwh"]
        assert cold_ratio < hot_ratio
