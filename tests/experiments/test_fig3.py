"""Tests reproducing Fig. 3's breakdown narrative."""

import pytest

from repro.experiments.fig3_breakdown import reproduce_fig3


@pytest.fixture(scope="module")
def cases():
    return reproduce_fig3()


class TestFig3:
    def test_mappings_match_paper(self, cases):
        pp_case, tp_case = cases
        assert pp_case.parallelism.dp_intra == 8
        assert pp_case.parallelism.dp_inter == 64
        assert pp_case.parallelism.pp_inter == 2
        assert tp_case.parallelism.tp_inter == 2

    def test_both_tile_1024_accelerators(self, cases):
        for case in cases:
            assert case.parallelism.world_size == 1024

    def test_bubble_negligible_vs_tp_comm(self, cases):
        """The paper's observation: "the pipeline bubble time in the
        first configuration is negligible compared to the communication
        overheads in the second configuration"."""
        pp_case, tp_case = cases
        assert pp_case.breakdown.bubble < 0.2 * tp_case.breakdown.comm_tp

    def test_tp_case_has_no_bubble(self, cases):
        __, tp_case = cases
        assert tp_case.breakdown.bubble == 0.0

    def test_pp_case_has_no_tp_comm(self, cases):
        pp_case, _ = cases
        assert pp_case.breakdown.comm_tp == 0.0

    def test_compute_dominates_both(self, cases):
        for case in cases:
            assert case.breakdown.compute_time \
                > 0.5 * case.breakdown.total
