"""Tests reproducing Case Study I's conclusions (Figs. 4-9).

The full sweeps are large; the tests run reduced batch lists where the
conclusion does not need all three curves.
"""

import pytest

from repro.experiments.casestudy1 import (
    conclusions,
    figure4,
    figure6,
    figure9,
    sweep,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4(batches=(16384,))


@pytest.fixture(scope="module")
def fig6():
    return figure6(batches=(4096, 16384))


@pytest.fixture(scope="module")
def fig9():
    return figure9(batches=(16384,))


@pytest.fixture(scope="module")
def summary():
    return conclusions()


class TestSweepMechanics:
    def test_splits_cover_node_count(self, fig4):
        products = {p.first_degree * p.second_degree for p in fig4.points}
        assert products == {128}

    def test_infeasible_points_are_none(self, fig4):
        # TP_inter = 128 needs TP total 1024 > 96 heads... the sweep
        # keeps the point but deep-PP points beyond 80 layers are None.
        deep_pp = [p for p in fig4.points if p.second_degree > 80]
        assert all(p.days[16384] is None for p in deep_pp)

    def test_best_returns_feasible_minimum(self, fig6):
        label, days = fig6.best(16384)
        values = [p.days[16384] for p in fig6.points
                  if p.days[16384] is not None]
        assert days == min(values)

    def test_curve_alignment(self, fig6):
        assert len(fig6.curve(16384)) == len(fig6.points)


class TestPaperConclusions:
    def test_tp_inter_penalty(self, summary):
        """Conclusion 2/3: TP across nodes is much slower (paper ~3x)."""
        assert summary["tp_inter_penalty"] > 2.0

    def test_pp_slightly_worse_than_dp(self, summary):
        """Conclusion 4: PP inter-node is worse than DP inter-node, but
        the same order of magnitude (paper: 21 vs 18 days)."""
        assert 1.0 < summary["pp_vs_dp_inter"] < 3.0

    def test_tp_intra_advantage(self, summary):
        """Conclusion 5: TP intra beats DP intra (paper ~2x)."""
        assert 1.5 < summary["tp_intra_advantage"] < 4.0

    def test_large_batches_help(self, summary):
        """Conclusion 1: larger batches raise efficiency, so the small
        batch trains the same tokens more slowly."""
        assert summary["batch_size_gain"] > 1.0


class TestScaleOfResults:
    def test_best_tp_intra_config_lands_in_paper_range(self, fig6):
        """The paper's best configs train 145B in ~18-21 days; with our
        assumptions the best TP-intra mapping should land within 2x."""
        __, days = fig6.best(16384)
        assert 9 < days < 42

    def test_growing_tp_inter_monotonically_hurts(self, fig4):
        curve = [p.days[16384] for p in fig4.points
                 if p.days[16384] is not None and p.second_degree <= 80]
        # points are ordered by growing TP_inter degree
        assert all(a <= b * 1.001 for a, b in zip(curve, curve[1:]))

    def test_dp_intra_worse_than_tp_intra(self, fig6, fig9):
        __, tp_days = fig6.best(16384)
        __, dp_days = fig9.best(16384)
        assert dp_days > tp_days


class TestCustomSweep:
    def test_sweep_factory(self):
        series = sweep("custom", "tp", ("pp", "dp"), batches=(8192,))
        assert series.figure == "custom"
        assert series.inter_pair == ("pp", "dp")
