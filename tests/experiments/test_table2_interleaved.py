"""Tests for the interleaved-overlap Table II refinement."""

import pytest

from repro.experiments.table2 import reproduce_table2
from repro.experiments.table2_interleaved import (
    estimated_overlap_ratio,
    reproduce_table2_interleaved,
)


@pytest.fixture(scope="module")
def interleaved():
    return reproduce_table2_interleaved()


class TestOverlapRatio:
    def test_two_chunks_near_half(self):
        ratio = estimated_overlap_ratio(2)
        assert 0.4 < ratio < 0.7


class TestRefinedTable2:
    def test_overall_error_improves(self, interleaved):
        __, naive_report = reproduce_table2()
        __, report = interleaved
        assert report.max_error_percent < naive_report.max_error_percent

    def test_deep_pp_rows_improve_most(self, interleaved):
        """The paper's diagnosis: the R = 1 error concentrates at deep
        PP, so modeling the overlap should help exactly there."""
        rows, _ = interleaved
        deep = [row for row in rows if row.point.pp >= 32]
        shallow = [row for row in rows if row.point.pp <= 8]
        assert min(row.improvement_percent for row in deep) \
            > max(row.improvement_percent for row in shallow)

    def test_deep_rows_land_well_inside_budget(self, interleaved):
        rows, report = interleaved
        assert report.max_error_percent < 9.0
        for row in rows:
            if row.point.pp >= 32:
                assert row.interleaved.error_percent \
                    < row.naive.error_percent

    def test_predictions_still_under_published_peaks(self, interleaved):
        rows, _ = interleaved
        for row in rows:
            assert 0 < row.interleaved.predicted_tflops < 312
