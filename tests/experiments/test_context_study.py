"""Tests for the long-context study."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.context_study import (
    attention_quadratic_share,
    quadratic_crossover_length,
    run_context_study,
)
from repro.transformer.zoo import MEGATRON_7_5B


@pytest.fixture(scope="module")
def points():
    return run_context_study(context_lengths=(2048, 8192, 32768))


class TestClosedForms:
    def test_crossover_is_6h(self):
        assert quadratic_crossover_length(MEGATRON_7_5B) == 6 * 4096

    def test_share_is_half_at_crossover(self):
        model = dataclasses.replace(
            MEGATRON_7_5B,
            sequence_length=int(
                quadratic_crossover_length(MEGATRON_7_5B)))
        share = attention_quadratic_share(model)
        # embeddings excluded; residual small terms keep it near half
        assert share == pytest.approx(0.5, abs=0.03)

    def test_share_tiny_at_paper_contexts(self):
        assert attention_quadratic_share(MEGATRON_7_5B) < 0.12


class TestSweep:
    def test_share_monotone_in_context(self, points):
        shares = [p.attention_flop_share for p in points]
        assert shares == sorted(shares)

    def test_time_per_token_grows_superlinearly(self, points):
        """At fixed tokens per batch, longer contexts cost more per
        token — and increasingly so."""
        costs = [p.time_per_token_s for p in points]
        assert costs == sorted(costs)
        first_jump = costs[1] / costs[0]
        second_jump = costs[2] / costs[1]
        assert second_jump > first_jump

    def test_fixed_token_budget(self, points):
        budgets = {p.sequence_length * p.global_batch for p in points}
        assert len(budgets) == 1

    def test_rejects_non_dividing_context(self):
        with pytest.raises(ConfigurationError):
            run_context_study(context_lengths=(3000,),
                              tokens_per_batch=2 ** 20)
