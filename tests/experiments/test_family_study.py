"""Tests for the Megatron-family efficiency study."""

import pytest

from repro.experiments.family_study import run_family_study


@pytest.fixture(scope="module")
def points():
    # a 4-member slice keeps the exhaustive searches fast in CI
    return run_family_study(model_keys=(
        "megatron-1.7b", "megatron-7.5b", "megatron-39b",
        "megatron-145b"))


class TestFamilyStudy:
    def test_sizes_monotone(self, points):
        sizes = [p.n_parameters for p in points]
        assert sizes == sorted(sizes)

    def test_utilization_roughly_flat(self, points):
        """The combined-parallelism headline: best-mapping throughput
        varies by < 2x across ~two decades of model size."""
        tflops = [p.tflops_per_gpu for p in points]
        assert max(tflops) / min(tflops) < 2.0

    def test_mfu_physically_plausible(self, points):
        for p in points:
            assert 0.1 < p.mfu < 0.9

    def test_bigger_models_need_model_parallelism(self, points):
        """The 145B member cannot run DP-only on 80 GiB GPUs; its best
        mapping must carry TP and PP."""
        largest = points[-1]
        assert "PP" in largest.mapping
        assert "TP" in largest.mapping

    def test_mappings_are_memory_feasible(self, points):
        # run_family_study enforces memory; spot-check the output shape
        for p in points:
            assert p.batch_time_s > 0
