"""Tests reproducing Table III's GPipe speedups."""

import pytest

from repro.core.metrics import speedups
from repro.experiments.table3 import build_rows, reproduce_table3


@pytest.fixture(scope="module")
def table3():
    return reproduce_table3()


class TestTable3:
    def test_within_paper_error_budget(self, table3):
        __, report = table3
        assert report.max_error_percent <= 12.0

    def test_speedup_shape(self, table3):
        """Published: 1 / 1.8 / 3.3 — sub-linear in GPU count."""
        rows, _ = table3
        gains = speedups([row.batch_time_s for row in rows])
        assert gains[0] == 1.0
        assert 1.5 < gains[1] < 2.0
        assert 2.8 < gains[2] < 3.8

    def test_sublinear_due_to_bubbles(self, table3):
        rows, _ = table3
        gains = speedups([row.batch_time_s for row in rows])
        assert gains[1] < 2.0  # ideal would be 2.0
        assert gains[2] < 4.0  # ideal would be 4.0

    def test_simulator_agrees_with_analytical(self, table3):
        """The discrete-event cross-check should produce the same
        speedup shape as the closed form."""
        rows, _ = table3
        analytical = speedups([row.batch_time_s for row in rows])
        simulated = speedups([row.simulated_time_s for row in rows])
        for a, s in zip(analytical, simulated):
            assert a == pytest.approx(s, rel=0.15)

    def test_custom_gpu_counts(self):
        rows = build_rows([2, 4])
        assert [row.n_gpus for row in rows] == [2, 4]
