"""Tests reproducing Table II's headline claims."""

import pytest

from repro.experiments.table2 import build_row, reproduce_table2
from repro.validation.published import MEGATRON_TABLE2


@pytest.fixture(scope="module")
def table2():
    return reproduce_table2()


class TestTable2:
    def test_all_rows_reproduced(self, table2):
        rows, _ = table2
        assert len(rows) == 4

    def test_within_paper_error_claim(self, table2):
        """The paper's headline: max error limited to 12%."""
        __, report = table2
        assert report.max_error_percent <= 12.0

    def test_error_grows_with_pipeline_depth(self, table2):
        """The paper's own observation: R = 1 ignores interleaved
        bubble overlap, so deep-PP rows under-predict more."""
        rows, _ = table2
        shallow = rows[0].error_percent   # PP = 8
        deep = max(rows[2].error_percent, rows[3].error_percent)
        assert deep > shallow

    def test_deep_rows_under_predict(self, table2):
        rows, _ = table2
        for row in rows[2:]:
            assert row.predicted_tflops < row.point.published_tflops

    def test_predictions_physically_plausible(self, table2):
        """Between 25% and 65% of A100 peak, like the published runs."""
        rows, _ = table2
        for row in rows:
            assert 78 < row.predicted_tflops < 203

    def test_single_row_matches_batch(self):
        row = build_row(MEGATRON_TABLE2[0])
        assert row.point.model_key == "megatron-145b"
        assert row.predicted_tflops > 0
