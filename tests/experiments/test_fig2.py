"""Tests for the Fig. 2 validation experiments.

These assert the paper's claims: predicted curves track the measured
(simulated) curves within the 12% validation budget, and Fig. 2c shows
the saturating TFLOP/s shape.
"""

import pytest

from repro.experiments.fig2_validation import (
    batch_size_saturation,
    data_parallel_scaling,
    pipeline_parallel_scaling,
)
from repro.validation.published import MAX_PAPER_ERROR_PERCENT


class TestFig2a:
    @pytest.fixture(scope="class")
    def result(self):
        return data_parallel_scaling()

    def test_covers_paper_gpu_counts(self, result):
        assert result.gpu_counts == [1, 2, 4, 8, 16]

    def test_predicted_monotone_decreasing(self, result):
        curve = result.predicted_normalized
        assert all(a > b for a, b in zip(curve, curve[1:]))

    def test_measured_monotone_decreasing(self, result):
        curve = result.measured_normalized
        assert all(a > b for a, b in zip(curve, curve[1:]))

    def test_within_paper_error_budget(self, result):
        assert result.report().max_error_percent \
            <= MAX_PAPER_ERROR_PERCENT

    def test_sublinear_scaling(self, result):
        """Communication keeps the 16-GPU point above ideal 1/16."""
        assert result.measured_normalized[-1] > 1 / 16


class TestFig2b:
    @pytest.fixture(scope="class")
    def result(self):
        return pipeline_parallel_scaling()

    def test_covers_paper_gpu_counts(self, result):
        assert result.gpu_counts == [2, 4, 8, 16]

    def test_predicted_monotone_decreasing(self, result):
        curve = result.predicted_normalized
        assert all(a > b for a, b in zip(curve, curve[1:]))

    def test_within_paper_error_budget(self, result):
        assert result.report().max_error_percent \
            <= MAX_PAPER_ERROR_PERCENT

    def test_diminishing_returns(self, result):
        """The paper's saturation trend: the 8->16 improvement factor is
        weaker than the 2->4 one."""
        curve = result.predicted_normalized
        first_gain = curve[0] / curve[1]
        last_gain = curve[2] / curve[3]
        assert last_gain < first_gain


class TestFig2c:
    @pytest.fixture(scope="class")
    def points(self):
        return batch_size_saturation()

    def test_monotone_increasing(self, points):
        tflops = [p.tflops_per_gpu for p in points]
        assert tflops == sorted(tflops)

    def test_saturates(self, points):
        """Concave curve: the gain from the last doubling is far below
        the gain from the first."""
        by_ub = {p.microbatch_size: p.tflops_per_gpu for p in points}
        early_gain = by_ub[2] / by_ub[1]
        late_gain = by_ub[60] / by_ub[32]
        assert late_gain < early_gain
        assert late_gain < 1.25

    def test_saturated_end_in_published_range(self, points):
        """Narayanan et al. measure ~140-160 TFLOP/s/GPU at large
        microbatches for GPT-3-scale models on A100s."""
        assert 120 <= points[-1].tflops_per_gpu <= 170

    def test_efficiency_drives_the_shape(self, points):
        ratio_eff = points[-1].efficiency / points[0].efficiency
        ratio_tflops = points[-1].tflops_per_gpu / points[0].tflops_per_gpu
        assert ratio_tflops == pytest.approx(ratio_eff, rel=0.35)
