"""Tests reproducing Case Study III (Fig. 11)."""

import pytest

from repro.experiments.casestudy3 import (
    SUBSTRATE_SHAPES,
    reproduce_fig11,
    speedup_ladder,
)


@pytest.fixture(scope="module")
def bars():
    return reproduce_fig11()


class TestFig11Structure:
    def test_seven_bars(self, bars):
        assert len(bars) == 7

    def test_every_bar_uses_3072_accelerators(self, bars):
        for bar in bars:
            nodes = 3072 // bar.accelerators_per_node
            assert nodes * bar.accelerators_per_node == 3072

    def test_substrate_shapes_match_paper(self):
        """4x2 -> 8 fibers, 4x4 -> 12, 4x8 -> 20, 6x8 -> 24."""
        assert SUBSTRATE_SHAPES == {8: 8, 16: 12, 32: 20, 48: 24}


class TestFig11Claims:
    def test_ladder_monotone(self, bars):
        ladder = [bar.speedup_over(bars[0]) for bar in bars]
        assert all(b >= a * 0.999 for a, b in zip(ladder, ladder[1:]))

    def test_opt1_improves_without_changing_compute(self, bars):
        reference, opt1 = bars[0], bars[1]
        assert opt1.speedup_over(reference) > 1.1
        assert opt1.breakdown.compute_time \
            == pytest.approx(reference.breakdown.compute_time, rel=0.01)

    def test_opt1_slashes_moe_comm(self, bars):
        """The paper: MoE communication "reduced by a factor ~6"."""
        reference, opt1 = bars[0], bars[1]
        ratio = reference.breakdown.comm_moe / opt1.breakdown.comm_moe
        assert 3.0 < ratio < 12.0

    def test_opt2_improves_compute_efficiency(self, bars):
        """Bigger nodes -> more TP, fewer DP replicas, better
        microbatch efficiency -> less compute time."""
        opt1, opt2_48 = bars[1], bars[4]
        assert opt2_48.breakdown.compute_time \
            < opt1.breakdown.compute_time

    def test_opt3_only_moves_communication(self, bars):
        opt2_48, opt3_4x = bars[4], bars[6]
        assert opt3_4x.breakdown.compute_time \
            == pytest.approx(opt2_48.breakdown.compute_time, rel=0.01)
        assert opt3_4x.breakdown.comm_time \
            < opt2_48.breakdown.comm_time

    def test_total_speedup_in_paper_ballpark(self, bars):
        """The paper reports up to ~3.9x; with our physically-sharded
        MoE accounting the ladder tops out lower but must clearly
        exceed 2x without touching peak compute."""
        final = bars[-1].speedup_over(bars[0])
        assert 2.0 < final < 6.0

    def test_compute_dominates_at_the_end(self, bars):
        """"computation time ... starts to dominate training time for
        systems with high bandwidth"."""
        final = bars[-1].breakdown
        assert final.compute_time > 0.75 * final.total

    def test_ladder_helper(self, bars):
        ladder = speedup_ladder(bars)
        assert ladder[bars[0].label] == 1.0
        assert len(ladder) == 7
