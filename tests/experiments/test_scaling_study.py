"""Tests for the strong-scaling study."""

import pytest

from repro.experiments.scaling_study import run_scaling_study


@pytest.fixture(scope="module")
def points():
    # a reduced sweep keeps the exhaustive search fast in CI
    return run_scaling_study(node_counts=(8, 16, 32))


class TestScalingStudy:
    def test_time_falls_with_accelerators(self, points):
        times = [p.batch_time_s for p in points]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_efficiency_near_or_below_one(self, points):
        """Parallel efficiency stays at or below ideal (a small
        tolerance absorbs mapping-change artifacts: the optimizer may
        find a slightly better *shape* at a larger size)."""
        base = points[0]
        efficiencies = [p.efficiency_over(base) for p in points[1:]]
        assert all(e <= 1.02 for e in efficiencies)
        assert efficiencies[-1] <= efficiencies[0] + 1e-9

    def test_speedup_is_near_linear_but_bounded(self, points):
        base = points[0]
        final = points[-1]
        ideal = final.n_accelerators / base.n_accelerators
        speedup = final.speedup_over(base)
        assert 1.0 < speedup <= ideal * 1.02

    def test_tp_stays_inside_the_node(self, points):
        """Conclusion 5 holds at every scale."""
        for point in points:
            assert point.tp_intra > 1
            assert not point.uses_inter_tp

    def test_mappings_recorded(self, points):
        assert all("TP" in p.mapping for p in points)
