"""Unit tests for the comparison/report helpers."""

import pytest

from repro.errors import ValidationDataError
from repro.validation.compare import (
    ComparisonRow,
    ValidationReport,
    compare_series,
)


class TestComparisonRow:
    def test_error_percent(self):
        assert ComparisonRow("x", 110.0, 100.0).error_percent \
            == pytest.approx(10.0)

    def test_exact_match(self):
        assert ComparisonRow("x", 5.0, 5.0).error_percent == 0.0


class TestValidationReport:
    def make(self) -> ValidationReport:
        return compare_series("test", ["a", "b", "c"],
                              [1.0, 2.2, 2.85], [1.0, 2.0, 3.0])

    def test_max_error(self):
        assert self.make().max_error_percent == pytest.approx(10.0)

    def test_mean_error(self):
        assert self.make().mean_error_percent \
            == pytest.approx((0 + 10 + 5) / 3)

    def test_within_budget(self):
        report = self.make()
        assert report.within(10.01)
        assert not report.within(9.99)

    def test_format_table_structure(self):
        text = self.make().format_table()
        assert "predicted" in text and "reference" in text
        assert "max error" in text
        assert "10.00%" in text

    def test_rejects_empty(self):
        with pytest.raises(ValidationDataError):
            ValidationReport(name="empty", rows=())

    def test_series_length_mismatch(self):
        with pytest.raises(ValidationDataError):
            compare_series("x", ["a"], [1.0, 2.0], [1.0])
