"""Unit tests for the transcribed published datasets."""

import pytest

from repro.errors import ValidationDataError
from repro.transformer.zoo import MODELS
from repro.validation.published import (
    FIG2C_ERRORS,
    GPIPE_TABLE3,
    MAX_PAPER_ERROR_PERCENT,
    MEGATRON_TABLE2,
    table2_point,
)


class TestTable2Data:
    def test_four_rows(self):
        assert len(MEGATRON_TABLE2) == 4

    def test_model_keys_resolve(self):
        assert all(point.model_key in MODELS
                   for point in MEGATRON_TABLE2)

    def test_gpu_counts_divisible_by_8(self):
        assert all(point.n_gpus % 8 == 0 for point in MEGATRON_TABLE2)

    def test_paper_errors_within_claim(self):
        assert all(point.paper_error_percent <= MAX_PAPER_ERROR_PERCENT
                   for point in MEGATRON_TABLE2)

    def test_paper_predictions_consistent_with_errors(self):
        """The transcribed prediction/published/error columns must agree
        with each other (guards transcription typos)."""
        for point in MEGATRON_TABLE2:
            error = 100.0 * abs(point.paper_prediction_tflops
                                - point.published_tflops) \
                / point.published_tflops
            assert error == pytest.approx(point.paper_error_percent,
                                          abs=0.35)

    def test_tp_is_always_8(self):
        assert all(point.tp == 8 for point in MEGATRON_TABLE2)

    def test_lookup(self):
        assert table2_point("megatron-145b").published_tflops == 148

    def test_lookup_unknown(self):
        with pytest.raises(ValidationDataError):
            table2_point("gpt-5")


class TestTable3Data:
    def test_baseline_is_two_gpus(self):
        assert GPIPE_TABLE3[0].n_gpus == 2
        assert GPIPE_TABLE3[0].published_speedup == 1.0

    def test_speedups_monotone(self):
        published = [point.published_speedup for point in GPIPE_TABLE3]
        assert published == sorted(published)

    def test_paper_predictions_within_claim(self):
        for point in GPIPE_TABLE3:
            error = abs(point.paper_prediction_speedup
                        - point.published_speedup) \
                / point.published_speedup
            assert error <= MAX_PAPER_ERROR_PERCENT / 100.0


class TestFig2cData:
    def test_error_shrinks_with_microbatch(self):
        assert FIG2C_ERRORS[0].microbatch_size \
            < FIG2C_ERRORS[-1].microbatch_size
        assert FIG2C_ERRORS[0].paper_error_percent \
            > FIG2C_ERRORS[-1].paper_error_percent
