"""Unit tests for the two-state power model."""

import pytest

from repro.energy.power import PowerModel
from repro.errors import ConfigurationError
from repro.hardware.catalog import A100


class TestPowerModel:
    def test_idle_watts(self):
        power = PowerModel(active_watts=400.0, idle_fraction=0.3)
        assert power.idle_watts == pytest.approx(120.0)

    def test_average_interpolates(self):
        power = PowerModel(active_watts=400.0, idle_fraction=0.5)
        assert power.average_watts(0.5) == pytest.approx(300.0)

    def test_average_endpoints(self):
        power = PowerModel(active_watts=400.0, idle_fraction=0.25)
        assert power.average_watts(1.0) == 400.0
        assert power.average_watts(0.0) == 100.0

    def test_for_accelerator_uses_tdp(self):
        power = PowerModel.for_accelerator(A100)
        assert power.active_watts == A100.tdp_watts

    def test_rejects_zero_active(self):
        with pytest.raises(ConfigurationError):
            PowerModel(active_watts=0.0)

    def test_rejects_bad_idle_fraction(self):
        with pytest.raises(ConfigurationError):
            PowerModel(active_watts=100.0, idle_fraction=1.5)

    def test_rejects_bad_busy_share(self):
        power = PowerModel(active_watts=100.0)
        with pytest.raises(ConfigurationError):
            power.average_watts(-0.1)
