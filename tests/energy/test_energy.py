"""Unit tests for energy estimation and the break-even analysis."""

import pytest

from repro.core.breakdown import TrainingTimeBreakdown
from repro.energy.energy import (
    JOULES_PER_KWH,
    breakeven_idle_fraction,
    estimate_energy,
)
from repro.energy.power import PowerModel
from repro.errors import ConfigurationError

POWER = PowerModel(active_watts=400.0, idle_fraction=0.3)


def breakdown(compute=100.0, bubble=0.0) -> TrainingTimeBreakdown:
    return TrainingTimeBreakdown(compute_forward=compute, bubble=bubble)


class TestEstimateEnergy:
    def test_active_only(self):
        energy = estimate_energy(breakdown(compute=100.0), POWER, 10)
        assert energy.total_joules == pytest.approx(100 * 400 * 10)
        assert energy.idle_joules == 0.0

    def test_bubble_draws_idle_power(self):
        energy = estimate_energy(breakdown(compute=100.0, bubble=50.0),
                                 POWER, 1)
        assert energy.active_joules == pytest.approx(100 * 400)
        assert energy.idle_joules == pytest.approx(50 * 120)

    def test_kwh(self):
        energy = estimate_energy(breakdown(compute=9000.0), POWER, 1)
        assert energy.total_kwh \
            == pytest.approx(9000 * 400 / JOULES_PER_KWH)

    def test_rejects_zero_accelerators(self):
        with pytest.raises(ConfigurationError):
            estimate_energy(breakdown(), POWER, 0)


class TestBreakeven:
    def test_paper_scenario(self):
        """Case Study II: PP ~4% slower with ~11% bubbles -> break-even
        idle fraction should be positive and below 1."""
        fraction = breakeven_idle_fraction(
            time_fast_s=100.0, time_slow_s=104.0,
            bubble_share_slow=0.11)
        assert 0.0 < fraction < 1.0
        # verify the parity algebra: energy equal at the returned x
        active = 104.0 * 0.89
        idle = 104.0 * 0.11
        assert active + idle * fraction == pytest.approx(100.0)

    def test_never_wins_when_slower_and_busy(self):
        fraction = breakeven_idle_fraction(100.0, 150.0, 0.05)
        assert fraction < 0  # impossible: active time alone exceeds fast

    def test_rejects_bad_bubble_share(self):
        with pytest.raises(ConfigurationError):
            breakeven_idle_fraction(100.0, 104.0, 0.0)

    def test_rejects_non_positive_times(self):
        with pytest.raises(ConfigurationError):
            breakeven_idle_fraction(0.0, 104.0, 0.1)
