"""Vectorized backend unit tests: projection, exactness, fallbacks.

The zoo-wide equivalence properties live in
``tests/properties/test_vectorized_properties.py``; this module pins
the mechanics — key projection against the TERM_KEYS taxonomy, the
batched reductions against their scalar counterparts, path selection,
the optional-NumPy contract, pickling/worker shipping and the
observability surface.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from repro.collectives import keys
from repro.core.model import AMPeD
from repro.errors import ConfigurationError, MappingError
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.obs.metrics import collect_cache_metrics, reset_metrics
from repro.obs.trace import get_tracer
from repro.parallelism.mapping import enumerate_mappings
from repro.search import vectorized as vectorized_module
from repro.search.compiler import (
    CompiledSweep,
    clear_compiled_cache,
    compile_sweep,
    install_compiled,
    warm_worker,
)
from repro.search.dse import evaluate_candidate, explore
from repro.search.vectorized import (
    AUTO_VECTORIZE_THRESHOLD,
    BoundBatch,
    bind_chunk,
    evaluate_prebound,
    VectorizedSweep,
    clear_vectorized_stats,
    evaluate_chunk,
    require_numpy,
    resolve_evaluation_path,
    vectorized_stats,
)
from repro.transformer.zoo import MODELS

GLOBAL_BATCH = 256


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


@pytest.fixture(scope="module")
def template(system):
    amped = AMPeD.for_mapping(MODELS["megatron-145b"], system,
                              dp=system.n_accelerators)
    return replace(amped, evaluation_path="compiled")


@pytest.fixture(scope="module")
def mappings(system, template):
    return enumerate_mappings(system, template.model)


@pytest.fixture()
def compiled(template):
    return compile_sweep(template, GLOBAL_BATCH)


class TestKeyProjection:
    """The binder's inlined projections must partition candidates
    exactly like the TERM_KEYS taxonomy they transcribe."""

    @pytest.mark.parametrize("attr,key_fn", [
        ("_tpi_idx", keys.tp_intra_key),
        ("_tpx_idx", keys.tp_inter_key),
        ("_pp_idx", keys.pp_key),
        ("_moe_idx", keys.moe_key),
        ("_grad_idx", keys.gradient_key),
    ])
    def test_comm_indices_match_taxonomy(self, compiled, mappings,
                                         attr, key_fn):
        batch = BoundBatch(compiled, mappings)
        indices = getattr(batch, attr)
        taxonomy = {}
        for spec, index in zip(mappings, indices.tolist()):
            key = key_fn(spec)
            assert taxonomy.setdefault(key, index) == index, (
                f"specs with equal {key_fn.__name__} map to different "
                f"array indices")
        # Distinct keys must not collapse onto one index either.
        assert len(set(taxonomy.values())) == len(taxonomy)

    def test_lane_keys_match_taxonomy(self, compiled, mappings):
        from repro.search.tuning import candidate_microbatch_counts
        batch = BoundBatch(compiled, mappings, tune_microbatches=True)
        eff_taxonomy = {}
        bub_taxonomy = {}
        lane = 0
        for spec in mappings:
            for n_ub in candidate_microbatch_counts(spec, GLOBAL_BATCH):
                tuned = spec.with_microbatches(n_ub)
                assert batch._lane_nub[lane] == n_ub
                eff_index = int(batch._lane_eff_idx[lane])
                bub_index = int(batch._lane_bub_idx[lane])
                assert eff_taxonomy.setdefault(
                    keys.efficiency_key(tuned), eff_index) == eff_index
                assert bub_taxonomy.setdefault(
                    keys.bubble_key(tuned), bub_index) == bub_index
                lane += 1
        assert lane == batch.n_lanes


class TestBatchedReductions:
    def test_best_lanes_matches_scalar_tuner(self, compiled, mappings):
        batch = BoundBatch(compiled, mappings, tune_microbatches=True)
        times, picks, feasible = batch.best_lanes()
        for index, spec in enumerate(mappings):
            try:
                tuned, batch_time = compiled.best_microbatch(spec)
            except MappingError:
                assert not feasible[index]
                continue
            assert feasible[index]
            assert times[index] == batch_time  # bit-exact
            assert int(batch._lane_nub[picks[index]]) \
                == tuned.microbatches  # same tie-break

    def test_lower_bounds_match_scalar_pruner(self, compiled, mappings):
        batch = BoundBatch(compiled, mappings, tune_microbatches=True)
        bounds = batch.lower_bounds()
        for index, spec in enumerate(mappings):
            try:
                expected = compiled.lower_bound(spec)
            except MappingError:
                assert math.isnan(bounds[index])
                continue
            assert bounds[index] == expected  # bit-exact

    def test_untuned_lanes_match_batch_time(self, compiled, mappings):
        batch = BoundBatch(compiled, mappings)
        assert batch.n_lanes == len(mappings)
        times = batch.lane_times()
        for index, spec in enumerate(mappings):
            try:
                expected = compiled.batch_time(spec)
            except MappingError:
                assert math.isnan(times[index])
                continue
            assert times[index] == expected

    def test_empty_batch(self, compiled):
        batch = BoundBatch(compiled, [])
        times, picks, feasible = batch.best_lanes()
        assert times.shape == picks.shape == feasible.shape == (0,)
        assert batch.lower_bounds().shape == (0,)


class TestEvaluateChunk:
    def test_outcomes_match_scalar_evaluation(self, template, compiled,
                                              mappings):
        bounds, outcomes = evaluate_chunk(
            template, compiled, mappings, GLOBAL_BATCH,
            tune_microbatches=True, need_bounds=True)
        assert len(outcomes) == len(mappings) == len(bounds)
        for spec, outcome in zip(mappings, outcomes):
            reference = evaluate_candidate(template, spec, GLOBAL_BATCH,
                                           tune_microbatches=True)
            if outcome is None:
                # Only undecidable candidates defer to the scalar path,
                # and those are exactly the non-evaluated ones here.
                assert not reference.evaluated
                continue
            assert reference.evaluated
            result = outcome.result
            assert result.batch_time_s \
                == reference.result.batch_time_s  # bit-exact
            assert result.breakdown.as_dict() \
                == reference.result.breakdown.as_dict()
            assert result.parallelism == reference.result.parallelism
            assert result.microbatch_size \
                == reference.result.microbatch_size
            assert result.microbatch_efficiency \
                == reference.result.microbatch_efficiency


class TestPathSelection:
    @pytest.fixture(autouse=True)
    def _fresh_threshold(self):
        # The auto-upgrade threshold self-tunes from the benchmark
        # trajectory, so tests compare against the resolved value
        # rather than the AUTO_VECTORIZE_THRESHOLD fallback constant.
        vectorized_module.clear_threshold_cache()
        yield
        vectorized_module.clear_threshold_cache()

    def test_explicit_vectorized_passes_through(self):
        assert resolve_evaluation_path(
            "vectorized", 1) == "vectorized"

    def test_compiled_upgrades_at_threshold(self):
        threshold = vectorized_module.auto_vectorize_threshold()
        assert resolve_evaluation_path(
            "compiled", threshold) == "vectorized"

    def test_compiled_stays_below_threshold(self):
        threshold = vectorized_module.auto_vectorize_threshold()
        assert resolve_evaluation_path(
            "compiled", threshold - 1) == "compiled"

    def test_constant_is_the_fallback_floor(self):
        assert AUTO_VECTORIZE_THRESHOLD >= 1

    @pytest.mark.parametrize("path", ["per_layer", "collapsed"])
    def test_other_paths_untouched(self, path):
        assert resolve_evaluation_path(path, 10**9) == path


class TestOptionalNumpyContract:
    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorized_module, "HAVE_NUMPY", False)

    def test_require_numpy_raises_configuration_error(self, no_numpy):
        with pytest.raises(ConfigurationError, match="requires NumPy"):
            require_numpy()

    def test_explicit_request_never_downgrades(self, no_numpy):
        with pytest.raises(ConfigurationError, match="requires NumPy"):
            resolve_evaluation_path("vectorized", 10**6)

    def test_auto_upgrade_disabled(self, no_numpy):
        assert resolve_evaluation_path(
            "compiled", 10**6) == "compiled"

    def test_explore_surfaces_the_error(self, no_numpy, template):
        with pytest.raises(ConfigurationError, match="requires NumPy"):
            explore(template, GLOBAL_BATCH, max_results=3,
                    evaluation_path="vectorized")

    def test_run_sweep_surfaces_the_error(self, no_numpy, template):
        from repro.search.resilience import run_sweep
        with pytest.raises(ConfigurationError, match="requires NumPy"):
            run_sweep(template, GLOBAL_BATCH, max_results=3,
                      evaluation_path="vectorized")


class TestShipping:
    """Bound batches and their compiled tables survive pickling — the
    worker-pool shipping contract."""

    def test_bound_batch_round_trips(self, compiled, mappings):
        batch = BoundBatch(compiled, mappings, tune_microbatches=True)
        clone = pickle.loads(pickle.dumps(batch))
        np.testing.assert_array_equal(clone.lane_times(),
                                      batch.lane_times())
        times, _, feasible = batch.best_lanes()
        clone_times, _, clone_feasible = clone.best_lanes()
        np.testing.assert_array_equal(clone_times, times)
        np.testing.assert_array_equal(clone_feasible, feasible)

    def test_warm_worker_shipped_tables_back_the_backend(
            self, template, mappings):
        parent = compile_sweep(template, GLOBAL_BATCH)
        expected = VectorizedSweep(parent).bind(
            mappings, tune_microbatches=True).lane_times()
        shipped = pickle.loads(pickle.dumps(parent))
        clear_compiled_cache()
        warm_worker(template, GLOBAL_BATCH, compiled=shipped)
        installed = compile_sweep(template, GLOBAL_BATCH)
        assert installed is shipped
        actual = VectorizedSweep(installed).bind(
            mappings, tune_microbatches=True).lane_times()
        np.testing.assert_array_equal(actual, expected)

    def test_install_compiled_path(self, template, compiled, mappings):
        clone = pickle.loads(pickle.dumps(compiled))
        install_compiled(clone)
        batch = VectorizedSweep(clone).bind(mappings)
        assert batch.n_specs == len(mappings)

    def test_prebound_chunk_ships_lean_and_reattaches(
            self, template, mappings):
        # A cached compiled sweep is stripped from the pickle and
        # reattached from the receiving process's compile cache — the
        # warm-worker contract: chunks carry arrays, not tables.
        parent = compile_sweep(template, GLOBAL_BATCH)
        assert parent.cache_key is not None
        chunk = bind_chunk(template, parent, mappings, GLOBAL_BATCH,
                           tune_microbatches=True)
        reference_bounds, reference = evaluate_prebound(chunk, True)
        payload = pickle.dumps(chunk)
        assert len(payload) < len(pickle.dumps(chunk.batch.compiled)) \
            + len(pickle.dumps(chunk.batch.__getstate__()))
        clone = pickle.loads(payload)
        assert clone.batch.compiled is parent
        bounds, outcomes = evaluate_prebound(clone, True)
        assert bounds == reference_bounds
        assert [o.result.batch_time_s for o in outcomes if o] \
            == [o.result.batch_time_s for o in reference if o]

    def test_prebound_chunk_without_cache_key_carries_tables(
            self, template, mappings):
        uncached = CompiledSweep(template, GLOBAL_BATCH)
        assert uncached.cache_key is None
        chunk = bind_chunk(template, uncached, mappings, GLOBAL_BATCH,
                           tune_microbatches=False)
        clone = pickle.loads(pickle.dumps(chunk))
        assert clone.batch.compiled is not None
        _, outcomes = evaluate_prebound(clone)
        _, reference = evaluate_prebound(chunk)
        assert [o.result.batch_time_s for o in outcomes if o] \
            == [o.result.batch_time_s for o in reference if o]


class TestObservability:
    def test_stats_accumulate_per_bind(self, compiled, mappings):
        clear_vectorized_stats()
        BoundBatch(compiled, mappings, tune_microbatches=True)
        stats = vectorized_stats()
        assert stats["available"] == 1
        assert stats["builds"] == 1
        assert stats["build_seconds"] > 0
        assert stats["array_bytes"] > 0
        assert stats["max_batch_size"] == len(mappings)
        assert stats["lanes"] >= len(mappings)
        BoundBatch(compiled, mappings[:2])
        assert vectorized_stats()["builds"] == 2

    def test_cache_gauges_folded(self, compiled, mappings):
        clear_vectorized_stats()
        BoundBatch(compiled, mappings)
        reset_metrics()
        registry = collect_cache_metrics()
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["cache.vectorized.available"] == 1
        assert gauges["cache.vectorized.builds"] == 1
        assert gauges["cache.vectorized.array_bytes"] > 0
        reset_metrics()

    def test_explore_emits_vectorized_span(self, template):
        tracer = get_tracer()
        tracer.enable(reset=True)
        try:
            explore(template, GLOBAL_BATCH, max_results=3,
                    evaluation_path="vectorized")
        finally:
            tracer.disable()
        spans = [record for record in tracer.records()
                 if record.name == "dse.vectorized_eval"]
        tracer.reset()
        assert spans, "vectorized explore emitted no dse.vectorized_eval"
        assert spans[0].category == "search"
        assert spans[0].attrs["n_candidates"] >= 1
        assert "scalar_fallbacks" in spans[0].attrs
