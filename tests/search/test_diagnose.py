"""Unit tests for mapping-feasibility diagnosis."""

import pytest

from repro.errors import MappingError
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.spec import ParallelismSpec, spec_from_totals
from repro.search.diagnose import diagnose_mapping, require_feasible
from repro.transformer.zoo import MEGATRON_145B, MINGPT_85M


@pytest.fixture
def system():
    return megatron_a100_cluster(n_nodes=16)


class TestDiagnosis:
    def test_good_mapping_is_feasible(self, system):
        spec = spec_from_totals(system, tp=8, pp=8, dp=2,
                                n_microbatches=1024)  # microbatch 1
        diagnosis = diagnose_mapping(spec, MEGATRON_145B, system,
                                     global_batch=2048)
        assert diagnosis.feasible
        assert "feasible" in diagnosis.explain()

    def test_system_tiling_reported(self, system):
        spec = ParallelismSpec(tp_intra=4, dp_inter=16)  # node has 8
        diagnosis = diagnose_mapping(spec, MEGATRON_145B, system)
        assert not diagnosis.feasible
        assert any(issue.check == "system"
                   for issue in diagnosis.issues)

    def test_head_divisibility_reported(self, system):
        # 145B has 96 heads; TP = 64 does not divide them
        spec = spec_from_totals(system, tp=64, dp=2)
        diagnosis = diagnose_mapping(spec, MEGATRON_145B, system)
        assert any("heads" in issue.problem
                   for issue in diagnosis.issues)

    def test_deep_pipeline_reported(self, system):
        spec = spec_from_totals(system, tp=8, pp=16)
        diagnosis = diagnose_mapping(spec, MINGPT_85M, system)
        assert any("layers" in issue.problem
                   for issue in diagnosis.issues)

    def test_microbatch_granularity_reported(self, system):
        spec = spec_from_totals(system, dp=128)
        diagnosis = diagnose_mapping(spec, MINGPT_85M, system,
                                     global_batch=64)
        assert any(issue.check == "batch"
                   for issue in diagnosis.issues)

    def test_memory_overflow_reported_with_suggestion(self, system):
        spec = spec_from_totals(system, dp=128)  # 145B replicated
        diagnosis = diagnose_mapping(spec, MEGATRON_145B, system,
                                     global_batch=2048)
        memory_issues = [issue for issue in diagnosis.issues
                         if issue.check == "memory"]
        assert memory_issues
        assert "ZeRO-3" in memory_issues[0].suggestion

    def test_multiple_issues_collected_at_once(self, system):
        spec = ParallelismSpec(tp_intra=3, pp_inter=100)
        diagnosis = diagnose_mapping(spec, MINGPT_85M, system,
                                     global_batch=4)
        assert len(diagnosis.issues) >= 3

    def test_microbatch_suggestion_names_feasible_size(self, system):
        spec = spec_from_totals(system, tp=8, pp=8, dp=2,
                                n_microbatches=8)
        diagnosis = diagnose_mapping(spec, MEGATRON_145B, system,
                                     global_batch=2048)
        memory_issues = [issue for issue in diagnosis.issues
                         if issue.check == "memory"]
        if memory_issues:  # microbatch 128 will not fit
            assert "largest feasible" in memory_issues[0].problem


class TestRequireFeasible:
    def test_passes_silently(self, system):
        spec = spec_from_totals(system, tp=4, dp=32)  # 4 divides 12 heads
        require_feasible(spec, MINGPT_85M, system, global_batch=256)

    def test_raises_with_full_story(self, system):
        spec = spec_from_totals(system, dp=128)
        with pytest.raises(MappingError) as excinfo:
            require_feasible(spec, MEGATRON_145B, system,
                             global_batch=2048)
        assert "memory" in str(excinfo.value)
