"""Fault-injection tests for the resilient sweep runtime.

Covers the failure paths the plain explorer cannot survive: a worker
that hangs (the batch timeout fires and the pool is rebuilt), a worker
that raises a non-``ReproError`` (retry with backoff, then graceful
degradation to serial), SIGINT mid-sweep (exact partial top-k), and the
journal's resume round trip (interrupted + resumed == uninterrupted,
with no candidate evaluated twice).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import replace

import pytest

from repro.core.breakdown import TrainingTimeBreakdown
from repro.core.model import AMPeD
from repro.errors import ConfigurationError, SweepInterrupted, WorkerError
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.search.dse import (
    SKIP_WORKER_ERROR,
    CandidateOutcome,
    ExplorationResult,
    evaluate_candidate,
    explore,
)
from repro.search.resilience import (
    JOURNAL_SCHEMA_VERSION,
    SweepJournal,
    run_sweep,
    spec_key,
)

# --------------------------------------------------------------------------
# Picklable fault-injection evaluation functions (module level so worker
# processes can unpickle them by qualified name).
# --------------------------------------------------------------------------

_MAIN_PID = os.getpid()

#: Explicit candidate list with distinct, deterministic fake timings.
FAKE_SPECS = [
    ParallelismSpec(tp_intra=4, dp_inter=4),
    ParallelismSpec(dp_intra=4, dp_inter=4),
    ParallelismSpec(pp_intra=4, dp_inter=4),
    ParallelismSpec(tp_intra=2, dp_intra=2, dp_inter=4),
    ParallelismSpec(tp_intra=2, pp_intra=2, dp_inter=4),
    ParallelismSpec(dp_intra=4, pp_inter=2, dp_inter=2),
]


def _fake_time(spec: ParallelismSpec) -> float:
    return (spec.tp * 1.0 + spec.pp * 0.13 + spec.dp * 0.017
            + spec.pp_inter * 0.003)


def _fake_outcome(spec: ParallelismSpec) -> CandidateOutcome:
    batch_time = _fake_time(spec)
    return CandidateOutcome(spec=spec, result=ExplorationResult(
        parallelism=spec,
        global_batch=64,
        batch_time_s=batch_time,
        breakdown=TrainingTimeBreakdown(compute_forward=batch_time),
        microbatch_size=1.0,
        microbatch_efficiency=0.5,
    ))


def _eval_ok(spec: ParallelismSpec) -> CandidateOutcome:
    return _fake_outcome(spec)


def _eval_hang_in_worker(spec: ParallelismSpec) -> CandidateOutcome:
    """Hang forever in pool workers; evaluate instantly in the parent
    (i.e. after degradation to serial execution)."""
    if os.getpid() != _MAIN_PID:
        time.sleep(300.0)
    return _fake_outcome(spec)


def _eval_raise(spec: ParallelismSpec) -> CandidateOutcome:
    raise RuntimeError("injected worker crash")


@pytest.fixture
def template(tiny_model, small_system):
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                 efficiency=CASE_STUDY_EFFICIENCY)


# --------------------------------------------------------------------------
# Equivalence with the plain explorer
# --------------------------------------------------------------------------


class TestRankingEquivalence:
    def test_serial_matches_explore(self, template):
        ranked = explore(template, 64, max_results=5)
        outcome = run_sweep(template, 64, max_results=5)
        assert [(r.label, r.batch_time_s) for r in outcome.results] \
            == [(r.label, r.batch_time_s) for r in ranked]
        assert not outcome.partial

    def test_pool_matches_explore(self, template):
        ranked = explore(template, 64, max_results=5)
        outcome = run_sweep(template, 64, max_results=5, workers=2)
        assert [(r.label, r.batch_time_s) for r in outcome.results] \
            == [(r.label, r.batch_time_s) for r in ranked]

    def test_report_covers_the_space(self, template):
        outcome = run_sweep(template, 64, max_results=5)
        report = outcome.report
        assert report.covered == report.n_candidates
        assert report.evaluated >= 5
        assert not report.degraded


# --------------------------------------------------------------------------
# Hung worker: timeout fires, pool is retried, then degraded
# --------------------------------------------------------------------------


class TestHungWorker:
    def test_timeout_degrades_and_completes(self, template):
        outcome = run_sweep(
            template, 64, mappings=list(FAKE_SPECS), prune=False,
            workers=2, timeout=1.0, retries=1, backoff_s=0.01,
            evaluate=_eval_hang_in_worker)
        assert outcome.report.degraded
        assert "consecutive" in outcome.report.degraded_reason
        assert outcome.report.retried == 1
        # degradation completed the sweep serially instead of hanging
        assert len(outcome.results) == len(FAKE_SPECS)
        times = [r.batch_time_s for r in outcome.results]
        assert times == sorted(times)
        assert not outcome.partial


# --------------------------------------------------------------------------
# Crashing worker function: retry with backoff, then degrade
# --------------------------------------------------------------------------


class TestWorkerCrash:
    def test_non_repro_error_retries_then_degrades(self, template):
        outcome = run_sweep(
            template, 64, mappings=list(FAKE_SPECS), prune=False,
            workers=2, retries=2, backoff_s=0.01, evaluate=_eval_raise)
        report = outcome.report
        assert report.retried == 2
        assert report.degraded
        # serial evaluation still fails -> journaled worker_error skips
        assert report.worker_errors == len(FAKE_SPECS)
        assert report.skipped[SKIP_WORKER_ERROR] == len(FAKE_SPECS)
        assert outcome.results == []
        assert report.covered == report.n_candidates

    def test_strict_mode_raises_worker_error(self, template, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with pytest.raises(WorkerError) as excinfo:
            run_sweep(template, 64, mappings=list(FAKE_SPECS),
                      prune=False, retries=0, backoff_s=0.0,
                      journal_path=journal, strict=True,
                      evaluate=_eval_raise)
        assert excinfo.value.journal_path == str(journal)


# --------------------------------------------------------------------------
# SIGINT mid-sweep: exact partial top-k
# --------------------------------------------------------------------------


def _interrupting(evaluate, after: int):
    """Wrap ``evaluate`` to deliver a real SIGINT after ``after`` calls."""
    calls = {"n": 0}

    def wrapped(spec):
        calls["n"] += 1
        if calls["n"] == after:
            os.kill(os.getpid(), signal.SIGINT)
        return evaluate(spec)

    return wrapped


class TestSigint:
    def test_partial_topk_matches_serial_prefix(self, template):
        interrupt_after = 3
        outcome = run_sweep(
            template, 64, mappings=list(FAKE_SPECS), prune=False,
            evaluate=_interrupting(_eval_ok, interrupt_after))
        assert outcome.partial
        assert outcome.report.partial
        # the ranking is exact over the serial prefix evaluated so far
        prefix = sorted((_fake_time(spec) for spec
                         in FAKE_SPECS[:interrupt_after]))
        assert [r.batch_time_s for r in outcome.results] == prefix

    def test_raise_on_interrupt_carries_partials(self, template,
                                                 tmp_path):
        journal = tmp_path / "journal.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep(template, 64, mappings=list(FAKE_SPECS),
                      prune=False, journal_path=journal,
                      raise_on_interrupt=True,
                      evaluate=_interrupting(_eval_ok, 2))
        error = excinfo.value
        assert error.journal_path == str(journal)
        assert len(error.partial_results) == 2

    def test_sigint_handler_is_restored(self, template):
        before = signal.getsignal(signal.SIGINT)
        run_sweep(template, 64, mappings=list(FAKE_SPECS), prune=False,
                  evaluate=_eval_ok)
        assert signal.getsignal(signal.SIGINT) is before


# --------------------------------------------------------------------------
# Journal + resume round trip
# --------------------------------------------------------------------------


class TestResume:
    def test_resume_equals_uninterrupted(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        uninterrupted = run_sweep(template, 64, max_results=5)

        first = run_sweep(
            template, 64, max_results=5, journal_path=journal,
            evaluate=_interrupting(
                lambda spec: evaluate_candidate(template, spec, 64), 4))
        assert first.partial
        assert first.report.journal_path == str(journal)

        resumed = run_sweep(template, 64, max_results=5,
                            journal_path=journal, resume=True)
        assert not resumed.partial
        assert resumed.report.resumed > 0
        assert [(r.label, r.batch_time_s) for r in resumed.results] \
            == [(r.label, r.batch_time_s) for r in uninterrupted.results]

    def test_resume_never_reevaluates(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = run_sweep(template, 64, mappings=list(FAKE_SPECS),
                          prune=False, journal_path=journal,
                          evaluate=_interrupting(_eval_ok, 3))
        already = first.report.evaluated
        assert already == 3

        calls = {"n": 0}

        def counting(spec):
            calls["n"] += 1
            return _eval_ok(spec)

        resumed = run_sweep(template, 64, mappings=list(FAKE_SPECS),
                            prune=False, journal_path=journal,
                            resume=True, evaluate=counting)
        assert calls["n"] == len(FAKE_SPECS) - already
        assert resumed.report.resumed == already
        assert [r.batch_time_s for r in resumed.results] \
            == sorted(_fake_time(spec) for spec in FAKE_SPECS)

    def test_header_records_evaluation_path(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(template, 64, max_results=3, journal_path=journal,
                  evaluation_path="per_layer")
        header, _ = SweepJournal.load(journal)
        assert header["evaluation_path"] == "per_layer"

    def test_resume_across_evaluation_paths(self, template, tmp_path):
        """The evaluation path is journal provenance, not identity: a
        sweep interrupted under the per-layer path resumes under the
        compiled default and still produces the uninterrupted ranking
        (labels exact, times within the cross-path tolerance)."""
        journal = tmp_path / "sweep.jsonl"
        uninterrupted = run_sweep(template, 64, max_results=5)

        per_layer = replace(template, evaluation_path="per_layer")
        first = run_sweep(
            template, 64, max_results=5, journal_path=journal,
            evaluation_path="per_layer",
            evaluate=_interrupting(
                lambda spec: evaluate_candidate(per_layer, spec, 64), 4))
        assert first.partial
        assert SweepJournal.load(journal)[0]["evaluation_path"] \
            == "per_layer"

        resumed = run_sweep(template, 64, max_results=5,
                            journal_path=journal, resume=True,
                            evaluation_path="compiled")
        assert not resumed.partial
        assert resumed.report.resumed > 0
        assert [r.label for r in resumed.results] \
            == [r.label for r in uninterrupted.results]
        for ours, reference in zip(resumed.results,
                                   uninterrupted.results):
            scale = max(abs(reference.batch_time_s), 1e-300)
            assert abs(ours.batch_time_s - reference.batch_time_s) \
                / scale <= 1e-9

    def test_journal_records_every_fate(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        outcome = run_sweep(template, 64, max_results=3,
                            journal_path=journal)
        header, done = SweepJournal.load(journal)
        assert header["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert header["model"] == template.model.name
        assert len(done) == outcome.report.n_candidates
        statuses = {record["status"] for record in done.values()}
        assert statuses <= {"evaluated", "skipped"}
        for record in done.values():
            if record["status"] == "skipped":
                assert record["category"]


class TestJournalValidation:
    def test_mismatched_sweep_rejected(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(template, 64, mappings=list(FAKE_SPECS), prune=False,
                  journal_path=journal, evaluate=_eval_ok)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep(template, 128, mappings=list(FAKE_SPECS),
                      prune=False, journal_path=journal, resume=True,
                      evaluate=_eval_ok)

    def test_unsupported_version_rejected(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text(json.dumps(
            {"kind": "header", "schema_version": 999}) + "\n")
        with pytest.raises(ConfigurationError, match="schema version"):
            SweepJournal.load(journal)

    def test_empty_journal_rejected(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            SweepJournal.load(journal)

    def test_torn_final_line_tolerated(self, template, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        run_sweep(template, 64, mappings=list(FAKE_SPECS), prune=False,
                  journal_path=journal, evaluate=_eval_ok)
        intact_header, intact = SweepJournal.load(journal)
        with journal.open("a") as handle:
            handle.write('{"kind": "candidate", "key": "x", "st')
        header, done = SweepJournal.load(journal)
        assert header == intact_header
        assert done == intact

    def test_key_is_stable_across_processes(self):
        # spec_key must not depend on hash randomization or field order
        spec = ParallelismSpec(tp_intra=2, dp_intra=2, dp_inter=4)
        assert spec_key(spec) == spec_key(
            ParallelismSpec(dp_inter=4, dp_intra=2, tp_intra=2))


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------


class TestCliFlags:
    def test_parser_accepts_resilience_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["sweep", "--timeout", "5", "--retries", "3",
             "--journal", "j.jsonl"])
        assert args.timeout == 5.0
        assert args.retries == 3
        assert args.journal == "j.jsonl"
        assert args.resume is None

    def test_cli_sweep_writes_and_resumes_journal(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        journal = tmp_path / "sweep.jsonl"
        code = main(["sweep", "--nodes", "2", "--model", "mingpt-85m",
                     "--batch", "256", "--top", "5",
                     "--journal", str(journal)])
        assert code == 0
        assert journal.exists()
        out = capsys.readouterr().out
        assert "sweep coverage" in out
        # resuming a *finished* journal evaluates nothing new
        code = main(["sweep", "--nodes", "2", "--model", "mingpt-85m",
                     "--batch", "256", "--top", "5",
                     "--resume", str(journal)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from journal" in out

    def test_cli_reports_journal_mismatch_cleanly(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--nodes", "2", "--model", "mingpt-85m",
                     "--batch", "256", "--journal", str(journal)]) == 0
        capsys.readouterr()
        # resuming with a different batch is a user error, not a crash
        code = main(["sweep", "--nodes", "2", "--model", "mingpt-85m",
                     "--batch", "512", "--resume", str(journal)])
        assert code == 2
        assert "different sweep" in capsys.readouterr().err


# --------------------------------------------------------------------------
# Full-jitter retry backoff
# --------------------------------------------------------------------------


def _prebound_raise_in_worker(chunk, need_bounds=False):
    """Crash inside pool workers; delegate to the real evaluator in the
    parent (i.e. the local fallback and post-degradation paths)."""
    if os.getpid() != _MAIN_PID:
        raise RuntimeError("injected vectorized worker crash")
    from repro.search import vectorized
    return vectorized.evaluate_prebound(chunk, need_bounds)


class TestRetryJitter:
    def test_backoff_is_uniform_draw_under_the_cap(self, monkeypatch):
        import random as random_mod

        from repro.obs.metrics import get_metrics
        from repro.search.resilience import _PoolSupervisor

        sleeps = []
        monkeypatch.setattr("repro.search.resilience.time.sleep",
                            sleeps.append)
        seed = 20230423
        supervisor = _PoolSupervisor(
            2, _eval_ok, timeout=None, retries=5, backoff_s=0.25,
            rng=random_mod.Random(seed))
        before = get_metrics().histogram(
            "sweep.retry_sleep_seconds").count
        for _ in range(3):
            supervisor._note_failure(RuntimeError("injected"))
        oracle = random_mod.Random(seed)
        expected = [oracle.uniform(0.0, cap)
                    for cap in (0.25, 0.5, 1.0)]
        assert [s for s in sleeps if s > 0] \
            == [e for e in expected if e > 0]
        for sleep, cap in zip(expected, (0.25, 0.5, 1.0)):
            assert 0.0 <= sleep <= cap
        assert get_metrics().histogram(
            "sweep.retry_sleep_seconds").count == before + 3

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        from repro.search.resilience import _PoolSupervisor

        sleeps = []
        monkeypatch.setattr("repro.search.resilience.time.sleep",
                            sleeps.append)
        supervisor = _PoolSupervisor(2, _eval_ok, timeout=None,
                                     retries=3, backoff_s=0.0)
        supervisor._note_failure(RuntimeError("injected"))
        assert sleeps == []

    def test_retry_span_carries_the_chosen_sleep(self, monkeypatch):
        import random as random_mod

        from repro.obs.trace import get_tracer
        from repro.search.resilience import _PoolSupervisor

        monkeypatch.setattr("repro.search.resilience.time.sleep",
                            lambda _s: None)
        tracer = get_tracer()
        tracer.enable(reset=True)
        try:
            supervisor = _PoolSupervisor(
                2, _eval_ok, timeout=None, retries=3, backoff_s=0.125,
                rng=random_mod.Random(7))
            supervisor._note_failure(RuntimeError("injected"))
            retry_spans = [record for record in tracer.records()
                           if record.name == "dse.retry"]
            assert len(retry_spans) == 1
            attrs = retry_spans[0].attrs
            assert attrs["attempt"] == 1
            assert attrs["cap_s"] == 0.125
            assert 0.0 <= attrs["sleep_s"] <= attrs["cap_s"]
        finally:
            tracer.disable()
            tracer.reset()


# --------------------------------------------------------------------------
# Vectorized parallel sweeps: pre-bound chunks shipped to warm workers
# --------------------------------------------------------------------------


class TestVectorizedPool:
    def test_pool_matches_serial_vectorized(self, template, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setattr(
            "repro.search.resilience.DEFAULT_CHUNK_CANDIDATES", 4)
        serial = run_sweep(template, 64, max_results=5,
                           evaluation_path="vectorized")
        pooled = run_sweep(template, 64, max_results=5, workers=2,
                           evaluation_path="vectorized")
        assert [(r.label, r.batch_time_s) for r in pooled.results] \
            == [(r.label, r.batch_time_s) for r in serial.results]
        assert pooled.report.evaluated == serial.report.evaluated
        assert pooled.report.skipped == serial.report.skipped
        assert not pooled.report.degraded
        assert pooled.report.retried == 0

    def test_worker_crash_degrades_to_local_vectorized(
            self, template, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setattr(
            "repro.search.resilience.DEFAULT_CHUNK_CANDIDATES", 4)
        serial = run_sweep(template, 64, max_results=5,
                           evaluation_path="vectorized")
        monkeypatch.setattr("repro.search.resilience.evaluate_prebound",
                            _prebound_raise_in_worker)
        pooled = run_sweep(template, 64, max_results=5, workers=2,
                           retries=1, backoff_s=0.0,
                           evaluation_path="vectorized")
        # Every chunk fell back to the driver's process, so the ranking
        # and coverage are identical; the report records the collapse.
        assert [(r.label, r.batch_time_s) for r in pooled.results] \
            == [(r.label, r.batch_time_s) for r in serial.results]
        assert pooled.report.evaluated == serial.report.evaluated
        assert pooled.report.degraded
        assert "vectorized" in pooled.report.degraded_reason
        assert pooled.report.retried == 1
