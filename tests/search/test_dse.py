"""Unit tests for the design-space explorer."""

import pytest

from repro.core.model import AMPeD
from repro.errors import MappingError
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.search.dse import (
    _evaluate_spec,
    best_mapping,
    compute_lower_bound,
    explore,
    pareto_front,
)


@pytest.fixture
def template(tiny_model, small_system):
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                 efficiency=CASE_STUDY_EFFICIENCY)


class TestExplore:
    def test_sorted_fastest_first(self, template):
        results = explore(template, 64)
        times = [result.batch_time_s for result in results]
        assert times == sorted(times)

    def test_max_results_truncates(self, template):
        assert len(explore(template, 64, max_results=3)) == 3

    def test_every_result_tiles_the_system(self, template,
                                           small_system):
        for result in explore(template, 64):
            result.parallelism.validate_against(small_system)

    def test_explicit_mappings(self, template):
        specs = [ParallelismSpec(tp_intra=4, dp_inter=4),
                 ParallelismSpec(dp_intra=4, dp_inter=4)]
        results = explore(template, 64, mappings=specs,
                          tune_microbatches=False)
        assert len(results) == 2

    def test_infeasible_mappings_dropped(self, template):
        # dp = 16 over batch 8 leaves sub-sequence microbatches
        specs = [ParallelismSpec(dp_intra=4, dp_inter=4)]
        assert explore(template, 8, mappings=specs,
                       tune_microbatches=False) == []

    def test_memory_filter_drops_heavy_mappings(self, small_system):
        from repro.transformer.zoo import MEGATRON_145B
        template = AMPeD(model=MEGATRON_145B, system=small_system,
                         parallelism=ParallelismSpec(tp_intra=4,
                                                     dp_inter=4),
                         efficiency=CASE_STUDY_EFFICIENCY)
        lax = explore(template, 64, tune_microbatches=False)
        strict = explore(template, 64, tune_microbatches=False,
                         enforce_memory=True)
        # 145B cannot fit 16 A100s at all
        assert len(strict) < len(lax)

    def test_label_is_mapping_description(self, template):
        result = explore(template, 64, max_results=1)[0]
        assert result.label == result.parallelism.describe()


class TestBestMapping:
    def test_best_prefers_tp_intra_for_large_models(self, small_system):
        """For compute-heavy models the explorer lands on the paper's
        preferred shape (tiny models legitimately prefer DP/PP because
        their all-reduce latency dominates)."""
        from repro.transformer.config import TransformerConfig
        medium = TransformerConfig(
            name="medium", n_layers=8, hidden_size=2048, n_heads=16,
            sequence_length=512, vocab_size=32000)
        template = AMPeD(model=medium, system=small_system,
                         parallelism=ParallelismSpec(tp_intra=4,
                                                     dp_inter=4),
                         efficiency=CASE_STUDY_EFFICIENCY)
        best = best_mapping(template, 512)
        assert best.parallelism.tp_intra > 1
        assert not best.parallelism.uses_inter_tp

    def test_raises_on_empty_space(self, template):
        with pytest.raises(MappingError):
            best_mapping(template, 64, mappings=[])


class TestPareto:
    def test_front_is_subset_and_nondominated(self, template):
        results = explore(template, 64)
        front = pareto_front(results)
        assert set(id(r) for r in front) <= set(id(r) for r in results)
        for a in front:
            for b in results:
                strictly_better = (
                    b.batch_time_s < a.batch_time_s
                    and b.breakdown.bubble <= a.breakdown.bubble) or (
                    b.batch_time_s <= a.batch_time_s
                    and b.breakdown.bubble < a.breakdown.bubble)
                assert not strictly_better

    def test_front_contains_fastest(self, template):
        results = explore(template, 64)
        front = pareto_front(results)
        assert front[0].batch_time_s == results[0].batch_time_s


class TestPruning:
    def test_pruned_topk_matches_unpruned(self, template):
        full = explore(template, 64, prune=False)
        pruned = explore(template, 64, max_results=5, prune=True)
        assert [(r.label, r.batch_time_s) for r in pruned] \
            == [(r.label, r.batch_time_s) for r in full[:5]]

    def test_noop_without_max_results(self, template):
        assert [r.label for r in explore(template, 64, prune=True)] \
            == [r.label for r in explore(template, 64, prune=False)]

    def test_lower_bound_never_exceeds_true_time(self, template,
                                                 small_system):
        from dataclasses import replace
        from repro.parallelism.mapping import enumerate_mappings
        for spec in enumerate_mappings(small_system, template.model):
            candidate = replace(template, parallelism=spec)
            bound = compute_lower_bound(candidate, 64)
            result = _evaluate_spec(template, spec, 64,
                                    tune_microbatches=True,
                                    enforce_memory=False)
            if result is None:
                continue
            assert bound <= result.batch_time_s + 1e-12


class TestParallelExplore:
    def test_workers_match_serial_ranking(self, template):
        serial = explore(template, 64, max_results=5)
        parallel = explore(template, 64, max_results=5, workers=2)
        assert [(r.label, r.batch_time_s) for r in parallel] \
            == [(r.label, r.batch_time_s) for r in serial]

    def test_single_worker_stays_serial(self, template):
        assert [r.label for r in explore(template, 64, workers=1)] \
            == [r.label for r in explore(template, 64)]


class TestMemoryCheckDedup:
    def test_tuned_candidates_skip_recheck(self, template, monkeypatch):
        import repro.search.dse as dse_module
        calls = []
        monkeypatch.setattr(dse_module, "_memory_feasible_candidates",
                            lambda candidate, global_batch: [4])
        monkeypatch.setattr(
            dse_module, "fits_in_memory",
            lambda *args, **kwargs: calls.append(args) or True)
        results = explore(template, 64, enforce_memory=True)
        assert results  # the sweep still produced ranked mappings
        # every candidate list came pre-screened, so the per-result
        # fits_in_memory re-check must never run
        assert calls == []
