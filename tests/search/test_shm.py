"""Shared-memory transport tests: lifecycle, crash-safety, parity.

Covers the ``repro.search.shm`` registry (publish/attach/refcount/
cleanup, generation-tagged names), the guarantee that no ``/dev/shm``
segment survives a drain, a SIGINT unwind or a SIGKILL'd publisher,
and the bit-exactness contracts: a shipped compiled sweep and a
shared-memory ``PreboundChunk`` must evaluate identically to their
pickled counterparts, and the pickle fallback (no ``shared_memory``)
must stay bit-exact against the in-process reference.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.core.model import AMPeD
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.search import shm
from repro.search.compiler import compile_sweep
from repro.search.vectorized import bind_chunk, evaluate_prebound
from repro.transformer.zoo import MODELS

GLOBAL_BATCH = 256
SRC_DIR = Path(__file__).resolve().parents[2] / "src"

needs_shm = pytest.mark.skipif(
    not shm.HAVE_SHM, reason="multiprocessing.shared_memory unavailable")


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


@pytest.fixture(scope="module")
def template(system):
    amped = AMPeD.for_mapping(MODELS["megatron-145b"], system,
                              dp=system.n_accelerators)
    return replace(amped, evaluation_path="compiled")


@pytest.fixture(scope="module")
def mappings(system, template):
    return enumerate_mappings(system, template.model)


@pytest.fixture()
def compiled(template):
    return compile_sweep(template, GLOBAL_BATCH)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave the registry and ``/dev/shm`` clean."""
    before = set(shm.leaked_segment_names())
    yield
    shm.cleanup_all_segments()
    after = set(shm.leaked_segment_names())
    assert after - before == set(), (
        f"test leaked shared-memory segments: {sorted(after - before)}")


@needs_shm
class TestSegmentLifecycle:
    def test_publish_attach_roundtrip(self):
        arrays = {"a": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.array([2.5, -2.5, 0.0])}
        blobs = {"meta": b"\x00\x01payload"}
        handle = shm.publish_segment("test", arrays=arrays, blobs=blobs)
        assert handle.name.startswith(shm.SHM_NAME_PREFIX)
        assert handle.name in shm.active_segments()
        attachment = handle.attach()
        try:
            for key, array in arrays.items():
                np.testing.assert_array_equal(attachment.arrays[key],
                                              array)
            assert attachment.blobs["meta"] == blobs["meta"]
        finally:
            attachment.close()
        assert shm.release_segment(handle.name)
        assert handle.name not in shm.active_segments()
        assert handle.name not in shm.leaked_segment_names()

    def test_names_carry_pid_and_generation(self):
        first = shm.publish_segment("gen", blobs={"x": b"1"})
        second = shm.publish_segment("gen", blobs={"x": b"1"})
        try:
            assert first.name != second.name  # generation-tagged
            assert f"{os.getpid():x}" in first.name
        finally:
            shm.release_segment(first.name)
            shm.release_segment(second.name)

    def test_refcount_delays_unlink(self):
        handle = shm.publish_segment("ref", blobs={"x": b"1"})
        assert shm.retain_segment(handle.name)
        assert shm.release_segment(handle.name)  # refs 2 -> 1
        assert handle.name in shm.active_segments()
        assert shm.release_segment(handle.name)  # refs 1 -> 0: unlink
        assert handle.name not in shm.active_segments()
        # Over-release and unknown names are tolerated no-ops.
        assert not shm.release_segment(handle.name)
        assert not shm.retain_segment(handle.name)

    def test_cleanup_all_segments_drains_everything(self):
        names = [shm.publish_segment("drain", blobs={"x": b"1"}).name
                 for _ in range(3)]
        assert shm.cleanup_all_segments() >= 3
        assert shm.active_segments() == []
        for name in names:
            assert name not in shm.leaked_segment_names()

    def test_stats_track_publish_and_unlink(self):
        before = shm.shm_stats()
        handle = shm.publish_segment("stats", blobs={"x": b"abc"})
        during = shm.shm_stats()
        assert during["published"] == before["published"] + 1
        assert during["active"] == before["active"] + 1
        assert during["bytes_published"] > before["bytes_published"]
        shm.release_segment(handle.name)
        after = shm.shm_stats()
        assert after["unlinked"] == during["unlinked"] + 1
        assert after["available"] == 1

    def test_attacher_survives_creator_unlink(self):
        # POSIX keeps the pages mapped after unlink — the driver may
        # release as soon as every consumer has attached.
        array = np.linspace(0.0, 1.0, 101)
        handle = shm.publish_segment("posix", arrays={"v": array})
        attachment = handle.attach()
        try:
            shm.release_segment(handle.name)
            assert handle.name not in shm.leaked_segment_names()
            np.testing.assert_array_equal(attachment.arrays["v"], array)
        finally:
            attachment.close()


@needs_shm
class TestCrashSafety:
    def _segment_from_subprocess(self, tail: str) -> tuple:
        script = (
            "import os, signal, sys\n"
            "from repro.search import shm\n"
            "handle = shm.publish_segment('crash', blobs={'x': b'1'})\n"
            "print(handle.name, flush=True)\n" + tail)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(SRC_DIR), env.get("PYTHONPATH", "")]))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        name = proc.stdout.split()[0]
        assert name.startswith(shm.SHM_NAME_PREFIX)
        return proc, name

    def _await_gone(self, name: str, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if name not in shm.leaked_segment_names():
                return
            time.sleep(0.1)
        pytest.fail(f"segment {name} still present after {timeout} s")

    def test_clean_exit_unlinks_via_atexit(self):
        proc, name = self._segment_from_subprocess("sys.exit(0)\n")
        assert proc.returncode == 0
        self._await_gone(name)

    def test_sigint_unwind_unlinks(self):
        proc, name = self._segment_from_subprocess(
            "raise KeyboardInterrupt\n")
        assert proc.returncode != 0
        self._await_gone(name)

    def test_sigkill_leaves_no_leak(self):
        # SIGKILL skips atexit entirely; the resource tracker (a
        # separate process) unlinks the registered segment once the
        # publisher is gone.
        proc, name = self._segment_from_subprocess(
            "os.kill(os.getpid(), signal.SIGKILL)\n")
        assert proc.returncode == -signal.SIGKILL
        self._await_gone(name)



@needs_shm
class TestCompiledShipment:
    def test_shipment_attaches_bit_exact(self, template, compiled,
                                         mappings):
        shipped = shm.ship_compiled(compiled)
        try:
            assert isinstance(shipped, shm.CompiledShipment)
            # The wire form is the handle: a few dozen bytes.
            assert len(pickle.dumps(shipped)) < 512
            clone = pickle.loads(pickle.dumps(shipped)).attach_compiled()
            for spec in mappings[:8]:
                assert clone.batch_time(spec) \
                    == compiled.batch_time(spec)  # bit-exact
        finally:
            shm.release_shipment(shipped)
        shm.release_shipment(shipped)  # idempotent

    def test_attach_compiled_segment_by_name(self, compiled, mappings):
        shipped = shm.ship_compiled(compiled)
        try:
            clone = shm.attach_compiled_segment(shipped.handle.name)
            spec = mappings[0]
            assert clone.batch_time(spec) == compiled.batch_time(spec)
        finally:
            shm.release_shipment(shipped)

    def test_fallback_returns_compiled_itself(self, compiled,
                                              monkeypatch):
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        assert shm.ship_compiled(compiled) is compiled
        shm.release_shipment(compiled)  # no-op, must not raise


@needs_shm
class TestPreboundChunkTransport:
    def _roundtrip(self, chunk):
        return pickle.loads(pickle.dumps(chunk,
                                         pickle.HIGHEST_PROTOCOL))

    def _assert_equivalent(self, reference_chunk, restored):
        ref_bounds, ref_outcomes = evaluate_prebound(
            reference_chunk, need_bounds=True)
        bounds, outcomes = evaluate_prebound(restored, need_bounds=True)
        assert bounds == ref_bounds or all(
            (a == b) or (a != a and b != b)
            for a, b in zip(bounds, ref_bounds))
        assert len(outcomes) == len(ref_outcomes)
        for got, want in zip(outcomes, ref_outcomes):
            if want is None:
                assert got is None
                continue
            assert got.result.batch_time_s \
                == want.result.batch_time_s  # bit-exact
            assert got.result.breakdown.as_dict() \
                == want.result.breakdown.as_dict()

    def test_shared_roundtrip_is_bit_exact(self, template, compiled,
                                           mappings):
        specs = mappings[:32]
        reference = bind_chunk(template, compiled, specs, GLOBAL_BATCH,
                               True)
        chunk = bind_chunk(template, compiled, specs, GLOBAL_BATCH, True)
        assert chunk.publish_shared()
        assert chunk.publish_shared()  # idempotent
        try:
            payload = pickle.dumps(chunk, pickle.HIGHEST_PROTOCOL)
            restored = pickle.loads(payload)
            assert restored.batch.__dict__.get("_shm_attachment") \
                is not None  # actually rode the segment
            self._assert_equivalent(reference, restored)
            restored.detach_shared()
            restored.detach_shared()  # idempotent
        finally:
            chunk.release_shared()
            chunk.release_shared()  # idempotent
        assert shm.active_segments() == []

    def test_pickle_fallback_is_bit_exact(self, template, compiled,
                                          mappings, monkeypatch):
        specs = mappings[:32]
        reference = bind_chunk(template, compiled, specs, GLOBAL_BATCH,
                               True)
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        chunk = bind_chunk(template, compiled, specs, GLOBAL_BATCH, True)
        assert not chunk.publish_shared()
        restored = self._roundtrip(chunk)
        assert restored.batch.__dict__.get("_shm_attachment") is None
        self._assert_equivalent(reference, restored)

    def test_valid_sentinel_roundtrip(self, template, compiled,
                                      mappings):
        chunk = bind_chunk(template, compiled, mappings[:8],
                           GLOBAL_BATCH, False)
        if len(chunk.valid) == len(chunk.specs):
            assert isinstance(chunk.__getstate__()["valid"], int)
        restored = self._roundtrip(chunk)
        assert restored.valid == chunk.valid

        partial = bind_chunk(template, compiled, mappings[:8],
                             GLOBAL_BATCH, False)
        partial.valid = partial.valid[:-1]  # no longer the identity
        assert isinstance(partial.__getstate__()["valid"], list)
        assert self._roundtrip(partial).valid == partial.valid
