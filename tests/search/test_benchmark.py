"""Smoke tests for the DSE throughput benchmark harness.

Runs the real benchmark on the tiny fixture space (fast enough for
tier-1) and checks the payload schema that ``BENCH_dse.json`` must
satisfy, including a JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.search.benchmark import (
    GATE_TOLERANCE,
    GATED_PHASES,
    HAVE_NUMPY,
    append_trajectory,
    check_bench_regression,
    gated_phases_present,
    run_dse_benchmark,
    trajectory_entry,
    validate_bench_result,
    write_bench_json,
)
from repro.transformer.config import TransformerConfig


@pytest.fixture(scope="module")
def payload():
    # Rebuilt here (rather than via the function-scoped conftest
    # fixtures) so one benchmark run serves the whole module.
    model = TransformerConfig(name="tiny", n_layers=4, hidden_size=64,
                              n_heads=4, sequence_length=32,
                              vocab_size=1000)
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    system = SystemSpec(node=node, n_nodes=4)
    return run_dse_benchmark(system=system, model=model, global_batch=64)


class TestRunDseBenchmark:
    def test_payload_validates(self, payload):
        validate_bench_result(payload)

    def test_paths_labelled(self, payload):
        assert payload["reference"]["path"] == "per_layer"
        assert payload["fast"]["path"] == "collapsed"

    def test_fast_path_exact(self, payload):
        assert payload["max_rel_error"] <= 1e-9

    def test_explore_found_a_best_mapping(self, payload):
        assert payload["explore"]["n_results"] >= 1
        assert isinstance(payload["explore"]["best_mapping"], str)

    def test_json_round_trip(self, payload, tmp_path):
        target = write_bench_json(payload, tmp_path / "BENCH_dse.json")
        reloaded = json.loads(target.read_text())
        validate_bench_result(reloaded)
        assert reloaded["n_mappings"] == payload["n_mappings"]


class TestValidateBenchResult:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_bench_result([])

    def test_rejects_missing_key(self, payload):
        broken = dict(payload)
        del broken["speedup"]
        with pytest.raises(ValueError, match="missing key 'speedup'"):
            validate_bench_result(broken)

    def test_rejects_wrong_type(self, payload):
        broken = dict(payload, n_mappings="many")
        with pytest.raises(ValueError, match="'n_mappings' must be int"):
            validate_bench_result(broken)

    def test_rejects_non_positive_timing(self, payload):
        broken = dict(payload,
                      fast=dict(payload["fast"], seconds=0.0))
        with pytest.raises(ValueError, match="timings must be positive"):
            validate_bench_result(broken)

    def test_rejects_incomplete_phase(self, payload):
        broken = dict(payload, reference={"path": "per_layer"})
        with pytest.raises(ValueError, match="missing key"):
            validate_bench_result(broken)

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json({}, tmp_path / "BENCH_dse.json")


def _with_rate(payload: dict, phase: str, rate: float) -> dict:
    return dict(payload,
                **{phase: dict(payload[phase], mappings_per_s=rate)})


class TestRegressionGate:
    def test_identical_payload_passes(self, payload):
        assert check_bench_regression(payload, payload) == []

    def test_faster_than_baseline_passes(self, payload):
        """One-sided: speedups are progress, never a failure."""
        committed = _with_rate(
            _with_rate(payload, "fast",
                       payload["fast"]["mappings_per_s"] / 10),
            "compiled", payload["compiled"]["mappings_per_s"] / 10)
        assert check_bench_regression(payload, committed) == []

    def test_regression_beyond_tolerance_fails(self, payload):
        rate = payload["compiled"]["mappings_per_s"]
        measured = _with_rate(payload, "compiled",
                              rate * (1.0 - GATE_TOLERANCE) * 0.9)
        failures = check_bench_regression(measured, payload)
        assert len(failures) == 1
        assert failures[0].startswith("compiled:")
        assert "below" in failures[0]

    def test_regression_within_tolerance_passes(self, payload):
        rate = payload["fast"]["mappings_per_s"]
        measured = _with_rate(payload, "fast",
                              rate * (1.0 - GATE_TOLERANCE) * 1.01)
        assert check_bench_regression(measured, payload) == []

    def test_both_phases_gated(self, payload):
        measured = _with_rate(
            _with_rate(payload, "fast", 1e-6), "compiled", 1e-6)
        failures = check_bench_regression(measured, payload)
        assert [f.split(":")[0] for f in failures] \
            == ["fast", "compiled"]

    @pytest.mark.parametrize("tolerance", [-0.1, 1.0, 2.0])
    def test_rejects_bad_tolerance(self, payload, tolerance):
        with pytest.raises(ValueError, match="tolerance"):
            check_bench_regression(payload, payload,
                                   tolerance=tolerance)


class TestPhaseIntersectionGating:
    """The gate compares only phases present on *both* sides, and turns
    a measured-but-uncommitted gated phase into an actionable failure
    instead of a KeyError."""

    def test_gated_phases_present_is_the_intersection(self, payload):
        committed = dict(payload)
        committed.pop("vectorized", None)
        present = gated_phases_present(payload, committed)
        assert "fast" in present and "compiled" in present
        assert "vectorized" not in present
        assert set(present) <= set(GATED_PHASES)

    def test_measured_only_phase_fails_actionably(self, payload):
        if "vectorized" not in payload:
            pytest.skip("benchmark ran without NumPy")
        committed = dict(payload)
        del committed["vectorized"]
        failures = check_bench_regression(payload, committed)
        assert len(failures) == 1
        assert failures[0].startswith("vectorized:")
        assert "regenerate the baseline" in failures[0]
        assert "bench_dse.py" in failures[0]

    def test_committed_only_phase_is_skipped(self, payload):
        """A baseline recorded with NumPy must not fail a no-NumPy
        measurement run — the phase simply is not gated."""
        measured = dict(payload)
        measured.pop("vectorized", None)
        assert check_bench_regression(measured, payload) == []

    def test_vectorized_regression_fails_when_both_present(
            self, payload):
        if "vectorized" not in payload:
            pytest.skip("benchmark ran without NumPy")
        measured = _with_rate(payload, "vectorized", 1e-6)
        failures = check_bench_regression(measured, payload)
        assert len(failures) == 1
        assert failures[0].startswith("vectorized:")
        assert "below" in failures[0]


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized phase needs NumPy")
class TestVectorizedPhase:
    def test_payload_carries_the_phase(self, payload):
        assert "vectorized" in payload
        phase = payload["vectorized"]
        assert phase["path"] == "vectorized"
        assert phase["mappings_per_s"] > 0
        assert phase["build_seconds"] > 0
        assert phase["n_candidates"] >= payload["n_mappings"]
        assert payload["vectorized_speedup_vs_compiled"] > 0

    def test_phase_validates(self, payload):
        validate_bench_result(payload)
        broken = dict(payload,
                      vectorized=dict(payload["vectorized"],
                                      seconds=0.0))
        with pytest.raises(ValueError, match="timings must be positive"):
            validate_bench_result(broken)

    def test_fixture_workload_skips_crossproduct(self, payload):
        """Only the headline (default-argument) run pays for the
        million-mapping cross-product phase."""
        assert "crossproduct" not in payload

    def test_trajectory_entry_carries_vectorized_fields(self, payload):
        entry = trajectory_entry(payload, timestamp="t")
        assert entry["vectorized_mappings_per_s"] \
            == payload["vectorized"]["mappings_per_s"]
        assert entry["vectorized_speedup_vs_compiled"] \
            == payload["vectorized_speedup_vs_compiled"]
        assert entry["crossproduct_mappings_per_s"] is None


class TestTrajectory:
    def test_entry_distils_the_payload(self, payload):
        entry = trajectory_entry(payload,
                                 timestamp="2026-08-07T00:00:00+00:00",
                                 commit="abc1234")
        assert entry["timestamp"] == "2026-08-07T00:00:00+00:00"
        assert entry["commit"] == "abc1234"
        assert entry["n_mappings"] == payload["n_mappings"]
        assert entry["fast_mappings_per_s"] \
            == payload["fast"]["mappings_per_s"]
        assert entry["compiled_mappings_per_s"] \
            == payload["compiled"]["mappings_per_s"]
        assert entry["compiled_build_seconds"] \
            == payload["compiled"]["build_seconds"]
        assert entry["max_rel_error"] == payload["max_rel_error"]

    def test_entry_carries_obs_and_serve_suites(self, payload):
        enriched = dict(payload,
                        obs={"enabled_overhead": 1.29},
                        serve={"warm": {"p50_seconds": 0.0009,
                                        "requests_per_s": 1100.0},
                               "burst": {"requests_per_s": 1600.0}})
        entry = trajectory_entry(enriched, timestamp="t")
        assert entry["obs_enabled_overhead"] == 1.29
        assert entry["serve_warm_p50_s"] == 0.0009
        assert entry["serve_warm_requests_per_s"] == 1100.0
        assert entry["serve_burst_requests_per_s"] == 1600.0

    def test_entry_without_suites_holds_none(self, payload):
        entry = trajectory_entry(payload, timestamp="t")
        assert entry["obs_enabled_overhead"] is None
        assert entry["serve_warm_p50_s"] is None
        assert entry["serve_warm_requests_per_s"] is None
        assert entry["serve_burst_requests_per_s"] is None

    def test_append_creates_then_extends(self, payload, tmp_path):
        target = tmp_path / "BENCH_trajectory.json"
        first = trajectory_entry(payload, timestamp="t0")
        append_trajectory(first, target)
        append_trajectory(trajectory_entry(payload, timestamp="t1"),
                          target)
        history = json.loads(target.read_text())
        assert [row["timestamp"] for row in history] == ["t0", "t1"]
        assert history[0] == first

    def test_append_rejects_non_list_file(self, payload, tmp_path):
        target = tmp_path / "BENCH_trajectory.json"
        target.write_text('{"not": "a list"}\n')
        with pytest.raises(ValueError, match="JSON list"):
            append_trajectory(trajectory_entry(payload, timestamp="t"),
                              target)
