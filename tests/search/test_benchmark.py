"""Smoke tests for the DSE throughput benchmark harness.

Runs the real benchmark on the tiny fixture space (fast enough for
tier-1) and checks the payload schema that ``BENCH_dse.json`` must
satisfy, including a JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.search.benchmark import (
    run_dse_benchmark,
    validate_bench_result,
    write_bench_json,
)
from repro.transformer.config import TransformerConfig


@pytest.fixture(scope="module")
def payload():
    # Rebuilt here (rather than via the function-scoped conftest
    # fixtures) so one benchmark run serves the whole module.
    model = TransformerConfig(name="tiny", n_layers=4, hidden_size=64,
                              n_heads=4, sequence_length=32,
                              vocab_size=1000)
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    system = SystemSpec(node=node, n_nodes=4)
    return run_dse_benchmark(system=system, model=model, global_batch=64)


class TestRunDseBenchmark:
    def test_payload_validates(self, payload):
        validate_bench_result(payload)

    def test_paths_labelled(self, payload):
        assert payload["reference"]["path"] == "per_layer"
        assert payload["fast"]["path"] == "collapsed"

    def test_fast_path_exact(self, payload):
        assert payload["max_rel_error"] <= 1e-9

    def test_explore_found_a_best_mapping(self, payload):
        assert payload["explore"]["n_results"] >= 1
        assert isinstance(payload["explore"]["best_mapping"], str)

    def test_json_round_trip(self, payload, tmp_path):
        target = write_bench_json(payload, tmp_path / "BENCH_dse.json")
        reloaded = json.loads(target.read_text())
        validate_bench_result(reloaded)
        assert reloaded["n_mappings"] == payload["n_mappings"]


class TestValidateBenchResult:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_bench_result([])

    def test_rejects_missing_key(self, payload):
        broken = dict(payload)
        del broken["speedup"]
        with pytest.raises(ValueError, match="missing key 'speedup'"):
            validate_bench_result(broken)

    def test_rejects_wrong_type(self, payload):
        broken = dict(payload, n_mappings="many")
        with pytest.raises(ValueError, match="'n_mappings' must be int"):
            validate_bench_result(broken)

    def test_rejects_non_positive_timing(self, payload):
        broken = dict(payload,
                      fast=dict(payload["fast"], seconds=0.0))
        with pytest.raises(ValueError, match="timings must be positive"):
            validate_bench_result(broken)

    def test_rejects_incomplete_phase(self, payload):
        broken = dict(payload, reference={"path": "per_layer"})
        with pytest.raises(ValueError, match="missing key"):
            validate_bench_result(broken)

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json({}, tmp_path / "BENCH_dse.json")
