"""Unit tests for microbatch-count tuning."""

import pytest

from repro.core.model import AMPeD
from repro.errors import MappingError, MemoryCapacityError
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.search.tuning import microbatch_candidates, optimize_microbatches


@pytest.fixture
def pp_amped(tiny_model, small_system):
    spec = ParallelismSpec(pp_intra=4, dp_inter=4)
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=spec, efficiency=CASE_STUDY_EFFICIENCY)


class TestCandidates:
    def test_powers_of_two_from_pp(self, pp_amped):
        candidates = microbatch_candidates(pp_amped, 256)
        assert candidates == [4, 8, 16, 32, 64]

    def test_never_empty(self, pp_amped):
        assert microbatch_candidates(pp_amped, 4) == [4]


class TestOptimize:
    def test_returns_feasible_minimum(self, pp_amped):
        tuned, best_time = optimize_microbatches(pp_amped, 256)
        for n_ub in microbatch_candidates(pp_amped, 256):
            other = pp_amped.with_parallelism(
                pp_amped.parallelism.with_microbatches(n_ub))
            assert best_time <= other.estimate_batch(256).total + 1e-12

    def test_beats_or_matches_default(self, pp_amped):
        default_time = pp_amped.estimate_batch(256).total
        __, best_time = optimize_microbatches(pp_amped, 256)
        assert best_time <= default_time + 1e-12

    def test_explicit_candidates(self, pp_amped):
        tuned, _ = optimize_microbatches(pp_amped, 256,
                                         candidates=[8])
        assert tuned.parallelism.microbatches == 8

    def test_infeasible_candidates_skipped(self, pp_amped):
        # 512 microbatches over batch 256 dices sequences -> skipped
        tuned, _ = optimize_microbatches(pp_amped, 256,
                                         candidates=[512, 8])
        assert tuned.parallelism.microbatches == 8

    def test_all_infeasible_raises(self, pp_amped):
        with pytest.raises(MappingError):
            optimize_microbatches(pp_amped, 256, candidates=[100000])


class ExplodingAMPeD(AMPeD):
    """Every estimate blows the memory budget (for error-path tests)."""

    def estimate_batch(self, global_batch):
        raise MemoryCapacityError("footprint over budget",
                                  required_bytes=2.0e9,
                                  available_bytes=1.0e9)


class TestErrorReporting:
    def test_memory_error_type_and_attrs_preserved(self, pp_amped):
        exploding = ExplodingAMPeD(
            model=pp_amped.model, system=pp_amped.system,
            parallelism=pp_amped.parallelism,
            efficiency=CASE_STUDY_EFFICIENCY)
        with pytest.raises(MemoryCapacityError) as excinfo:
            optimize_microbatches(exploding, 256)
        assert "N_ub=64" in str(excinfo.value)
        assert excinfo.value.required_bytes == 2.0e9
        assert excinfo.value.available_bytes == 1.0e9

    def test_mapping_error_names_failing_candidate(self, pp_amped):
        with pytest.raises(MappingError) as excinfo:
            optimize_microbatches(pp_amped, 256, candidates=[100000])
        assert "100000" in str(excinfo.value)
