"""Unit tests for the sweep compiler (:mod:`repro.search.compiler`).

The zoo-wide equivalence lives in
``tests/properties/test_compiled_properties.py``; here we pin the
compiler's own contracts: bit-exact agreement with the collapsed path,
microbatch-tuning parity, the admissible (and strictly tighter)
compute + communication lower bound, the process-wide table cache, and
the pool warm-up path.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError, MappingError
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.spec import ParallelismSpec
from repro.search.compiler import (
    CompiledSweep,
    clear_compiled_cache,
    compile_sweep,
    compiled_cache_stats,
    install_compiled,
    warm_worker,
)
from repro.search.dse import compute_lower_bound
from repro.search.tuning import (
    candidate_microbatch_counts,
    optimize_microbatches,
)
from repro.transformer.zoo import MODELS

GLOBAL_BATCH = 256


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


@pytest.fixture(scope="module")
def template(system) -> AMPeD:
    return AMPeD.for_mapping(MODELS["megatron-145b"], system,
                             dp=system.n_accelerators)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compiled_cache()
    yield
    clear_compiled_cache()


class TestBitExactness:
    def test_batch_time_bit_identical_to_collapsed(self, template,
                                                   system):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        collapsed = replace(template, evaluation_path="collapsed")
        for spec in enumerate_mappings(system, template.model):
            candidate = replace(collapsed, parallelism=spec)
            try:
                expected = candidate.estimate_batch(GLOBAL_BATCH).total
            except MappingError as error:
                with pytest.raises(MappingError, match="microbatch"):
                    compiled.batch_time(spec)
                del error
                continue
            assert compiled.batch_time(spec) == expected, spec.describe()

    def test_breakdown_components_bit_identical(self, template):
        spec = ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2)
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        collapsed = replace(template, evaluation_path="collapsed",
                            parallelism=spec)
        assert compiled.breakdown(spec).as_dict() \
            == collapsed.estimate_batch(GLOBAL_BATCH).as_dict()

    def test_infeasible_microbatch_raises_identical_message(
            self, template):
        spec = ParallelismSpec(dp_intra=4, dp_inter=4,
                               n_microbatches=GLOBAL_BATCH)
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        reference = replace(template, evaluation_path="collapsed",
                            parallelism=spec)
        with pytest.raises(MappingError) as reference_error:
            reference.estimate_batch(GLOBAL_BATCH)
        with pytest.raises(MappingError) as compiled_error:
            compiled.batch_time(spec)
        assert str(compiled_error.value) == str(reference_error.value)

    def test_rejects_bad_bubble_model_at_build(self, template):
        broken = replace(template, bubble_model="quadratic")
        with pytest.raises(ConfigurationError,
                           match="bubble model must be one of"):
            CompiledSweep(broken, GLOBAL_BATCH)


class TestBestMicrobatch:
    def test_matches_optimize_microbatches(self, template, system):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        for spec in enumerate_mappings(system, template.model):
            reference = replace(template, evaluation_path="collapsed",
                                parallelism=spec)
            try:
                tuned_amped, expected = optimize_microbatches(
                    reference, GLOBAL_BATCH)
            except MappingError:
                with pytest.raises(MappingError):
                    compiled.best_microbatch(spec)
                continue
            tuned_spec, batch_time = compiled.best_microbatch(spec)
            assert tuned_spec == tuned_amped.parallelism
            assert batch_time == expected

    def test_failure_names_the_failing_n_ub(self, template):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        spec = ParallelismSpec(dp_intra=4, dp_inter=4)
        with pytest.raises(MappingError, match="failing N_ub"):
            compiled.best_microbatch(spec, candidates=[GLOBAL_BATCH * 4])


class TestLowerBound:
    def test_admissible_for_every_feasible_candidate(self, template,
                                                     system):
        """bound <= true tuned batch time, mapping by mapping."""
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        checked = 0
        for spec in enumerate_mappings(system, template.model):
            try:
                _, best_time = compiled.best_microbatch(spec)
            except MappingError:
                continue
            assert compiled.lower_bound(spec) <= best_time, \
                spec.describe()
            checked += 1
        assert checked > 0

    def test_strictly_tighter_than_compute_only(self, template,
                                                system):
        """Charging real communication terms beats the compute-only
        bound wherever the mapping communicates at all."""
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        tighter = 0
        for spec in enumerate_mappings(system, template.model):
            candidate = replace(template, parallelism=spec)
            try:
                compute_only = compute_lower_bound(candidate,
                                                   GLOBAL_BATCH)
                combined = compiled.lower_bound(spec)
            except MappingError:
                continue
            assert combined >= compute_only, spec.describe()
            if combined > compute_only:
                tighter += 1
        assert tighter > 0

    def test_raises_when_no_microbatch_fits(self, template):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        spec = ParallelismSpec(dp_intra=4, dp_inter=4,
                               n_microbatches=GLOBAL_BATCH)
        with pytest.raises(MappingError,
                           match="below one sequence"):
            compiled.lower_bound(spec, tune_microbatches=False)


class TestTables:
    def test_lookup_counters_accumulate(self, template):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        spec = ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2)
        compiled.batch_time(spec)
        first = compiled.stats()
        assert first["lookups"] > 0
        assert first["entries"] > 0
        compiled.batch_time(spec)
        second = compiled.stats()
        assert second["lookups"] == 2 * first["lookups"]
        # The second evaluation reuses every table entry.
        assert second["misses"] == first["misses"]
        assert second["entries"] == first["entries"]

    def test_prefill_covers_the_sweep(self, template, system):
        compiled = CompiledSweep(template, GLOBAL_BATCH)
        mappings = enumerate_mappings(system, template.model)
        combines = compiled.prefill(mappings)
        assert combines > 0
        misses_after_prefill = compiled.stats()["misses"]
        for spec in mappings:
            for n_ub in candidate_microbatch_counts(spec, GLOBAL_BATCH):
                try:
                    compiled.batch_time(spec.with_microbatches(n_ub))
                except MappingError:
                    continue
        assert compiled.stats()["misses"] == misses_after_prefill


class TestProcessCache:
    def test_compile_sweep_caches_by_identity(self, template):
        compiled = replace(template, evaluation_path="compiled")
        first = compile_sweep(compiled, GLOBAL_BATCH)
        assert compile_sweep(compiled, GLOBAL_BATCH) is first
        # The parallelism field is not part of the sweep identity: the
        # whole point is one table set across every candidate mapping.
        moved = replace(compiled, parallelism=ParallelismSpec(
            tp_intra=2, dp_intra=2, dp_inter=4))
        assert compile_sweep(moved, GLOBAL_BATCH) is first
        stats = compiled_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 2
        assert compile_sweep(compiled, GLOBAL_BATCH + 1) is not first

    def test_evaluation_path_not_part_of_identity(self, template):
        first = compile_sweep(
            replace(template, evaluation_path="collapsed"), GLOBAL_BATCH)
        second = compile_sweep(
            replace(template, evaluation_path="compiled"), GLOBAL_BATCH)
        assert first is second

    def test_install_compiled_round_trips_through_pickle(self,
                                                         template):
        original = compile_sweep(template, GLOBAL_BATCH)
        original.batch_time(
            ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2))
        shipped = pickle.loads(pickle.dumps(original))
        clear_compiled_cache()
        install_compiled(shipped)
        assert compile_sweep(template, GLOBAL_BATCH) is shipped
        assert compiled_cache_stats()["installed"] == 1
        # The shipped instance carries the parent's filled tables.
        assert shipped.stats()["entries"] \
            == original.stats()["entries"]

    def test_warm_worker_installs_tables(self, template):
        parent = compile_sweep(template, GLOBAL_BATCH)
        clear_compiled_cache()
        warm_worker(template, GLOBAL_BATCH, compiled=parent)
        assert compile_sweep(template, GLOBAL_BATCH) is parent

    def test_warm_worker_compiles_when_nothing_shipped(self, template):
        warm_worker(replace(template, evaluation_path="compiled"),
                    GLOBAL_BATCH)
        assert compiled_cache_stats()["builds"] == 1


class TestSeeding:
    """Incremental sweep deltas: fresh builds adopt cached tables."""

    @staticmethod
    def _fill(compiled, system):
        for spec in enumerate_mappings(system):
            try:
                compiled.best_microbatch(spec)
            except MappingError:
                continue

    @staticmethod
    def _assert_bit_exact(seeded, template, system):
        # A cold direct build never goes through the cache, so it is
        # the unseeded reference the seeded build must match bit for
        # bit on every mapping of the new sweep.
        cold = CompiledSweep(template, GLOBAL_BATCH)
        for spec in enumerate_mappings(system):
            try:
                reference = cold.best_microbatch(spec)
            except MappingError:
                with pytest.raises(MappingError):
                    seeded.best_microbatch(spec)
                continue
            tuned, batch_time = seeded.best_microbatch(spec)
            assert tuned == reference[0]
            assert batch_time == reference[1]

    def test_system_delta_seeds_compute_tables(self, template, system):
        donor = compile_sweep(template, GLOBAL_BATCH)
        self._fill(donor, system)
        wider = SystemSpec(node=system.node, n_nodes=8)
        moved = AMPeD.for_mapping(MODELS["megatron-145b"], wider,
                                  dp=wider.n_accelerators)
        seeded = compile_sweep(moved, GLOBAL_BATCH)
        # Same model + batch: the per-class compute tables carry over.
        assert sum(len(tables[4]) for tables in seeded.classes) > 0
        stats = compiled_cache_stats()
        assert stats["seeded_builds"] == 1
        assert stats["seeded_entries"] > 0
        self._assert_bit_exact(seeded, moved, wider)

    def test_model_delta_seeds_efficiency_tables(self, template, system):
        donor = compile_sweep(template, GLOBAL_BATCH)
        self._fill(donor, system)
        other = AMPeD.for_mapping(MODELS["mingpt-85m"], system,
                                  dp=system.n_accelerators)
        seeded = compile_sweep(other, GLOBAL_BATCH)
        # Same batch + efficiency model: eff entries carry over even
        # though the model changed; compute tables must not.
        assert len(seeded._eff) > 0
        assert sum(len(tables[4]) for tables in seeded.classes) == 0
        assert compiled_cache_stats()["seeded_entries"] > 0
        self._assert_bit_exact(seeded, other, system)

    def test_seed_from_counts_and_never_overwrites(self, template):
        donor = CompiledSweep(template, GLOBAL_BATCH)
        donor.batch_time(
            ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2))
        fresh = CompiledSweep(template, GLOBAL_BATCH)
        expected = (len(donor._eff) + len(donor._bubble_prefactor)
                    + sum(len(tables[4]) for tables in donor.classes))
        assert fresh.seed_from(donor) == expected
        # Everything already present: a second pass adopts nothing.
        assert fresh.seed_from(donor) == 0

    def test_different_batch_skips_value_tables(self, template):
        donor = CompiledSweep(template, GLOBAL_BATCH)
        donor.batch_time(
            ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2))
        fresh = CompiledSweep(template, GLOBAL_BATCH * 2)
        adopted = fresh.seed_from(donor)
        # Only the batch-independent bubble prefactors carry over.
        assert adopted == len(donor._bubble_prefactor)
        assert not fresh._eff
