"""Unit tests for the conclusion-encoding heuristics."""

from repro.core.model import AMPeD
from repro.hardware.catalog import lowend_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.search.dse import best_mapping
from repro.search.heuristics import recommend_mapping
from repro.transformer.zoo import MEGATRON_145B


class TestRecommendation:
    def test_highend_gets_tp_intra_dp_inter(self, cs1_system):
        rec = recommend_mapping(MEGATRON_145B, cs1_system)
        assert rec.parallelism.tp_intra == 8
        assert rec.parallelism.dp_inter == 128
        assert not rec.parallelism.uses_inter_tp

    def test_lowend_single_nic_gets_pp(self):
        system = lowend_a100_cluster(1)
        rec = recommend_mapping(MEGATRON_145B, system)
        assert rec.parallelism.pp_inter > 1

    def test_mapping_tiles_system(self, cs1_system):
        rec = recommend_mapping(MEGATRON_145B, cs1_system)
        rec.parallelism.validate_against(cs1_system)

    def test_respects_head_divisibility(self, cs1_system, tiny_model):
        rec = recommend_mapping(tiny_model, cs1_system)
        assert tiny_model.n_heads % rec.parallelism.tp == 0

    def test_rationale_is_explanatory(self, cs1_system):
        rec = recommend_mapping(MEGATRON_145B, cs1_system)
        text = rec.explain()
        assert text.startswith("-")
        assert "TP" in text

    def test_recommendation_close_to_exhaustive_optimum(
            self, small_system):
        """The heuristic should land within 1.5x of the true best for a
        compute-heavy model (its natural domain)."""
        from repro.transformer.config import TransformerConfig
        medium = TransformerConfig(
            name="medium", n_layers=8, hidden_size=2048, n_heads=16,
            sequence_length=512, vocab_size=32000)
        rec = recommend_mapping(medium, small_system)
        amped = AMPeD(model=medium, system=small_system,
                      parallelism=rec.parallelism,
                      efficiency=CASE_STUDY_EFFICIENCY)
        recommended_time = amped.estimate_batch(512).total
        optimum = best_mapping(amped, 512)
        assert recommended_time <= 1.5 * optimum.batch_time_s
