"""Unit tests for the calibration workflows."""

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.fitting.calibration import (
    calibrate_efficiency_to_batch_time,
    calibrate_efficiency_to_tflops,
)
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import spec_from_totals
from repro.transformer.zoo import MEGATRON_145B


@pytest.fixture(scope="module")
def amped():
    system = megatron_a100_cluster(n_nodes=16)
    return AMPeD(model=MEGATRON_145B, system=system,
                 parallelism=spec_from_totals(system, tp=8, dp=16),
                 efficiency=MicrobatchEfficiency(a=0.7, b=8.0))


class TestTflopsCalibration:
    def test_hits_the_anchor(self, amped):
        result = calibrate_efficiency_to_tflops(amped, 2048, 120.0)
        assert result.achieved_value == pytest.approx(120.0, abs=0.01)
        assert result.anchor_error < 1e-3

    def test_preserves_curve_shape(self, amped):
        result = calibrate_efficiency_to_tflops(amped, 2048, 120.0)
        assert result.efficiency.b == amped.efficiency.b
        assert result.efficiency.floor == amped.efficiency.floor

    def test_calibrated_model_transfers(self, amped):
        """A calibrated model predicts other batch sizes consistently:
        higher batch -> no lower throughput (saturating efficiency)."""
        result = calibrate_efficiency_to_tflops(amped, 2048, 120.0)
        small = result.amped.achieved_tflops_per_gpu(1024)
        large = result.amped.achieved_tflops_per_gpu(4096)
        assert large >= small * 0.99

    def test_rejects_non_positive_target(self, amped):
        with pytest.raises(ConfigurationError):
            calibrate_efficiency_to_tflops(amped, 2048, 0.0)

    def test_unreachable_target_raises(self, amped):
        with pytest.raises(ConfigurationError):
            calibrate_efficiency_to_tflops(amped, 2048, 5000.0)


class TestBatchTimeCalibration:
    def test_hits_the_anchor(self, amped):
        baseline = amped.estimate_batch(2048).total
        target = baseline * 1.3
        result = calibrate_efficiency_to_batch_time(amped, 2048, target)
        assert result.achieved_value == pytest.approx(target, rel=1e-4)

    def test_slower_target_means_lower_a(self, amped):
        baseline = amped.estimate_batch(2048).total
        result = calibrate_efficiency_to_batch_time(
            amped, 2048, baseline * 1.5)
        assert result.efficiency.a < amped.efficiency.a

    def test_rejects_non_positive_target(self, amped):
        with pytest.raises(ConfigurationError):
            calibrate_efficiency_to_batch_time(amped, 2048, -1.0)
