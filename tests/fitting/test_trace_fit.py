"""Multi-point trace calibration: recovery, identifiability, backends.

The central property is *self-calibration*: observations synthesized
from known coefficients must be recovered exactly (noiseless) or
within the reported confidence bounds (noisy) — on both the NumPy and
the pure-python solver backends.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

import pytest

import repro.fitting.trace_fit as trace_fit
from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.fitting.trace_fit import (
    CONDITION_WARNING_THRESHOLD,
    FIT_PARAMETERS,
    FittedCoefficients,
    fit_from_observations,
)
from repro.obs.ingest import EstimateObservation
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.parallelism.spec import ParallelismSpec

TRUTH = FittedCoefficients(
    efficiency_a=0.92, efficiency_b=28.0, flops_fraction=0.83,
    link_latency_scale=1.7, link_bandwidth_scale=0.64)

#: Mappings spanning microbatch regimes and both link tiers, so every
#: coefficient leaves a distinct fingerprint on some observation.
CONFIGS = (
    (ParallelismSpec(tp_intra=4, dp_inter=4), 512),
    (ParallelismSpec(tp_intra=4, dp_inter=4, n_microbatches=8), 4096),
    (ParallelismSpec(tp_intra=2, pp_intra=2, dp_inter=4,
                     n_microbatches=4), 2048),
    (ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2,
                     n_microbatches=4), 1024),
    (ParallelismSpec(tp_intra=2, dp_intra=2, dp_inter=4,
                     n_microbatches=2), 256),
    (ParallelismSpec(pp_intra=4, dp_inter=4, n_microbatches=8), 64),
)


@pytest.fixture
def base(tiny_model, small_system) -> AMPeD:
    """The uncalibrated starting scenario (identity coefficients)."""
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                 efficiency=MicrobatchEfficiency(a=1.0, b=16.0,
                                                 floor=0.05))


def synthesize(base: AMPeD, truth: FittedCoefficients,
               configs=CONFIGS, noise=0.0):
    """Observations measured by an imaginary machine obeying ``truth``.

    ``noise`` is the relative sigma of seeded gaussian perturbations —
    iid (matching the fitter's covariance model) yet reproducible.
    """
    rng = random.Random(20260809)
    observations = []
    for index, (spec, global_batch) in enumerate(configs):
        scenario = truth.apply(replace(base, parallelism=spec,
                                       validate=False))
        terms = {}
        for term, value in scenario.estimate_batch(global_batch) \
                .as_dict().items():
            wiggle = noise * rng.gauss(0.0, 1.0) if noise else 0.0
            terms[term] = value * (1.0 + wiggle)
        observations.append(EstimateObservation(
            terms=terms, model=base.model.name,
            global_batch=global_batch, mapping=spec,
            total_s=sum(terms.values()),
            source=f"synthetic#{index}"))
    return observations


class TestFittedCoefficients:
    def test_defaults_are_identity(self, base):
        identity = FittedCoefficients(
            efficiency_a=base.efficiency.a,
            efficiency_b=base.efficiency.b)
        applied = identity.apply(base)
        assert applied.system is base.system
        assert applied.efficiency.a == base.efficiency.a

    def test_as_dict_follows_report_order(self):
        assert tuple(TRUTH.as_dict()) == FIT_PARAMETERS

    def test_rejects_non_positive_values(self):
        with pytest.raises(ConfigurationError, match="flops_fraction "
                                                     "must be positive"):
            FittedCoefficients(flops_fraction=0.0)

    def test_apply_derates_clock_and_links(self, base):
        applied = TRUTH.apply(base)
        accelerator = base.system.accelerator
        assert applied.system.accelerator.frequency_hz \
            == pytest.approx(accelerator.frequency_hz * 0.83)
        assert applied.system.node.intra_link.latency_s \
            == pytest.approx(base.system.node.intra_link.latency_s
                             * 1.7)
        assert applied.system.node.inter_link.bandwidth_bits_per_s \
            == pytest.approx(
                base.system.node.inter_link.bandwidth_bits_per_s
                * 0.64)
        assert applied.efficiency.a == 0.92
        assert applied.efficiency.floor == base.efficiency.floor
        assert applied.efficiency.ceiling == base.efficiency.ceiling


class TestNoiselessRecovery:
    def test_recovers_every_coefficient(self, base):
        fit = fit_from_observations(base, synthesize(base, TRUTH))
        assert fit.converged
        assert fit.warnings == []
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.condition_number < CONDITION_WARNING_THRESHOLD
        for name in FIT_PARAMETERS:
            recovered = getattr(fit.coefficients, name)
            truth = getattr(TRUTH, name)
            assert abs(recovered - truth) / truth < 1e-6, name

    def test_residuals_are_flat(self, base):
        fit = fit_from_observations(base, synthesize(base, TRUTH))
        assert fit.residuals
        for residual in fit.residuals:
            if residual.measured_s > 0:
                assert abs(residual.relative_error) < 1e-9

    def test_pure_python_backend_recovers_too(self, base,
                                              monkeypatch):
        monkeypatch.setattr(trace_fit, "HAVE_NUMPY", False)
        fit = fit_from_observations(base, synthesize(base, TRUTH))
        assert fit.backend == "python"
        assert fit.converged
        for name in FIT_PARAMETERS:
            recovered = getattr(fit.coefficients, name)
            truth = getattr(TRUTH, name)
            assert abs(recovered - truth) / truth < 1e-6, name


class TestNoisyRecovery:
    def test_truth_lies_within_confidence_bounds(self, base):
        fit = fit_from_observations(
            base, synthesize(base, TRUTH, noise=0.005))
        assert fit.converged
        for name in FIT_PARAMETERS:
            low, high = fit.confidence_interval(name, sigmas=3.0)
            assert low <= getattr(TRUTH, name) <= high, name

    def test_stderr_is_finite_and_positive(self, base):
        fit = fit_from_observations(
            base, synthesize(base, TRUTH, noise=0.005))
        for name in FIT_PARAMETERS:
            assert 0 < fit.stderr[name] < math.inf


class TestSubsetFit:
    def test_unfitted_parameters_stay_at_base(self, base):
        observations = synthesize(
            base, FittedCoefficients(
                efficiency_a=1.0, efficiency_b=16.0,
                flops_fraction=0.7))
        fit = fit_from_observations(base, observations,
                                    parameters=("flops_fraction",))
        assert fit.fitted_parameters == ("flops_fraction",)
        assert fit.coefficients.flops_fraction \
            == pytest.approx(0.7, rel=1e-6)
        assert fit.coefficients.efficiency_a == base.efficiency.a
        assert fit.coefficients.link_latency_scale == 1.0
        assert set(fit.stderr) == {"flops_fraction"}


class TestIdentifiability:
    def test_serial_mapping_cannot_see_the_links(self, base):
        """No communication → zero Jacobian columns for link scales."""
        serial = replace(base, parallelism=ParallelismSpec(),
                         validate=False)
        observations = synthesize(
            serial, TRUTH, configs=((ParallelismSpec(), 64),
                                    (ParallelismSpec(), 256)))
        fit = fit_from_observations(serial, observations)
        flagged = " ".join(fit.warnings)
        assert "link_latency_scale" in flagged
        assert "not identifiable" in flagged
        assert fit.condition_number > CONDITION_WARNING_THRESHOLD \
            or math.isinf(fit.condition_number)

    def test_single_observation_reports_ill_conditioning(self, base):
        observations = synthesize(base, TRUTH,
                                  configs=(CONFIGS[0],))
        fit = fit_from_observations(base, observations)
        assert any("ill-conditioned" in warning
                   for warning in fit.warnings)


class TestValidation:
    def test_unknown_parameter(self, base):
        with pytest.raises(ConfigurationError, match="unknown fit "
                                                     "parameter"):
            fit_from_observations(base, synthesize(base, TRUTH),
                                  parameters=("warp_factor",))

    def test_empty_parameter_list(self, base):
        with pytest.raises(ConfigurationError, match="no parameters"):
            fit_from_observations(base, synthesize(base, TRUTH),
                                  parameters=())

    def test_no_aligned_terms(self, base):
        stranger = EstimateObservation(terms={"wall_clock": 1.0},
                                       global_batch=64)
        with pytest.raises(ConfigurationError, match="no aligned"):
            fit_from_observations(base, [stranger])

    def test_observation_without_batch_size(self, base):
        broken = EstimateObservation(terms={"compute_forward": 1.0},
                                     global_batch=0, source="x#0")
        with pytest.raises(ConfigurationError, match="no positive "
                                                     "global_batch"):
            fit_from_observations(base, [broken])

    def test_confidence_interval_with_unknown_stderr(self, base):
        fit = fit_from_observations(base, synthesize(base, TRUTH))
        fit.stderr["efficiency_a"] = math.inf
        assert fit.confidence_interval("efficiency_a") \
            == (0.0, math.inf)
