"""Unit tests for overlap-ratio estimation."""

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.fitting.overlap_fit import (
    bisect_scalar,
    fit_overlap_to_target,
    interleaving_overlap_model,
    measure_overlap_ratio,
)
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.transformer.zoo import MEGATRON_145B


class TestClosedForm:
    def test_one_chunk_is_naive(self):
        assert interleaving_overlap_model(1) == 1.0

    def test_inverse_in_chunks(self):
        assert interleaving_overlap_model(4) == 0.25

    def test_rejects_zero_chunks(self):
        with pytest.raises(ConfigurationError):
            interleaving_overlap_model(0)


class TestSimulatedRatio:
    def test_naive_schedule_is_one(self):
        assert measure_overlap_ratio(4, 16, 1) == pytest.approx(1.0)

    def test_two_chunks_near_half(self):
        ratio = measure_overlap_ratio(8, 32, 2)
        assert 0.4 < ratio < 0.7

    def test_more_chunks_more_overlap(self):
        two = measure_overlap_ratio(8, 32, 2)
        four = measure_overlap_ratio(8, 32, 4)
        assert four < two

    def test_tracks_closed_form(self):
        for chunks in (2, 4):
            measured = measure_overlap_ratio(8, 32, chunks)
            assert measured == pytest.approx(
                interleaving_overlap_model(chunks), abs=0.15)

    def test_needs_a_pipeline(self):
        with pytest.raises(ConfigurationError):
            measure_overlap_ratio(1, 16, 2)


class TestFitToTarget:
    @pytest.fixture(scope="class")
    def amped(self):
        system = megatron_a100_cluster(n_nodes=16)
        spec = spec_from_totals(system, tp=8, pp=16,
                                n_microbatches=64)
        return AMPeD(model=MEGATRON_145B, system=system,
                     parallelism=spec,
                     efficiency=CASE_STUDY_EFFICIENCY)

    def test_round_trips_a_known_ratio(self, amped):
        import dataclasses
        known = dataclasses.replace(
            amped, parallelism=amped.parallelism.with_overlap(0.4))
        target = known.achieved_tflops_per_gpu(2048)
        fitted = fit_overlap_to_target(amped, 2048, target)
        assert fitted == pytest.approx(0.4, abs=0.02)

    def test_unreachable_target_raises(self, amped):
        with pytest.raises(ConfigurationError):
            fit_overlap_to_target(amped, 2048, 10000.0)


class TestBisection:
    def test_increasing_function(self):
        root = bisect_scalar(lambda x: x * x, 9.0, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-4)

    def test_decreasing_function(self):
        root = bisect_scalar(lambda x: 10.0 - x, 4.0, 0.0, 10.0)
        assert root == pytest.approx(6.0, abs=1e-4)

    def test_out_of_bracket_raises(self):
        with pytest.raises(ConfigurationError):
            bisect_scalar(lambda x: x, 20.0, 0.0, 10.0)

    def test_constant_function_raises(self):
        with pytest.raises(ConfigurationError):
            bisect_scalar(lambda x: 1.0, 1.0, 0.0, 10.0)
