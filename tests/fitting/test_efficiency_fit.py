"""Unit tests for the efficiency-curve fit."""

import pytest

from repro.errors import ConfigurationError
from repro.fitting.efficiency_fit import fit_efficiency
from repro.parallelism.microbatch import MicrobatchEfficiency


def curve_points(a, b, ubs):
    reference = MicrobatchEfficiency(a=a, b=b)
    return [(ub, reference(ub)) for ub in ubs]


class TestExactRecovery:
    @pytest.mark.parametrize("a,b", [(0.8, 10.0), (0.5, 2.0),
                                     (0.95, 50.0)])
    def test_recovers_noise_free_parameters(self, a, b):
        fit = fit_efficiency(curve_points(a, b, [1, 4, 16, 64, 256]))
        assert fit.a == pytest.approx(a, rel=1e-9)
        assert fit.b == pytest.approx(b, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_two_points_match_from_points(self):
        fit = fit_efficiency([(16, 0.30), (128, 0.80)])
        closed = MicrobatchEfficiency.from_points((16, 0.30),
                                                  (128, 0.80))
        assert fit.a == pytest.approx(closed.a, rel=1e-9)
        assert fit.b == pytest.approx(closed.b, rel=1e-6)


class TestNoisyData:
    def test_noisy_fit_is_close(self):
        points = curve_points(0.8, 12.0, [2, 8, 32, 128])
        noisy = [(ub, eff * (1.03 if index % 2 else 0.97))
                 for index, (ub, eff) in enumerate(points)]
        fit = fit_efficiency(noisy)
        assert fit.a == pytest.approx(0.8, rel=0.15)
        assert fit.b == pytest.approx(12.0, rel=0.35)
        assert fit.r_squared > 0.95

    def test_residuals_align_with_rmse(self):
        points = curve_points(0.7, 8.0, [1, 8, 64])
        fit = fit_efficiency(points)
        residuals = fit.residuals()
        assert len(residuals) == 3
        assert (sum(r * r for r in residuals) / 3) ** 0.5 \
            == pytest.approx(fit.rmse)


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_efficiency([(4, 0.5)])

    def test_needs_distinct_ubs(self):
        with pytest.raises(ConfigurationError):
            fit_efficiency([(4, 0.5), (4, 0.6)])

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            fit_efficiency([(4, 0.5), (8, 1.2)])

    def test_rejects_decreasing_curve(self):
        with pytest.raises(ConfigurationError):
            fit_efficiency([(4, 0.9), (16, 0.5), (64, 0.2)])

    def test_clamps_forwarded(self):
        fit = fit_efficiency(curve_points(0.8, 10.0, [2, 8, 32]),
                             floor=0.25)
        assert fit.efficiency(1e-3) == 0.25
