"""Unit tests for SystemSpec."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.catalog import A100, megatron_a100_cluster


class TestAggregates:
    def test_total_accelerators(self, cs1_system):
        assert cs1_system.n_accelerators == 1024

    def test_peak_system_flops(self, cs1_system):
        assert cs1_system.peak_system_flops_per_s \
            == 1024 * A100.peak_mac_flops_per_s

    def test_accelerator_shorthand(self, cs1_system):
        assert cs1_system.accelerator is A100

    def test_describe_mentions_counts(self, cs1_system):
        text = cs1_system.describe()
        assert "128 nodes" in text and "1024 total" in text

    def test_rejects_zero_nodes(self, cs1_system):
        with pytest.raises(ConfigurationError):
            cs1_system.with_n_nodes(0)


class TestRepartitioning:
    def test_preserves_total(self, cs1_system):
        for node_size in (1, 2, 4, 8):
            regrouped = cs1_system.repartitioned(node_size)
            assert regrouped.n_accelerators == 1024
            assert regrouped.node.n_accelerators == node_size

    def test_sets_nics(self, cs1_system):
        regrouped = cs1_system.repartitioned(4, n_nics=4)
        assert regrouped.node.n_nics == 4

    def test_keeps_nics_when_unspecified(self, cs1_system):
        assert cs1_system.repartitioned(4).node.n_nics \
            == cs1_system.node.n_nics

    def test_rejects_non_dividing_size(self, cs1_system):
        with pytest.raises(ConfigurationError):
            cs1_system.repartitioned(3)

    def test_rejects_zero_size(self, cs1_system):
        with pytest.raises(ConfigurationError):
            cs1_system.repartitioned(0)

    def test_bigger_nodes(self):
        system = megatron_a100_cluster(n_nodes=4)
        grown = system.repartitioned(16)
        assert grown.n_nodes == 2
        assert grown.node.n_accelerators == 16
