"""Unit tests for NodeSpec bandwidth aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_EDR, IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec


def make(n_accelerators=8, n_nics=8, inter=IB_HDR) -> NodeSpec:
    return NodeSpec(accelerator=A100, n_accelerators=n_accelerators,
                    intra_link=NVLINK3, inter_link=inter, n_nics=n_nics)


class TestBandwidthShares:
    def test_aggregate_is_nic_sum(self):
        assert make(n_nics=8).aggregate_inter_bandwidth_bits_per_s \
            == 8 * IB_HDR.bandwidth_bits_per_s

    def test_one_nic_per_accelerator_gives_full_share(self):
        node = make(n_accelerators=8, n_nics=8)
        assert node.inter_bandwidth_per_accelerator_bits_per_s \
            == IB_HDR.bandwidth_bits_per_s

    def test_shared_nic_divides_bandwidth(self):
        node = make(n_accelerators=8, n_nics=1)
        assert node.inter_bandwidth_per_accelerator_bits_per_s \
            == IB_HDR.bandwidth_bits_per_s / 8

    def test_effective_link_keeps_latency(self):
        node = make(n_nics=2)
        assert node.effective_inter_link.latency_s == IB_HDR.latency_s

    def test_case_study2_shapes(self):
        """1 accelerator + 1 EDR NIC per node: the full NIC per GPU."""
        node = make(n_accelerators=1, n_nics=1, inter=IB_EDR)
        assert node.inter_bandwidth_per_accelerator_bits_per_s == 1e11


class TestValidationAndCopies:
    def test_rejects_zero_accelerators(self):
        with pytest.raises(ConfigurationError):
            make(n_accelerators=0)

    def test_rejects_zero_nics(self):
        with pytest.raises(ConfigurationError):
            make(n_nics=0)

    def test_with_links_replaces_only_given(self):
        node = make()
        updated = node.with_links(inter_link=IB_EDR)
        assert updated.inter_link is IB_EDR
        assert updated.intra_link is NVLINK3

    def test_with_accelerator(self):
        from repro.hardware.catalog import H100
        assert make().with_accelerator(H100).accelerator is H100
