"""Unit tests for precision policies and the Eq. 2 ceiling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.precision import (
    FP8_TRAINING,
    FULL_FP32,
    MIXED_FP16,
    PrecisionPolicy,
    precision_passes,
)


class TestPrecisionPasses:
    def test_same_width_one_pass(self):
        assert precision_passes(16, 16) == 1

    def test_wide_operand_two_passes(self):
        assert precision_passes(32, 16) == 2

    def test_narrow_operand_still_one_pass(self):
        assert precision_passes(8, 16) == 1

    def test_uneven_widths_round_up(self):
        assert precision_passes(24, 16) == 2

    def test_rejects_zero_operand(self):
        with pytest.raises(ConfigurationError):
            precision_passes(0, 16)

    def test_rejects_zero_unit(self):
        with pytest.raises(ConfigurationError):
            precision_passes(16, 0)


class TestPrecisionPolicy:
    def test_mac_operand_is_max(self):
        policy = PrecisionPolicy(parameter_bits=16, activation_bits=32)
        assert policy.mac_operand_bits == 32

    def test_presets(self):
        assert MIXED_FP16.parameter_bits == 16
        assert FULL_FP32.activation_bits == 32
        assert FP8_TRAINING.gradient_bits == 8

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(parameter_bits=0)

    def test_rejects_float_bits(self):
        with pytest.raises(ConfigurationError):
            PrecisionPolicy(activation_bits=16.5)
