"""Unit tests for LinkSpec and the link catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.interconnect import (
    IB_EDR,
    IB_HDR,
    IB_NDR,
    NVLINK3,
    NVLINK4,
    PCIE3_X16,
    LinkSpec,
    optical_fiber_link,
)


class TestLinkSpec:
    def test_transfer_time_latency_plus_volume(self):
        link = LinkSpec("l", latency_s=1e-6, bandwidth_bits_per_s=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bits_costs_latency(self):
        link = LinkSpec("l", latency_s=5e-6, bandwidth_bits_per_s=1e9)
        assert link.transfer_time(0) == 5e-6

    def test_rejects_negative_volume(self):
        with pytest.raises(ConfigurationError):
            NVLINK3.transfer_time(-1)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LinkSpec("l", latency_s=0, bandwidth_bits_per_s=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            LinkSpec("l", latency_s=-1e-6, bandwidth_bits_per_s=1e9)

    def test_scaled(self):
        assert NVLINK3.scaled(2.0).bandwidth_bits_per_s \
            == 2 * NVLINK3.bandwidth_bits_per_s

    def test_with_bandwidth(self):
        assert NVLINK3.with_bandwidth(5e11).bandwidth_bits_per_s == 5e11


class TestCatalog:
    def test_table_iv_intra_bandwidths(self):
        """Table IV: A100 2.4e12 bit/s, H100 3.6e12 bit/s."""
        assert NVLINK3.bandwidth_bits_per_s == 2.4e12
        assert NVLINK4.bandwidth_bits_per_s == 3.6e12

    def test_infiniband_generations(self):
        assert IB_EDR.bandwidth_bits_per_s == 1e11
        assert IB_HDR.bandwidth_bits_per_s == 2e11
        assert IB_NDR.bandwidth_bits_per_s == 4e11

    def test_pcie_slower_than_nvlink(self):
        assert PCIE3_X16.bandwidth_bits_per_s \
            < NVLINK3.bandwidth_bits_per_s


class TestOpticalFiber:
    def test_bandwidth_scales_with_fibers(self):
        link = optical_fiber_link(3.6e12, n_fibers=8)
        assert link.bandwidth_bits_per_s == 8 * 3.6e12

    def test_rejects_zero_fibers(self):
        with pytest.raises(ConfigurationError):
            optical_fiber_link(3.6e12, n_fibers=0)


class TestNonFiniteInputs:
    @pytest.mark.parametrize("field", ["latency_s",
                                       "bandwidth_bits_per_s"])
    @pytest.mark.parametrize("value", [float("nan"), float("inf")])
    def test_rejects_non_finite_link_fields(self, field, value):
        base = dict(latency_s=1e-6, bandwidth_bits_per_s=1e9)
        base[field] = value
        with pytest.raises(ConfigurationError, match="finite"):
            LinkSpec("l", **base)

    def test_rejects_nan_transfer_volume(self):
        with pytest.raises(ConfigurationError, match="finite"):
            NVLINK3.transfer_time(float("nan"))
