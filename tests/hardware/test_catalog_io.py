"""Catalog entry serialization: specs on disk round-trip losslessly."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.hardware.catalog_io import (
    CATALOG_ENTRY_FORMAT,
    derated_system,
    load_catalog_entry,
    system_from_dict,
    system_to_dict,
    write_catalog_entry,
)
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY


class TestSystemDictRoundTrip:
    def test_lossless_reconstruction(self, small_system):
        rebuilt = system_from_dict(system_to_dict(small_system))
        assert rebuilt == small_system

    def test_payload_is_json_serializable(self, cs1_system):
        text = json.dumps(system_to_dict(cs1_system))
        assert system_from_dict(json.loads(text)) == cs1_system

    def test_unknown_fields_rejected(self, small_system):
        payload = system_to_dict(small_system)
        payload["node"]["accelerator"]["warp_core"] = True
        with pytest.raises(ConfigurationError, match="unknown fields "
                                                     r"\['warp_core'\]"):
            system_from_dict(payload)

    def test_incomplete_spec_rejected(self, small_system):
        payload = system_to_dict(small_system)
        del payload["node"]["accelerator"]["frequency_hz"]
        with pytest.raises(ConfigurationError, match="incomplete"):
            system_from_dict(payload)

    def test_validation_applies_to_disk_data(self, small_system):
        payload = system_to_dict(small_system)
        payload["node"]["intra_link"]["bandwidth_bits_per_s"] = -1.0
        with pytest.raises(Exception):
            system_from_dict(payload)

    def test_non_object_payload(self):
        with pytest.raises(ConfigurationError, match="'node'"):
            system_from_dict([1, 2, 3])


class TestDeratedSystem:
    def test_identity_returns_same_object(self, small_system):
        assert derated_system(small_system) is small_system

    def test_flops_fraction_derates_the_clock(self, small_system):
        derated = derated_system(small_system, flops_fraction=0.5)
        assert derated.accelerator.frequency_hz \
            == pytest.approx(small_system.accelerator.frequency_hz
                             * 0.5)
        assert "(calibrated)" in derated.accelerator.name
        # Links untouched.
        assert derated.node.intra_link is small_system.node.intra_link

    def test_link_scales_apply_to_both_tiers(self, small_system):
        derated = derated_system(small_system, link_latency_scale=2.0,
                                 link_bandwidth_scale=0.5)
        for tier in ("intra_link", "inter_link"):
            before = getattr(small_system.node, tier)
            after = getattr(derated.node, tier)
            assert after.latency_s == pytest.approx(before.latency_s
                                                    * 2.0)
            assert after.bandwidth_bits_per_s == pytest.approx(
                before.bandwidth_bits_per_s * 0.5)
        assert derated.accelerator is small_system.accelerator

    def test_rejects_non_positive_scales(self, small_system):
        with pytest.raises(ConfigurationError, match="flops_fraction"):
            derated_system(small_system, flops_fraction=0.0)
        with pytest.raises(ConfigurationError,
                           match="link_latency_scale"):
            derated_system(small_system, link_latency_scale=-1.0)


class TestCatalogEntryFile:
    def test_write_then_load_round_trips(self, small_system,
                                         tmp_path):
        target = tmp_path / "entry.json"
        written = write_catalog_entry(
            target, "a100-calibrated", small_system,
            CASE_STUDY_EFFICIENCY, provenance={"r_squared": 0.999})
        assert written == target
        name, system, efficiency, provenance = \
            load_catalog_entry(target)
        assert name == "a100-calibrated"
        assert system == small_system
        assert efficiency == CASE_STUDY_EFFICIENCY
        assert provenance == {"r_squared": 0.999}

    def test_file_declares_the_format_tag(self, small_system,
                                          tmp_path):
        target = tmp_path / "entry.json"
        write_catalog_entry(target, "x", small_system,
                            CASE_STUDY_EFFICIENCY)
        payload = json.loads(target.read_text())
        assert payload["format"] == CATALOG_ENTRY_FORMAT

    def test_derated_entry_round_trips(self, small_system, tmp_path):
        calibrated = derated_system(small_system, flops_fraction=0.83,
                                    link_latency_scale=1.7,
                                    link_bandwidth_scale=0.64)
        target = tmp_path / "entry.json"
        write_catalog_entry(target, "calibrated", calibrated,
                            CASE_STUDY_EFFICIENCY)
        _, system, _, _ = load_catalog_entry(target)
        assert system == calibrated

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_catalog_entry(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        target = tmp_path / "broken.json"
        target.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_catalog_entry(target)

    def test_wrong_format_tag(self, tmp_path):
        target = tmp_path / "other.json"
        target.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(ConfigurationError, match="format"):
            load_catalog_entry(target)

    def test_missing_name(self, small_system, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text(json.dumps({
            "format": CATALOG_ENTRY_FORMAT,
            "system": system_to_dict(small_system),
            "efficiency": dataclasses.asdict(CASE_STUDY_EFFICIENCY)}))
        with pytest.raises(ConfigurationError, match="'name'"):
            load_catalog_entry(target)

    def test_malformed_efficiency(self, small_system, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text(json.dumps({
            "format": CATALOG_ENTRY_FORMAT, "name": "x",
            "system": system_to_dict(small_system),
            "efficiency": {"a": 1.0, "slope": 2.0}}))
        with pytest.raises(ConfigurationError,
                           match="efficiency has unknown fields"):
            load_catalog_entry(target)
