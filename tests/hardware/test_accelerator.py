"""Unit tests for AcceleratorSpec."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.accelerator import AcceleratorSpec


def make(**overrides) -> AcceleratorSpec:
    base = dict(name="test-gpu", frequency_hz=1e9, n_cores=4, n_fu=2,
                fu_width=8, n_fu_nonlinear=16, fu_nonlinear_width=2)
    base.update(overrides)
    return AcceleratorSpec(**base)


class TestThroughputs:
    def test_peak_mac_product(self):
        assert make().peak_mac_flops_per_s == 1e9 * 4 * 2 * 8

    def test_peak_nonlinear_product(self):
        assert make().peak_nonlinear_ops_per_s == 1e9 * 16 * 2

    def test_nonlinear_excludes_core_count(self):
        """Eq. 4 has no N_cores factor."""
        more_cores = make(n_cores=8)
        assert more_cores.peak_nonlinear_ops_per_s \
            == make().peak_nonlinear_ops_per_s


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            make(name="")

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            make(frequency_hz=0)

    @pytest.mark.parametrize("field", ["n_cores", "n_fu", "fu_width",
                                       "n_fu_nonlinear",
                                       "fu_nonlinear_width"])
    def test_rejects_zero_counts(self, field):
        with pytest.raises(ConfigurationError):
            make(**{field: 0})

    def test_rejects_negative_memory(self):
        with pytest.raises(ConfigurationError):
            make(memory_bytes=-1.0)


class TestOffchipScaling:
    def test_scaling_doubles_bandwidth(self):
        accel = make(offchip_bandwidth_bits_per_s=1e12)
        doubled = accel.with_offchip_bandwidth_scaled(2.0)
        assert doubled.offchip_bandwidth_bits_per_s == 2e12

    def test_scaling_preserves_compute(self):
        accel = make(offchip_bandwidth_bits_per_s=1e12)
        doubled = accel.with_offchip_bandwidth_scaled(2.0)
        assert doubled.peak_mac_flops_per_s == accel.peak_mac_flops_per_s

    def test_scaling_renames(self):
        accel = make(offchip_bandwidth_bits_per_s=1e12)
        assert "x2" in accel.with_offchip_bandwidth_scaled(2.0).name

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ConfigurationError):
            make(offchip_bandwidth_bits_per_s=1e12) \
                .with_offchip_bandwidth_scaled(0.0)


class TestNonFiniteInputs:
    """NaN passes every `<`/`<=` range check (all NaN comparisons are
    false), so the specs must reject non-finite values explicitly."""

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf")])
    def test_rejects_non_finite_frequency(self, value):
        with pytest.raises(ConfigurationError, match="finite"):
            make(frequency_hz=value)

    @pytest.mark.parametrize("field", ["memory_bytes",
                                       "memory_bandwidth_bits_per_s",
                                       "offchip_bandwidth_bits_per_s",
                                       "tdp_watts"])
    def test_rejects_nan_optional_fields(self, field):
        with pytest.raises(ConfigurationError, match="finite"):
            make(**{field: float("nan")})
