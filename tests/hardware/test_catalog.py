"""Unit tests pinning the hardware catalog to the paper's tables."""

import pytest

from repro.hardware.catalog import (
    A100,
    ACCELERATORS,
    H100,
    P100,
    V100_SXM3,
    glam_h100_reference,
    gpipe_p100_node,
    hgx2_node,
    lowend_a100_cluster,
    megatron_a100_cluster,
)
from repro.units import TERA


class TestTableIV:
    """Table IV's accelerator rows, exactly."""

    def test_a100_row(self):
        assert A100.frequency_hz == 1.41e9
        assert A100.n_cores == 108
        assert A100.n_fu == 4
        assert A100.fu_width == 512
        assert A100.n_fu_nonlinear == 192
        assert A100.fu_nonlinear_width == 4

    def test_h100_row(self):
        assert H100.frequency_hz == 1.8e9
        assert H100.n_cores == 132
        assert H100.fu_width == 1024
        assert H100.n_fu_nonlinear == 320

    def test_a100_peak_is_vendor_fp16(self):
        assert A100.peak_mac_flops_per_s \
            == pytest.approx(312 * TERA, rel=0.01)

    def test_h100_peak_is_vendor_fp16(self):
        assert H100.peak_mac_flops_per_s \
            == pytest.approx(973 * TERA, rel=0.01)

    def test_v100_peak_is_vendor_fp16(self):
        assert V100_SXM3.peak_mac_flops_per_s \
            == pytest.approx(125 * TERA, rel=0.01)

    def test_p100_peak_is_vendor_fp16(self):
        assert P100.peak_mac_flops_per_s \
            == pytest.approx(21.2 * TERA, rel=0.01)

    def test_registry(self):
        assert set(ACCELERATORS) == {"a100", "h100", "v100", "p100"}


class TestReferenceSystems:
    def test_hgx2_is_one_node_of_16(self):
        system = hgx2_node()
        assert system.n_nodes == 1
        assert system.node.n_accelerators == 16
        assert system.accelerator is V100_SXM3

    def test_megatron_cluster_shape(self):
        system = megatron_a100_cluster()
        assert system.n_accelerators == 1024
        assert system.n_nodes == 128
        assert system.node.inter_link.name.startswith("HDR")

    def test_lowend_cluster_keeps_pool(self):
        for node_size in (1, 2, 4, 8):
            system = lowend_a100_cluster(node_size)
            assert system.n_accelerators == 1024
            assert system.node.n_nics == node_size
            assert system.node.inter_link.name.startswith("EDR")

    def test_glam_reference_shape(self):
        system = glam_h100_reference()
        assert system.n_accelerators == 3072
        assert system.accelerator is H100
        assert system.node.inter_link.name.startswith("NDR")

    def test_gpipe_platform(self):
        system = gpipe_p100_node(8)
        assert system.n_accelerators == 8
        assert system.accelerator is P100
        assert "PCIe" in system.node.intra_link.name
