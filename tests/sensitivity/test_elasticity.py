"""Unit tests for the sensitivity/elasticity analysis."""

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.sensitivity.elasticity import (
    KNOBS,
    dominant_bottleneck,
    knob_elasticity,
    sensitivity_profile,
)
from repro.transformer.zoo import MEGATRON_145B


@pytest.fixture(scope="module")
def compute_bound():
    """TP-intra / DP-inter: compute dominates."""
    system = megatron_a100_cluster(n_nodes=16)
    return AMPeD(model=MEGATRON_145B, system=system,
                 parallelism=spec_from_totals(system, tp=8, dp=16),
                 efficiency=CASE_STUDY_EFFICIENCY)


@pytest.fixture(scope="module")
def comm_bound():
    """TP across nodes: inter-node bandwidth dominates."""
    system = megatron_a100_cluster(n_nodes=16)
    return AMPeD(model=MEGATRON_145B, system=system,
                 parallelism=spec_from_totals(system, tp=16, dp=8),
                 efficiency=CASE_STUDY_EFFICIENCY)


class TestElasticitySigns:
    def test_frequency_helps(self, compute_bound):
        result = knob_elasticity(compute_bound, 2048,
                                 "compute_frequency")
        assert result.elasticity < 0
        assert result.improves_when_increased

    def test_latency_hurts(self, compute_bound):
        result = knob_elasticity(compute_bound, 2048, "inter_latency")
        assert result.elasticity >= 0

    def test_bandwidth_helps(self, comm_bound):
        result = knob_elasticity(comm_bound, 2048, "inter_bandwidth")
        assert result.elasticity < 0


class TestBottleneckIdentification:
    def test_compute_bound_names_frequency(self, compute_bound):
        assert dominant_bottleneck(compute_bound, 2048) \
            == "compute_frequency"

    def test_comm_bound_shifts_leverage_to_network(self, compute_bound,
                                                   comm_bound):
        compute_profile = {e.knob: e.elasticity
                           for e in sensitivity_profile(compute_bound,
                                                        2048)}
        comm_profile = {e.knob: e.elasticity
                        for e in sensitivity_profile(comm_bound, 2048)}
        assert abs(comm_profile["inter_bandwidth"]) \
            > abs(compute_profile["inter_bandwidth"])


class TestProfileShape:
    def test_covers_all_knobs(self, compute_bound):
        profile = sensitivity_profile(compute_bound, 2048)
        assert {e.knob for e in profile} == set(KNOBS)

    def test_sorted_by_magnitude(self, compute_bound):
        profile = sensitivity_profile(compute_bound, 2048)
        magnitudes = [abs(e.elasticity) for e in profile]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_elasticities_sum_to_about_minus_one(self, compute_bound):
        """Batch time is (nearly) homogeneous of degree -1 in the
        throughput knobs plus +1 in latencies; scaling every rate up
        10% should cut time ~10%, so throughput elasticities sum to
        ~-1 (latency terms are negligible here)."""
        profile = sensitivity_profile(compute_bound, 2048)
        throughput_sum = sum(
            e.elasticity for e in profile
            if e.knob in ("compute_frequency", "nonlinear_throughput",
                          "intra_bandwidth", "inter_bandwidth"))
        assert throughput_sum == pytest.approx(-1.0, abs=0.05)


class TestValidation:
    def test_unknown_knob(self, compute_bound):
        with pytest.raises(ConfigurationError):
            knob_elasticity(compute_bound, 2048, "magic")

    def test_bad_epsilon(self, compute_bound):
        with pytest.raises(ConfigurationError):
            knob_elasticity(compute_bound, 2048, "compute_frequency",
                            epsilon=0.9)
