"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.model import AMPeD
from repro.hardware.catalog import (
    A100,
    hgx2_node,
    megatron_a100_cluster,
)
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import (
    CASE_STUDY_EFFICIENCY,
    MicrobatchEfficiency,
)
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import MoEConfig, TransformerConfig


@pytest.fixture
def tiny_model() -> TransformerConfig:
    """A small transformer whose counts are easy to verify by hand."""
    return TransformerConfig(
        name="tiny",
        n_layers=4,
        hidden_size=64,
        n_heads=4,
        sequence_length=32,
        vocab_size=1000,
    )


@pytest.fixture
def tiny_moe_model() -> TransformerConfig:
    """A tiny Mixture-of-Experts transformer (experts every 2nd layer)."""
    return TransformerConfig(
        name="tiny-moe",
        n_layers=4,
        hidden_size=64,
        n_heads=4,
        sequence_length=32,
        vocab_size=1000,
        moe=MoEConfig(n_experts=4, expert_interval=2, top_k=2),
    )


@pytest.fixture
def small_system() -> SystemSpec:
    """4 nodes x 4 A100s — small enough for exhaustive sweeps in tests."""
    node = NodeSpec(
        accelerator=A100,
        n_accelerators=4,
        intra_link=NVLINK3,
        inter_link=IB_HDR,
        n_nics=4,
    )
    return SystemSpec(node=node, n_nodes=4)


@pytest.fixture
def cs1_system() -> SystemSpec:
    """The Case Study I platform (128 nodes x 8 A100)."""
    return megatron_a100_cluster()


@pytest.fixture
def hgx2() -> SystemSpec:
    """The Table I validation platform."""
    return hgx2_node()


@pytest.fixture
def serial_spec() -> ParallelismSpec:
    """No parallelism at all."""
    return ParallelismSpec()


@pytest.fixture
def efficiency() -> MicrobatchEfficiency:
    """The Case Study I efficiency fit."""
    return CASE_STUDY_EFFICIENCY


@pytest.fixture
def tiny_amped(tiny_model, small_system) -> AMPeD:
    """A fully wired AMPeD over the tiny model and small system."""
    spec = ParallelismSpec(tp_intra=4, dp_inter=4)
    return AMPeD(model=tiny_model, system=small_system, parallelism=spec)
