"""Integration: AMPeD's closed forms vs the step/event simulators.

These tests tie the analytical equations to the constructive
simulators on *matched* configurations — the strongest internal
consistency evidence the reproduction can offer without hardware.
"""

import pytest

from repro.collectives.hierarchical import simulate_hierarchical_allreduce
from repro.collectives.ring import simulate_ring_allreduce
from repro.core.communication import (
    CommEnvironment,
    gradient_comm_time,
    tp_comm_time,
)
from repro.hardware.precision import MIXED_FP16
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.zoo import MINGPT_85M


class TestEq6VsSimulator:
    def test_intra_tp_allreduce_matches_ring_sim(self, small_system):
        """Eq. 6's intra term = one simulated ring all-reduce of
        2bsh activations (per all-reduce invocation)."""
        env = CommEnvironment(
            system=small_system,
            parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
            precision=MIXED_FP16)
        replica_batch = 8.0
        closed = tp_comm_time(env, MINGPT_85M, replica_batch, "intra")
        payload_bits = (2 * replica_batch * MINGPT_85M.sequence_length
                        * MINGPT_85M.hidden_size
                        * MIXED_FP16.activation_bits)
        simulated = simulate_ring_allreduce(
            payload_bits, 4, small_system.node.intra_link)
        assert closed == pytest.approx(simulated.time_s, rel=1e-9)

    def test_inter_tp_allreduce_matches_hierarchical_sim(
            self, small_system):
        """Eq. 6's inter term with hierarchical sharding = the inter
        phase of the simulated two-level all-reduce."""
        env = CommEnvironment(
            system=small_system,
            parallelism=ParallelismSpec(tp_intra=4, tp_inter=4),
            precision=MIXED_FP16)
        replica_batch = 8.0
        closed = tp_comm_time(env, MINGPT_85M, replica_batch, "inter")
        payload_bits = (2 * replica_batch * MINGPT_85M.sequence_length
                        * MINGPT_85M.hidden_size
                        * MIXED_FP16.activation_bits)
        simulated = simulate_hierarchical_allreduce(
            payload_bits, n_intra=4, n_inter=4,
            intra_link=small_system.node.intra_link,
            inter_link=small_system.node.effective_inter_link)
        assert closed == pytest.approx(simulated.inter_allreduce_s,
                                       rel=1e-9)

    def test_eq11_gradient_allreduce_matches_sim(self, small_system):
        """Eq. 10/11's hierarchical gradient reduction equals the full
        simulated two-level all-reduce (all three phases)."""
        env = CommEnvironment(
            system=small_system,
            parallelism=ParallelismSpec(dp_intra=4, dp_inter=4),
            precision=MIXED_FP16)
        n_gradients = 5e7
        closed = gradient_comm_time(env, n_gradients)
        simulated = simulate_hierarchical_allreduce(
            n_gradients * MIXED_FP16.gradient_bits,
            n_intra=4, n_inter=4,
            intra_link=small_system.node.intra_link,
            inter_link=small_system.node.effective_inter_link)
        assert closed == pytest.approx(simulated.time_s, rel=1e-9)
