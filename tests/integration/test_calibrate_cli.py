"""``amped calibrate``: the CLI face of the observability loop.

Traces are produced by the real ``amped estimate --trace`` path, so
these tests cover exporter → ingester → fitter → drift end to end at
the CLI layer, including the structured exit-2 contract for malformed
inputs (never a traceback).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fitting.trace_fit import FIT_PARAMETERS
from repro.hardware.catalog_io import load_catalog_entry

SYSTEM = ["--nodes", "4"]
ESTIMATE = ["estimate", "--tp", "8", "--dp", "4",
            "--batch", "512"] + SYSTEM


@pytest.fixture
def trace(tmp_path, capsys):
    """A real trace written by ``amped estimate --trace``."""
    path = tmp_path / "measured.json"
    assert main(ESTIMATE + ["--trace", str(path)]) == 0
    capsys.readouterr()
    return path


class TestHappyPath:
    def test_self_calibration_is_healthy(self, trace, capsys):
        assert main(["calibrate", "--trace", str(trace)] + SYSTEM) == 0
        out = capsys.readouterr().out
        assert "calibrated Megatron-145B against 1 observation(s)" \
            in out
        assert "fit: R^2 = 1.000000" in out
        assert "model-vs-measured drift" in out
        assert "healthy" in out
        assert "DRIFT" not in out

    def test_fit_subset_flag(self, trace, capsys):
        assert main(["calibrate", "--trace", str(trace), "--fit",
                     "flops_fraction,efficiency_b"] + SYSTEM) == 0
        out = capsys.readouterr().out
        assert "flops_fraction" in out
        assert "link_latency_scale" not in out

    def test_report_flag_writes_strict_json(self, trace, tmp_path,
                                            capsys):
        report = tmp_path / "report.json"
        assert main(["calibrate", "--trace", str(trace),
                     "--report", str(report)] + SYSTEM) == 0
        assert f"wrote report to {report}" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert set(payload["fit"]["coefficients"]) \
            == set(FIT_PARAMETERS)
        assert payload["fit"]["r_squared"] == pytest.approx(1.0)
        assert payload["drift"]["healthy"] is True
        # Strict JSON round-trip: no NaN/Infinity leaked.
        json.loads(json.dumps(payload, allow_nan=False))

    def test_write_catalog_flag(self, trace, tmp_path, capsys):
        entry = tmp_path / "entry.json"
        assert main(["calibrate", "--trace", str(trace),
                     "--write-catalog", str(entry),
                     "--catalog-name", "a100-lab"] + SYSTEM) == 0
        assert "wrote catalog entry 'a100-lab'" \
            in capsys.readouterr().out
        name, system, efficiency, provenance = \
            load_catalog_entry(entry)
        assert name == "a100-lab"
        assert system.n_nodes == 4
        assert provenance["model"] == "Megatron-145B"
        assert "r_squared" in provenance

    def test_csv_input_with_batch_backfill(self, tmp_path, capsys):
        csv_path = tmp_path / "timings.csv"
        csv_path.write_text(
            "term,seconds,tp,pp,dp\n"
            "compute_forward,0.9,8,1,4\n"
            "compute_backward,1.8,8,1,4\n")
        assert main(["calibrate", "--csv", str(csv_path),
                     "--batch", "512",
                     "--fit", "flops_fraction"] + SYSTEM) == 0
        assert "calibrated" in capsys.readouterr().out


class TestStructuredFailure:
    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["calibrate", "--trace", str(bad)] + SYSTEM) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert str(bad) in captured.err
        assert "Traceback" not in captured.err

    def test_trace_with_bad_event_exits_2_with_offset(self, tmp_path,
                                                      capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "x", "ph": "X", "ts": -5, "dur": 1,
             "pid": 1, "tid": 1}]}))
        assert main(["calibrate", "--trace", str(bad)] + SYSTEM) == 2
        err = capsys.readouterr().err
        assert f"{bad}:0:" in err

    def test_no_inputs_exits_2(self, capsys):
        assert main(["calibrate"] + SYSTEM) == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        absent = tmp_path / "absent.json"
        assert main(["calibrate", "--trace", str(absent)]
                    + SYSTEM) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestModelMismatchNote:
    def test_note_printed_when_models_differ(self, trace, capsys):
        assert main(["calibrate", "--trace", str(trace),
                     "--model", "megatron-310b"] + SYSTEM) == 0
        out = capsys.readouterr().out
        assert "pass --model to match" in out
