"""Matrix tests: AMPeD invariants across a grid of real configurations.

Single-configuration unit tests can miss interaction bugs (a mapping
shape that only misbehaves on a particular model family or batch).
This module sweeps a structured grid of (model, mapping, batch) and
asserts the invariants every physical configuration must satisfy.
"""

import pytest

from repro.core.model import AMPeD
from repro.errors import MappingError
from repro.hardware.catalog import megatron_a100_cluster
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.transformer.zoo import get_model

SYSTEM = megatron_a100_cluster(n_nodes=16)  # 128 A100s

MODEL_KEYS = ("mingpt-85m", "megatron-1.7b", "megatron-7.5b",
              "megatron-39b", "gpt3-175b", "glam-1.2t")

MAPPINGS = (
    {"tp": 8, "dp": 16},
    {"tp": 8, "pp": 4, "dp": 4, "n_microbatches": 32},
    {"tp": 4, "pp": 8, "dp": 4, "n_microbatches": 32},
    {"dp": 128},
    {"tp": 2, "dp": 64},
)

BATCHES = (512, 2048)


def build(model_key: str, mapping: dict, **kwargs):
    spec_kwargs = dict(mapping)
    return AMPeD(
        model=get_model(model_key),
        system=SYSTEM,
        parallelism=spec_from_totals(SYSTEM, **spec_kwargs),
        efficiency=CASE_STUDY_EFFICIENCY,
        validate=False,  # grid includes shapes some models can't run
        **kwargs)


@pytest.mark.parametrize("model_key", MODEL_KEYS)
@pytest.mark.parametrize("mapping", MAPPINGS,
                         ids=lambda m: "-".join(f"{k}{v}"
                                                for k, v in m.items()))
@pytest.mark.parametrize("batch", BATCHES)
class TestMatrixInvariants:
    def test_invariants(self, model_key, mapping, batch):
        amped = build(model_key, mapping)
        try:
            breakdown = amped.estimate_batch(batch)
        except MappingError:
            pytest.skip("mapping infeasible at this batch (expected "
                        "for deep splits of small batches)")

        # every component finite and non-negative
        for name, value in breakdown.as_dict().items():
            assert value >= 0.0, name
        # identity: total = compute + comm + bubble
        assert breakdown.total == pytest.approx(
            breakdown.compute_time + breakdown.comm_time
            + breakdown.bubble)
        # throughput below hardware peak
        tflops = amped.achieved_tflops_per_gpu(batch)
        assert 0 < tflops < 312
        # time scales with batches
        estimate = amped.estimate(batch, n_batches=3)
        assert estimate.total_time_s \
            == pytest.approx(3 * breakdown.total)
        # MoE models pay MoE communication; dense ones never do
        if amped.model.uses_moe:
            assert breakdown.comm_moe > 0.0
        else:
            assert breakdown.comm_moe == 0.0
        # pipelines bubble, flat mappings don't
        if amped.parallelism.pp > 1:
            assert breakdown.bubble > 0.0
        else:
            assert breakdown.bubble == 0.0
