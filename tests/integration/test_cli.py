"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.command == "estimate"
        assert args.model == "megatron-145b"
        assert args.batch == 2048

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_sweep_eval_mode_defaults_to_compiled(self):
        args = build_parser().parse_args(["sweep"])
        assert args.eval_mode == "compiled"


class TestCommands:
    def test_estimate_prints_breakdown(self, capsys):
        exit_code = main(["estimate", "--nodes", "4", "--tp", "8",
                          "--dp", "4", "--batch", "512"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "training time breakdown" in out
        assert "mapping: TP=8x1" in out

    def test_estimate_diagnoses_bad_mappings(self, capsys):
        # TP=64 does not divide Megatron-145B's 96 heads
        exit_code = main(["estimate", "--nodes", "16", "--tp", "64",
                          "--dp", "2", "--batch", "512"])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "attention heads" in out

    def test_estimate_with_tokens(self, capsys):
        main(["estimate", "--nodes", "4", "--tp", "8", "--dp", "4",
              "--batch", "512", "--tokens", "1e9"])
        assert "days" in capsys.readouterr().out

    def test_sweep_prints_table(self, capsys):
        exit_code = main(["sweep", "--nodes", "2",
                          "--model", "mingpt-85m", "--batch", "256",
                          "--top", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "mapping" in out
        assert "batch time" in out

    @pytest.mark.parametrize("mode",
                             ["per_layer", "collapsed", "compiled"])
    def test_sweep_accepts_every_eval_mode(self, mode, capsys):
        exit_code = main(["sweep", "--nodes", "2",
                          "--model", "mingpt-85m", "--batch", "256",
                          "--top", "3", "--eval-mode", mode])
        assert exit_code == 0
        assert "batch time" in capsys.readouterr().out

    def test_sweep_rejects_unknown_eval_mode(self, capsys):
        exit_code = main(["sweep", "--nodes", "2",
                          "--model", "mingpt-85m", "--batch", "256",
                          "--eval-mode", "bogus"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "evaluation_path must be one of" \
            in captured.out + captured.err
        assert "'bogus'" in captured.out + captured.err

    def test_experiment_fig3(self, capsys):
        exit_code = main(["experiment", "fig3"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "DPx64, PPx2 inter" in out
        assert "DPx64, TPx2 inter" in out

    def test_experiment_fig11(self, capsys):
        exit_code = main(["experiment", "fig11"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "reference" in out
        assert "Opt.3" in out

    def test_recommend(self, capsys):
        exit_code = main(["recommend", "--nodes", "8"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "mapping:" in out
        assert "TP" in out

    def test_sensitivity(self, capsys):
        exit_code = main(["sensitivity", "--nodes", "4", "--tp", "8",
                          "--dp", "4", "--batch", "512"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "compute_frequency" in out
        assert "elasticity" in out

    def test_cost(self, capsys):
        exit_code = main(["cost", "--nodes", "4", "--tp", "8",
                          "--dp", "4", "--batch", "512",
                          "--tokens", "1e9"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "GPU-hours" in out
        assert "CO2" in out

    def test_experiment_fig2c(self, capsys):
        exit_code = main(["experiment", "fig2c"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "TFLOP/s/GPU" in out
        assert "microbatch" in out

    def test_experiment_fig2a(self, capsys):
        exit_code = main(["experiment", "fig2a"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "GPUs" in out and "error" in out

    def test_experiment_case_study_sweep(self, capsys):
        exit_code = main(["experiment", "fig6"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "inter split" in out
        assert "batch 16384" in out

    def test_export_writes_csvs(self, capsys, tmp_path):
        exit_code = main(["export", "--outdir", str(tmp_path),
                          "--skip-sweeps"])
        assert exit_code == 0
        names = {path.name for path in tmp_path.glob("*.csv")}
        assert {"fig2a.csv", "fig2b.csv", "fig2c.csv", "table2.csv",
                "table3.csv", "fig10.csv", "fig11.csv"} <= names
        # spot-check one file's header
        header = (tmp_path / "table2.csv").read_text().splitlines()[0]
        assert header.startswith("model,tp,pp,dp")
        # and the markdown summary
        report = (tmp_path / "report.md").read_text()
        assert report.startswith("# AMPeD reproduction summary")
        assert "Table II" in report and "Fig. 11" in report

    def test_validate_runs_all_reports(self, capsys):
        exit_code = main(["validate"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Table III" in out
        assert "Fig. 2a" in out
        assert "Fig. 2b" in out
