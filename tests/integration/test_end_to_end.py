"""Integration tests across subsystems: model + search + memory +
energy + simulators composed the way the examples use them."""

import pytest

from repro.core.model import AMPeD
from repro.energy.energy import estimate_energy
from repro.energy.power import PowerModel
from repro.hardware.catalog import megatron_a100_cluster
from repro.memory.constraints import max_feasible_microbatch
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import spec_from_totals
from repro.pipeline.simulator import PipelineWorkload, simulate_pipeline
from repro.search.dse import best_mapping, explore
from repro.search.heuristics import recommend_mapping
from repro.search.tuning import optimize_microbatches
from repro.transformer.zoo import MEGATRON_145B


@pytest.fixture(scope="module")
def system():
    return megatron_a100_cluster(n_nodes=16)  # 128 A100s


@pytest.fixture(scope="module")
def amped(system):
    return AMPeD.for_mapping(MEGATRON_145B, system, tp=8, dp=16,
                             efficiency=CASE_STUDY_EFFICIENCY)


class TestFullPipeline:
    def test_estimate_to_energy(self, amped, system):
        """AMPeD estimate feeds the energy model end to end."""
        estimate = amped.estimate(2048, total_tokens=1e9)
        power = PowerModel.for_accelerator(system.accelerator)
        energy = estimate_energy(estimate.breakdown, power,
                                 system.n_accelerators)
        assert energy.total_kwh > 0
        # sane magnitude: hundreds of kW * hours, not absurd values
        assert energy.total_joules < 1e15

    def test_heuristic_agrees_with_search(self, system):
        """The heuristic mapping ranks near the exhaustive optimum."""
        rec = recommend_mapping(MEGATRON_145B, system)
        template = AMPeD(model=MEGATRON_145B, system=system,
                         parallelism=rec.parallelism,
                         efficiency=CASE_STUDY_EFFICIENCY)
        results = explore(template, 2048, max_results=None)
        times = [result.batch_time_s for result in results]
        heuristic_time = template.estimate_batch(2048).total
        # within 25% of the best found mapping
        assert heuristic_time <= 1.25 * times[0]

    def test_search_results_feasible_in_memory(self, amped):
        """The best mapping must actually fit in HBM at microbatch 1."""
        best = best_mapping(amped, 2048, enforce_memory=True)
        assert max_feasible_microbatch(
            amped.model, best.parallelism, amped.precision,
            amped.system.accelerator) is not None

    def test_tuning_composes_with_search(self, amped):
        tuned, time_tuned = optimize_microbatches(amped, 2048)
        assert time_tuned <= amped.estimate_batch(2048).total + 1e-12
        assert tuned.model is amped.model

    def test_analytical_bubble_matches_simulator(self, system):
        """AMPeD's physical bubble accounting must agree with the
        discrete-event simulator on a pure-PP mapping."""
        spec = spec_from_totals(system, tp=8, pp=16,
                                n_microbatches=64)
        amped = AMPeD(model=MEGATRON_145B, system=system,
                      parallelism=spec,
                      efficiency=CASE_STUDY_EFFICIENCY)
        breakdown = amped.estimate_batch(2048)
        analytical_ratio = breakdown.bubble / (
            breakdown.compute_forward + breakdown.compute_backward)

        sim = simulate_pipeline(PipelineWorkload(1.0, 2.0), n_stages=16,
                                n_microbatches=64, schedule="gpipe")
        sim_ratio = (sim.makespan_s - 64 * 3.0) / (64 * 3.0)
        # Eq. 8's (N_PP - 1)/N_ub bound vs the simulator's measured
        # fill/drain overhead; the analytical ratio also contains comm
        # terms, so compare loosely.
        assert analytical_ratio == pytest.approx(sim_ratio, rel=0.35)

    def test_describe_round_trip(self, amped):
        """Breakdown tables and system descriptions render."""
        text = amped.estimate_batch(2048).format_table()
        assert "compute" in text
        assert amped.system.describe()
