"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each example's ``main()`` is imported and run with stdout
captured, and a few load-bearing phrases are asserted.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys, argv=None) -> str:
    """Import an example module fresh and run its main()."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main(*([] if argv is None else []))
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "one batch of" in out
        assert "days" in out

    def test_parallelism_explorer(self, capsys):
        out = run_example("parallelism_explorer", capsys)
        assert "top mappings" in out
        assert "heuristic recommendation" in out

    def test_lowend_cluster(self, capsys):
        out = run_example("lowend_cluster", capsys)
        assert "winner" in out
        assert "kWh" in out

    def test_optical_substrate(self, capsys):
        out = run_example("optical_substrate", capsys)
        assert "Opt." in out
        assert "speedup" in out

    def test_validate_against_published(self, capsys):
        out = run_example("validate_against_published", capsys)
        assert "[PASS]" in out

    def test_memory_planner(self, capsys):
        out = run_example("memory_planner", capsys)
        assert "does not fit" in out
        assert "ub <=" in out

    def test_hetero_pipeline(self, capsys):
        out = run_example("hetero_pipeline", capsys)
        assert "balancing recovers" in out

    def test_calibrate_and_sweep(self, capsys):
        out = run_example("calibrate_and_sweep", capsys)
        assert "R^2" in out
        assert "best mapping" in out

    def test_cost_planner(self, capsys):
        out = run_example("cost_planner", capsys)
        assert "$" in out
        assert "CO2" in out

    def test_future_accelerator(self, capsys):
        out = run_example("future_accelerator", capsys)
        assert "2x compute" in out
        assert "dominant knob" in out

    def test_production_run(self, capsys):
        out = run_example("production_run", capsys)
        assert "campaign plan" in out
        assert "Young/Daly" in out

    def test_every_example_has_a_smoke_test(self):
        """Adding an example without a smoke test should fail CI."""
        tested = {name[5:] for name in dir(TestExamples)
                  if name.startswith("test_")
                  and name != "test_every_example_has_a_smoke_test"}
        present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert present == tested
