"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    MappingError,
    MemoryCapacityError,
    ReproError,
    SimulationError,
    ValidationDataError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigurationError,
        MappingError,
        MemoryCapacityError,
        ValidationDataError,
        SimulationError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise MappingError("nope")


class TestMemoryCapacityError:
    def test_carries_sizes(self):
        error = MemoryCapacityError("too big", required_bytes=100.0,
                                    available_bytes=80.0)
        assert error.required_bytes == 100.0
        assert error.available_bytes == 80.0

    def test_defaults(self):
        error = MemoryCapacityError("too big")
        assert error.required_bytes == 0.0
        assert error.available_bytes == 0.0

    def test_message_preserved(self):
        error = MemoryCapacityError("needs 2x")
        assert "needs 2x" in str(error)
