"""Request-schema validation: every malformed shape gets a stable
machine code, never any other exception type."""

import json

import pytest

from repro.errors import RequestValidationError
from repro.serve.validation import (
    MAX_DEADLINE_S,
    EstimateRequest,
    error_body,
    parse_estimate_request,
)


def _parse(payload) -> EstimateRequest:
    return parse_estimate_request(json.dumps(payload).encode())


def _code_of(payload) -> str:
    with pytest.raises(RequestValidationError) as caught:
        _parse(payload)
    return caught.value.code


class TestParsing:

    def test_minimal_request_gets_defaults(self):
        request = _parse({"model": "megatron-1t"})
        assert request.accelerator == "a100"
        assert request.nodes == 16
        assert request.tp == request.pp == request.dp == 1
        assert request.microbatches is None
        assert request.batch == 2048
        assert request.tokens is None
        assert request.deadline_s is None

    def test_full_request_round_trips(self):
        request = _parse({"model": "megatron-1t", "accelerator": "a100",
                          "nodes": 128, "accel_per_node": 8, "nics": 8,
                          "inter": "hdr", "tp": 8, "pp": 16, "dp": 8,
                          "microbatches": 32, "batch": 2048,
                          "tokens": 4.5e11, "deadline_s": 30.0})
        assert (request.tp, request.pp, request.dp) == (8, 16, 8)
        assert request.microbatches == 32
        assert request.tokens == 4.5e11
        assert request.deadline_s == 30.0

    def test_group_key_ignores_mapping_but_not_system(self):
        a = _parse({"model": "megatron-1t", "tp": 8, "pp": 2, "dp": 8})
        b = _parse({"model": "megatron-1t", "tp": 2, "pp": 8, "dp": 8})
        c = _parse({"model": "megatron-1t", "nodes": 32})
        assert a.group_key() == b.group_key()
        assert a.group_key() != c.group_key()


class TestRejection:

    def test_not_json(self):
        with pytest.raises(RequestValidationError) as caught:
            parse_estimate_request(b"{nope")
        assert caught.value.code == "invalid_json"

    def test_not_utf8(self):
        with pytest.raises(RequestValidationError) as caught:
            parse_estimate_request(b"\xff\xfe\x00")
        assert caught.value.code == "invalid_json"

    def test_not_an_object(self):
        with pytest.raises(RequestValidationError) as caught:
            parse_estimate_request(b"[1, 2]")
        assert caught.value.code == "invalid_request"

    def test_unknown_field_is_named(self):
        with pytest.raises(RequestValidationError) as caught:
            _parse({"model": "megatron-1t", "nodez": 4})
        assert caught.value.code == "unknown_field"
        assert caught.value.field == "nodez"

    def test_missing_model(self):
        assert _code_of({"nodes": 4}) == "missing_field"

    def test_unknown_choices(self):
        assert _code_of({"model": "gpt-9000"}) == "invalid_value"
        assert _code_of({"model": "megatron-1t",
                         "accelerator": "abacus"}) == "invalid_value"
        assert _code_of({"model": "megatron-1t",
                         "inter": "carrier-pigeon"}) == "invalid_value"

    @pytest.mark.parametrize("value", [0, -1, 2.5, True, "8", None])
    def test_bad_degrees(self, value):
        assert _code_of({"model": "megatron-1t",
                         "tp": value}) == "invalid_value"

    @pytest.mark.parametrize("value", [0, -1.0, float("nan"),
                                       float("inf"), "many", True])
    def test_bad_tokens(self, value):
        payload = {"model": "megatron-1t", "tokens": value}
        body = json.dumps(payload, allow_nan=True).encode()
        with pytest.raises(RequestValidationError) as caught:
            parse_estimate_request(body)
        assert caught.value.code == "invalid_value"

    def test_deadline_capped(self):
        assert _code_of({"model": "megatron-1t",
                         "deadline_s": MAX_DEADLINE_S * 2}) \
            == "invalid_value"


class TestErrorBody:

    def test_shape(self):
        body = error_body("invalid_value", "tp must be >= 1",
                          field="tp")
        assert body == {"error": {"code": "invalid_value",
                                  "message": "tp must be >= 1",
                                  "field": "tp"}}

    def test_field_omitted_when_absent(self):
        assert "field" not in error_body("overloaded", "busy")["error"]
