"""Multi-worker serving tests: board mechanics and fleet behaviour.

The :class:`~repro.serve.multiproc.WorkerBoard` unit tests run
in-process (the board is plain JSON files, so they need neither NumPy
nor ``fork``).  The end-to-end tests drive a real ``--workers 2``
fleet through a subprocess: quorum readiness, request fan-out across
worker pids, a SIGKILL'd worker being respawned without losing the
quorum, a rolling SIGTERM drain that completes accepted requests, and
the no-leaked-segments guarantee afterwards.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.search import shm
from repro.serve.multiproc import (
    SLOT_STALE_S,
    WorkerBoard,
    reuseport_available,
)
from repro.serve.validation import EstimateRequest, warm_request

HAVE_FORK = hasattr(os, "fork")
needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="os.fork unavailable")


class TestWorkerBoard:
    @pytest.fixture()
    def board(self, tmp_path):
        return WorkerBoard(tmp_path, workers_expected=3)

    def test_slot_roundtrip_and_clear(self, board):
        board.write_slot(0, {"pid": 123, "ready": True})
        slots = board.read_slots()
        assert slots[0]["pid"] == 123
        assert slots[0]["index"] == 0
        assert "ts" in slots[0]
        board.clear_slot(0)
        assert board.read_slots() == {}
        board.clear_slot(0)  # idempotent

    def test_stale_slots_are_dead(self, board, monkeypatch):
        board.write_slot(1, {"pid": 9, "ready": True})
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() + SLOT_STALE_S + 1.0)
        assert board.read_slots() == {}

    def test_unparseable_slot_is_skipped(self, board):
        board.write_slot(0, {"pid": 1, "ready": True})
        (board.root / "worker-1.json").write_text("{torn")
        slots = board.read_slots()
        assert list(slots) == [0]

    def test_quorum_is_majority(self, tmp_path):
        assert WorkerBoard(tmp_path, 1).quorum == 1
        assert WorkerBoard(tmp_path, 2).quorum == 2
        assert WorkerBoard(tmp_path, 3).quorum == 2
        assert WorkerBoard(tmp_path, 4).quorum == 3

    def test_quorum_status_substitutes_self(self, board):
        board.write_slot(0, {"pid": 10, "ready": True, "rung": "a"})
        board.write_slot(1, {"pid": 11, "ready": False, "rung": "b"})
        status = board.quorum_status(
            {"ready": True, "evaluation_path": "compiled"},
            local_index=1)
        workers = {w["index"]: w for w in status["workers"]}
        assert workers[1]["self"] is True
        assert workers[1]["ready"] is True  # live, not the stale slot
        assert workers[1]["pid"] == os.getpid()
        assert workers[2]["ready"] is False  # never heartbeated
        assert status["workers_ready"] == 2
        assert status["ready"] is True  # 2 >= quorum(3) == 2

    def test_aggregate_metrics_sums_across_slots(self, board):
        board.write_slot(0, {"metrics": {
            "counters": {"serve.requests": 3},
            "gauges": {"g": 1.0},
            "histograms": {"h": {"count": 2, "sum": 0.5,
                                 "bounds": [1.0],
                                 "bucket_counts": [2, 0]}}}})
        local = {"counters": {"serve.requests": 4, "only.local": 1},
                 "gauges": {"g": 2.0},
                 "histograms": {"h": {"count": 1, "sum": 0.25,
                                      "bounds": [1.0],
                                      "bucket_counts": [1, 0]}}}
        merged = board.aggregate_metrics(local, local_index=1)
        assert merged["counters"]["serve.requests"] == 7
        assert merged["counters"]["only.local"] == 1
        assert merged["gauges"]["g"] == 3.0
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["histograms"]["h"]["bucket_counts"] == [3, 0]
        assert merged["workers_reporting"] == [0, 1]
        assert merged["workers_expected"] == 3

    def test_peer_segments_exclude_self(self, board):
        board.write_slot(0, {"segments": {"d0": "amped-1-1-sweep"}})
        board.write_slot(1, {"segments": {"d1": "amped-2-1-sweep"}})
        assert board.peer_segments(1) == {"d0": "amped-1-1-sweep"}
        assert board.peer_segments(2) == {"d0": "amped-1-1-sweep",
                                          "d1": "amped-2-1-sweep"}


def test_reuseport_available_is_stable():
    assert reuseport_available() == reuseport_available()


def test_warm_request_is_always_feasible():
    request = warm_request("mingpt-85m")
    defaults = EstimateRequest(model="mingpt-85m")
    # Pure data-parallel over every accelerator: feasible on any
    # system, unlike the tp=pp=dp=1 defaults.
    assert request.tp == request.pp == 1
    assert request.dp == defaults.nodes * defaults.accel_per_node


# ---------------------------------------------------------------------------
# End-to-end fleet tests (real fork, real sockets)
# ---------------------------------------------------------------------------

ESTIMATE = json.dumps({"model": "mingpt-85m", "nodes": 2, "dp": 16,
                       "batch": 256, "tokens": 1.0e9}).encode()


def _read_base_url(process, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            return line.split("serving on ", 1)[1].strip()
    pytest.fail("fleet master never announced its address")


def _get(base, path, timeout=30):
    with urllib.request.urlopen(base + path, timeout=timeout) as r:
        return r.status, json.loads(r.read())


def _estimate(base, timeout=60):
    request = urllib.request.Request(base + "/v1/estimate",
                                     data=ESTIMATE)
    with urllib.request.urlopen(request, timeout=timeout) as r:
        return json.loads(r.read())


def _await_ready(base, timeout=90.0):
    deadline = time.monotonic() + timeout
    status = None
    while time.monotonic() < deadline:
        try:
            code, status = _get(base, "/readyz")
            if status.get("ready"):
                return status
        except Exception:  # noqa: BLE001 — poll until the deadline
            pass
        time.sleep(0.25)
    pytest.fail(f"fleet never reached ready quorum: {status}")


@needs_fork
def test_workers_drain_when_master_is_sigkilled():
    """A SIGKILL'd master must not strand orphaned workers.

    Workers watch ``os.getppid()`` from the heartbeat thread and drain
    themselves once the master vanishes without signalling them.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--workers", "2",
         "--port", "0", "--warm", "mingpt-85m", "--deadline", "60",
         "--log-level", "error"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env)
    try:
        base = _read_base_url(process)
        status = _await_ready(base)
        worker_pids = {w["pid"] for w in status["workers"] if w["pid"]}
        assert len(worker_pids) == 2
        process.kill()
        process.wait(30.0)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            alive = {pid for pid in worker_pids if _pid_alive(pid)}
            if not alive:
                return
            time.sleep(0.25)
        pytest.fail(f"orphaned workers survived master SIGKILL: {alive}")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(10.0)


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture
def fleet():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    leaked_before = set(shm.leaked_segment_names())
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--workers", "2",
         "--port", "0", "--warm", "mingpt-85m", "--deadline", "60",
         "--log-level", "error"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env=env)
    base = _read_base_url(process)
    yield process, base
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(60.0)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(10.0)
    leaked = set(shm.leaked_segment_names()) - leaked_before
    assert leaked == set(), (
        f"fleet leaked shared-memory segments: {sorted(leaked)}")



@needs_fork
def test_fleet_quorum_fanout_respawn_and_drain(fleet):
    process, base = fleet

    status = _await_ready(base)
    assert status["workers_expected"] == 2
    assert status["quorum"] == 2
    pids = {w["pid"] for w in status["workers"] if w["pid"]}
    assert len(pids) == 2
    assert process.pid not in pids  # master serves nothing itself

    for _ in range(4):
        payload = _estimate(base)
        assert payload["batch_time_s"] > 0

    # Peer slots refresh once per heartbeat, so the aggregated counter
    # can trail the requests by up to HEARTBEAT_INTERVAL_S.
    deadline = time.monotonic() + 10.0
    while True:
        code, snapshot = _get(base, "/metrics")
        if snapshot["counters"].get("serve.requests", 0) >= 4:
            break
        if time.monotonic() > deadline:
            pytest.fail(f"aggregated serve.requests never reached 4: "
                        f"{snapshot['counters']}")
        time.sleep(0.25)
    assert snapshot["workers_expected"] == 2

    # Kill one worker outright: the fleet keeps serving, the master
    # respawns the slot, and the quorum recovers with a fresh pid.
    victim = sorted(pids)[0]
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 90.0
    recovered = None
    while time.monotonic() < deadline:
        try:
            _, recovered = _get(base, "/readyz")
        except Exception:  # noqa: BLE001 — the victim's socket may answer once
            time.sleep(0.25)
            continue
        fresh = {w["pid"] for w in recovered["workers"] if w["pid"]}
        if recovered.get("ready") and len(fresh) == 2 \
                and victim not in fresh:
            break
        time.sleep(0.25)
    else:
        pytest.fail(f"fleet never recovered from a killed worker: "
                    f"{recovered}")
    assert _estimate(base)["batch_time_s"] > 0

    # Rolling drain: requests in flight when SIGTERM lands complete.
    # The body asks for a model no worker has compiled, so evaluation
    # takes long enough that the responses are genuinely pending when
    # the drain starts; the short grace after writing lets the workers
    # accept the connections (a connection still in the kernel backlog
    # when its socket closes is refused, not drained — that is the
    # documented SO_REUSEPORT deploy caveat, not a dropped request).
    cold = json.dumps({"model": "megatron-145b", "nodes": 2, "dp": 16,
                       "batch": 256}).encode()
    host, port = base.split("//", 1)[1].rsplit(":", 1)
    connections = []
    for _ in range(4):
        connection = http.client.HTTPConnection(host, int(port),
                                                timeout=60)
        connection.connect()
        connection.request("POST", "/v1/estimate", body=cold,
                           headers={"Content-Type":
                                    "application/json"})
        connections.append(connection)
    time.sleep(0.2)
    process.send_signal(signal.SIGTERM)
    try:
        for connection in connections:
            reply = connection.getresponse()
            assert reply.status == 200
            payload = json.loads(reply.read())
            assert payload["batch_time_s"] > 0
            assert payload["model"] == "megatron-145b"
    finally:
        for connection in connections:
            connection.close()
    assert process.wait(timeout=90.0) == 0
    assert "shutdown complete" in process.stdout.read()
