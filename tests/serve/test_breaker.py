"""Circuit breaker + degradation ladder, driven by a fake clock."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.serve.breaker import (
    LADDER_RUNGS,
    RUNG_EVALUATION_PATHS,
    CircuitBreaker,
    DegradationLadder,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown_s", 5.0)
    kwargs.setdefault("recovery_successes", 2)
    kwargs.setdefault("ladder", DegradationLadder("vectorized"))
    return CircuitBreaker(clock=clock, **kwargs)


class TestLadder:

    def test_rung_vocabulary_is_closed(self):
        assert set(RUNG_EVALUATION_PATHS) == set(LADDER_RUNGS)

    def test_degrades_to_bottom_then_stops(self):
        ladder = DegradationLadder("vectorized")
        seen = [ladder.current]
        while ladder.degrade():
            seen.append(ladder.current)
        assert seen == list(LADDER_RUNGS)
        assert ladder.degrade() is False

    def test_restore_never_exceeds_start(self):
        ladder = DegradationLadder("compiled")
        assert ladder.restore() is False
        ladder.degrade()
        assert ladder.current == "collapsed"
        assert ladder.restore() is True
        assert ladder.current == "compiled"
        assert ladder.restore() is False

    def test_serial_rung_maps_to_per_layer(self):
        ladder = DegradationLadder("serial")
        assert ladder.evaluation_path == "per_layer"

    def test_unknown_rung_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder("quantum")


class TestBreaker:

    def test_trips_after_threshold_and_degrades(self, clock):
        breaker = make_breaker(clock)
        boom = RuntimeError("boom")
        breaker.record_failure(boom)
        breaker.record_failure(boom)
        assert breaker.state == "closed"
        assert breaker.admit() is None
        breaker.record_failure(boom)
        assert breaker.state == "open"
        assert breaker.ladder.current == "compiled"
        counters = get_metrics().snapshot()["counters"]
        assert counters["serve.breaker.opened"] == 1.0
        assert counters["serve.ladder.degraded"] == 1.0

    def test_open_sheds_with_remaining_cooldown(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        wait = breaker.admit()
        assert wait == pytest.approx(5.0)
        clock.advance(3.0)
        assert breaker.admit() == pytest.approx(2.0)

    def test_half_open_probe_success_closes(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        clock.advance(5.1)
        assert breaker.admit() is None  # the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.admit() is None

    def test_half_open_probe_failure_reopens_and_degrades(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        clock.advance(5.1)
        assert breaker.admit() is None
        breaker.record_failure(RuntimeError("still broken"))
        assert breaker.state == "open"
        assert breaker.ladder.current == "collapsed"
        assert breaker.admit() == pytest.approx(5.0)

    def test_sustained_success_restores_the_ladder(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        clock.advance(5.1)
        breaker.admit()
        breaker.record_success()  # closes; 1 consecutive success
        assert breaker.ladder.current == "compiled"
        breaker.record_success()  # 2nd: recovery_successes reached
        assert breaker.ladder.current == "vectorized"
        counters = get_metrics().snapshot()["counters"]
        assert counters["serve.ladder.restored"] == 1.0

    def test_failure_resets_success_streak(self, clock):
        breaker = make_breaker(clock)
        breaker.ladder.degrade()
        breaker.record_success()
        breaker.record_failure(RuntimeError("blip"))
        breaker.record_success()
        assert breaker.ladder.current == "compiled"
        breaker.record_success()
        assert breaker.ladder.current == "vectorized"

    def test_describe_reports_state_and_rung(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure(RuntimeError("boom"))
        described = breaker.describe()
        assert described["state"] == "closed"
        assert described["consecutive_failures"] == 1
        assert described["rung"] == "vectorized"
        assert "boom" in described["last_error"]

    def test_state_gauge_tracks_transitions(self, clock):
        breaker = make_breaker(clock)
        gauges = get_metrics().snapshot()["gauges"]
        assert gauges["serve.breaker.state"] == 0.0
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        assert get_metrics().snapshot()["gauges"][
            "serve.breaker.state"] == 2.0
        clock.advance(5.1)
        breaker.admit()
        assert get_metrics().snapshot()["gauges"][
            "serve.breaker.state"] == 1.0

    def test_bad_config_rejected(self, clock):
        with pytest.raises(ConfigurationError):
            make_breaker(clock, failure_threshold=0)
        with pytest.raises(ConfigurationError):
            make_breaker(clock, cooldown_s=-1.0)
