"""Shared state hygiene for the serving tests.

The metrics registry, tracer and compiled-sweep cache are process-wide
singletons the daemon leans on; every test starts from (and leaves
behind) empty ones so tests cannot bleed into each other or the rest
of the suite.
"""

import pytest

from repro.obs.metrics import reset_metrics
from repro.obs.trace import get_tracer
from repro.search.compiler import clear_compiled_cache


@pytest.fixture(autouse=True)
def clean_serve_state():
    tracer = get_tracer()
    tracer.disable()
    tracer.reset()
    reset_metrics()
    clear_compiled_cache()
    yield
    tracer.disable()
    tracer.reset()
    reset_metrics()
    clear_compiled_cache()
