"""End-to-end daemon test: real subprocess, real model evaluation,
real SIGTERM drain.  Mirrors the CI smoke script."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest


def _read_base_url(process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("serving on "):
            return line.split("serving on ", 1)[1].strip()
    pytest.fail("daemon never announced its address")


@pytest.fixture
def daemon():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--deadline", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    base = _read_base_url(process)
    yield process, base
    if process.poll() is None:
        process.kill()
        process.wait(10.0)


def test_daemon_round_trip_and_sigterm_drain(daemon):
    process, base = daemon

    with urllib.request.urlopen(base + "/healthz", timeout=10) as r:
        assert r.status == 200

    body = json.dumps({"model": "mingpt-85m", "nodes": 2, "dp": 16,
                       "batch": 256, "tokens": 1.0e9}).encode()
    request = urllib.request.Request(base + "/v1/estimate", data=body)
    with urllib.request.urlopen(request, timeout=60) as r:
        payload = json.loads(r.read())
    assert payload["batch_time_s"] > 0
    assert payload["training_days"] > 0

    with urllib.request.urlopen(base + "/readyz", timeout=10) as r:
        assert json.loads(r.read())["ready"] is True
    with urllib.request.urlopen(base + "/metrics", timeout=10) as r:
        snapshot = json.loads(r.read())
    assert snapshot["counters"]["serve.requests"] >= 1

    process.send_signal(signal.SIGTERM)
    code = process.wait(timeout=30.0)
    assert code == 0
    remaining = process.stdout.read()
    assert "shutdown complete" in remaining

    # After exit the port must be closed.
    with pytest.raises((urllib.error.URLError, ConnectionError)):
        urllib.request.urlopen(base + "/healthz", timeout=2)
