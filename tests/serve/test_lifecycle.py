"""EstimationService pipeline, driven deterministically via
``process_batch`` (no dispatcher thread) with an injected evaluator."""

import threading
import time

import pytest

from repro.errors import MappingError, ServiceOverloaded
from repro.obs.metrics import get_metrics
from repro.serve.breaker import CircuitBreaker, DegradationLadder
from repro.serve.lifecycle import EstimationService
from repro.serve.validation import EstimateRequest


def ok_evaluate(request):
    return (200, {"model": request.model, "batch_time_s": 1.0})


def make_service(**kwargs):
    kwargs.setdefault("evaluate", ok_evaluate)
    kwargs.setdefault("queue_limit", 4)
    kwargs.setdefault("default_deadline_s", 5.0)
    return EstimationService(**kwargs)


def counters():
    return get_metrics().snapshot()["counters"]


class TestAdmission:

    def test_submit_then_process_resolves(self):
        service = make_service()
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        service.process_batch([pending])
        assert pending.done.is_set()
        assert pending.status == 200
        assert pending.payload["model"] == "megatron-1t"

    def test_full_queue_sheds_with_queue_full(self):
        service = make_service(queue_limit=2)
        service.submit(EstimateRequest(model="megatron-1t"))
        service.submit(EstimateRequest(model="megatron-1t"))
        with pytest.raises(ServiceOverloaded) as caught:
            service.submit(EstimateRequest(model="megatron-1t"))
        assert caught.value.code == "queue_full"
        assert caught.value.retry_after_s > 0
        assert counters()["serve.shed"] == 1.0

    def test_draining_refuses_new_submissions(self):
        service = make_service()
        service.reject_new()
        with pytest.raises(ServiceOverloaded) as caught:
            service.submit(EstimateRequest(model="megatron-1t"))
        assert caught.value.code == "draining"

    def test_open_breaker_sheds_before_queueing(self):
        breaker = CircuitBreaker(failure_threshold=1,
                                 cooldown_s=60.0,
                                 ladder=DegradationLadder("compiled"))
        breaker.record_failure(RuntimeError("boom"))
        service = make_service(breaker=breaker)
        with pytest.raises(ServiceOverloaded) as caught:
            service.submit(EstimateRequest(model="megatron-1t"))
        assert caught.value.code == "breaker_open"
        assert service._queue.qsize() == 0


class TestBatching:

    def test_identical_requests_coalesce_into_one_group(self):
        calls = []

        def counting(request):
            calls.append(request)
            return (200, {"ok": True})

        service = make_service(evaluate=counting, queue_limit=8)
        pendings = [service.submit(EstimateRequest(model="megatron-1t",
                                                   tp=tp, pp=1, dp=1))
                    for tp in (1, 2, 4)]
        batch = [service._queue.get_nowait() for _ in range(3)]
        service.process_batch(batch)
        # One group (same group_key), every member answered.
        assert all(p.status == 200 for p in pendings)
        assert len(calls) == 3
        assert counters()["serve.coalesced"] == 2.0

    def test_distinct_systems_stay_separate_groups(self):
        service = make_service(queue_limit=8)
        a = service.submit(EstimateRequest(model="megatron-1t"))
        b = service.submit(EstimateRequest(model="megatron-1t",
                                           nodes=32))
        service.process_batch([a, b])
        assert a.status == b.status == 200
        assert counters().get("serve.coalesced", 0.0) == 0.0

    def test_expired_request_skipped_before_evaluation(self):
        clock_now = [100.0]
        service = make_service(clock=lambda: clock_now[0],
                               default_deadline_s=1.0)
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        clock_now[0] += 2.0
        service.process_batch([pending])
        assert pending.status == 504
        assert pending.payload["error"]["code"] == "deadline_exceeded"
        assert counters()["serve.cancelled"] == 1.0

    def test_abandoned_request_not_evaluated(self):
        calls = []
        service = make_service(
            evaluate=lambda r: calls.append(r) or (200, {}))
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        pending.abandoned = True
        service.process_batch([pending])
        assert calls == []
        assert pending.status == 504


class TestFailureContainment:

    def test_hung_evaluation_hits_deadline_and_feeds_breaker(self):
        release = threading.Event()

        def hang(request):
            release.wait(5.0)
            return (200, {})

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0,
                                 ladder=DegradationLadder("compiled"))
        service = make_service(evaluate=hang, breaker=breaker,
                               default_deadline_s=0.2)
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        started = time.monotonic()
        service.process_batch([pending])
        elapsed = time.monotonic() - started
        release.set()
        assert pending.status == 504
        assert elapsed < 2.0  # did not wait for the hung evaluator
        assert breaker.state == "open"
        assert counters()["serve.deadline_hits"] == 1.0

    def test_crash_maps_to_500_without_traceback_payload(self):
        def crash(request):
            raise ValueError("internal kaboom")

        service = make_service(evaluate=crash)
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        service.process_batch([pending])
        assert pending.status == 500
        assert pending.payload["error"]["code"] == "evaluation_failed"
        assert "Traceback" not in pending.payload["error"]["message"]
        assert counters()["serve.worker_errors"] == 1.0

    def test_domain_rejection_is_422_not_a_breaker_failure(self):
        def reject(request):
            raise MappingError("tp=7 does not divide the node")

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0,
                                 ladder=DegradationLadder("compiled"))
        service = make_service(evaluate=reject, breaker=breaker)
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        service.process_batch([pending])
        assert pending.status == 422
        assert breaker.state == "closed"

    def test_success_closes_the_loop_on_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.0,
                                 ladder=DegradationLadder("compiled"))
        breaker.record_failure(RuntimeError("blip"))
        service = make_service(breaker=breaker)
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        service.process_batch([pending])
        assert breaker.describe()["consecutive_failures"] == 0


class TestDispatcherAndDrain:

    def test_dispatcher_thread_round_trip(self):
        service = make_service()
        service.start()
        try:
            pending = service.submit(
                EstimateRequest(model="megatron-1t"))
            assert pending.done.wait(5.0)
            assert pending.status == 200
        finally:
            assert service.stop(5.0)

    def test_stop_drains_queued_requests_first(self):
        service = make_service(queue_limit=8)
        pendings = [service.submit(EstimateRequest(model="megatron-1t"))
                    for _ in range(3)]
        service.start()
        assert service.stop(5.0)
        assert all(p.done.is_set() and p.status == 200
                   for p in pendings)

    def test_status_reflects_draining_and_warmth(self):
        service = make_service()
        status = service.status()
        assert status["ready"] is False  # cache cold
        assert status["cache_warm"] is False
        pending = service.submit(EstimateRequest(model="megatron-1t"))
        service.process_batch([pending])
        status = service.status()
        assert status["ready"] is True
        assert status["cache_warm"] is True
        service.reject_new()
        assert service.status()["ready"] is False


class TestRealEvaluation:
    """The genuine model path (no injected evaluator): small model,
    tiny system, exercising spec construction and the response body."""

    REQUEST = EstimateRequest(model="mingpt-85m", nodes=2,
                              accel_per_node=8, dp=16, batch=256,
                              tokens=1.0e9)

    def test_single_request_payload(self):
        service = EstimationService(default_deadline_s=60.0)
        pending = service.submit(self.REQUEST)
        service.process_batch([pending])
        assert pending.status == 200
        payload = pending.payload
        assert payload["model"] == "mingpt-85m"
        assert payload["batch_time_s"] > 0
        assert payload["training_days"] > 0
        assert payload["n_batches"] > 0
        assert "forward_time" in payload["breakdown"] \
            or "bubble" in payload["breakdown"]
        assert payload["evaluation_path"] in ("vectorized", "compiled")

    def test_infeasible_mapping_is_422(self):
        service = EstimationService(default_deadline_s=60.0)
        pending = service.submit(
            EstimateRequest(model="mingpt-85m", nodes=2,
                            accel_per_node=8, tp=7, batch=256))
        service.process_batch([pending])
        assert pending.status == 422
        assert pending.payload["error"]["code"] == "mapping_infeasible"

    def test_coalesced_group_matches_singletons(self):
        service = EstimationService(default_deadline_s=60.0,
                                    queue_limit=8)
        mappings = [(1, 1, 16), (2, 1, 8), (1, 2, 8)]
        grouped = [service.submit(
            EstimateRequest(model="mingpt-85m", nodes=2,
                            accel_per_node=8, tp=tp, pp=pp, dp=dp,
                            batch=256))
            for tp, pp, dp in mappings]
        for pending in list(grouped):
            service._queue.get_nowait()
        service.process_batch(grouped)

        for (tp, pp, dp), pending in zip(mappings, grouped):
            solo_service = EstimationService(default_deadline_s=60.0)
            solo = solo_service.submit(
                EstimateRequest(model="mingpt-85m", nodes=2,
                                accel_per_node=8, tp=tp, pp=pp, dp=dp,
                                batch=256))
            solo_service.process_batch([solo])
            assert pending.status == solo.status == 200
            assert pending.payload["batch_time_s"] == pytest.approx(
                solo.payload["batch_time_s"], rel=1e-12)

    def test_warm_marks_cache(self):
        service = EstimationService()
        service.warm(EstimateRequest(model="mingpt-85m", nodes=2,
                                     accel_per_node=8, dp=16,
                                     batch=256))
        assert service.status()["cache_warm"] is True
