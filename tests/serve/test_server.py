"""HTTP-layer fault injection against a live in-process daemon.

Every test gets its own daemon on an ephemeral port with an injected
evaluator, so the suite exercises the real socket path — admission,
Retry-After headers, deadline abandonment, breaker recovery, drain —
without touching the (slow) genuine model evaluation.
"""

import json
import logging
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import get_metrics
from repro.serve.breaker import CircuitBreaker, DegradationLadder
from repro.serve.lifecycle import EstimationService
from repro.serve.server import ServeConfig, ServeDaemon


def http(method, base, path, payload=None, raw=None, timeout=10.0):
    """(status, body-dict, headers) without raising on HTTP errors."""
    data = raw
    if payload is not None:
        data = json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data=data,
                                     method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read()), reply.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


@pytest.fixture
def daemon_factory():
    """Build daemons on ephemeral ports; always shut down at teardown."""
    daemons = []

    def build(evaluate=None, breaker=None, config=None, **service_kw):
        config = config or ServeConfig(port=0)
        service = EstimationService(
            queue_limit=config.queue_limit,
            default_deadline_s=config.deadline_s,
            breaker=breaker or CircuitBreaker(
                failure_threshold=config.breaker_threshold,
                cooldown_s=config.breaker_cooldown_s,
                ladder=DegradationLadder("compiled")),
            evaluate=evaluate,
            drain_timeout_s=config.drain_timeout_s,
            **service_kw)
        daemon = ServeDaemon(config, service=service)
        daemons.append(daemon)
        host, port = daemon.start()
        return daemon, f"http://{host}:{port}"

    yield build
    for daemon in daemons:
        daemon.shutdown()


ESTIMATE = {"model": "megatron-1t", "nodes": 128, "tp": 8, "pp": 16,
            "dp": 8}


def ok_evaluate(request):
    return (200, {"model": request.model, "batch_time_s": 1.0})


class TestEndpoints:

    def test_healthz_always_200(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        status, body, __ = http("GET", base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_readyz_cold_503_then_200_after_traffic(self,
                                                    daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        status, body, __ = http("GET", base, "/readyz")
        assert status == 503
        assert body["cache_warm"] is False
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 200
        status, body, __ = http("GET", base, "/readyz")
        assert status == 200
        assert body["ready"] is True

    def test_metrics_exposes_serve_instruments(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        http("POST", base, "/v1/estimate", ESTIMATE)
        status, snapshot, __ = http("GET", base, "/metrics")
        assert status == 200
        assert snapshot["counters"]["serve.requests"] >= 1
        assert "serve.request_seconds" in snapshot["histograms"]
        assert snapshot["gauges"]["serve.breaker.state"] == 0.0

    def test_unknown_paths_are_structured_404(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        assert http("GET", base, "/nope")[0] == 404
        status, body, __ = http("POST", base, "/nope", ESTIMATE)
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestMalformedInput:
    """A malformed request must never produce a 500 or kill the
    daemon — always a structured 4xx, with /healthz still green."""

    def test_invalid_json_is_400(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        status, body, __ = http("POST", base, "/v1/estimate",
                                raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == "invalid_json"
        assert http("GET", base, "/healthz")[0] == 200

    def test_unknown_field_names_the_field(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        status, body, __ = http("POST", base, "/v1/estimate",
                                {"model": "megatron-1t", "bogus": 1})
        assert status == 400
        assert body["error"]["field"] == "bogus"

    def test_oversized_body_refused_with_413(self, daemon_factory):
        config = ServeConfig(port=0, max_body_bytes=128)
        __, base = daemon_factory(evaluate=ok_evaluate, config=config)
        big = json.dumps({"model": "x" * 4096}).encode()
        status, body, __ = http("POST", base, "/v1/estimate", raw=big)
        assert status == 413
        assert body["error"]["code"] == "body_too_large"
        assert http("GET", base, "/healthz")[0] == 200

    def test_garbage_survives_many_rounds(self, daemon_factory):
        __, base = daemon_factory(evaluate=ok_evaluate)
        for raw in (b"", b"null", b"[]", b'"hi"', b"\xff\xfe",
                    b"{}" * 50):
            status, body, __ = http("POST", base, "/v1/estimate",
                                    raw=raw)
            assert 400 <= status < 500
            assert "error" in body
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 200


class TestOverloadAndDeadlines:

    def test_queue_full_sheds_429_with_retry_after(self,
                                                   daemon_factory):
        gate = threading.Event()

        def slow(request):
            gate.wait(10.0)
            return (200, {})

        config = ServeConfig(port=0, queue_limit=1, deadline_s=30.0)
        __, base = daemon_factory(evaluate=slow, config=config)
        results = []

        def fire():
            results.append(http("POST", base, "/v1/estimate",
                                ESTIMATE, timeout=40.0))

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # let earlier ones claim queue slots
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if any(r[0] == 429 for r in results):
                break
            time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(30.0)
        statuses = [r[0] for r in results]
        assert 429 in statuses, statuses
        shed = next(r for r in results if r[0] == 429)
        assert shed[1]["error"]["code"] == "queue_full"
        assert int(shed[2]["Retry-After"]) >= 1
        assert 200 in statuses  # admitted requests still completed

    def test_hung_handler_hits_deadline_504(self, daemon_factory):
        gate = threading.Event()

        def hang(request):
            gate.wait(30.0)
            return (200, {})

        config = ServeConfig(port=0, deadline_s=0.3)
        __, base = daemon_factory(evaluate=hang, config=config)
        started = time.monotonic()
        status, body, __ = http("POST", base, "/v1/estimate",
                                ESTIMATE, timeout=10.0)
        elapsed = time.monotonic() - started
        gate.set()
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert elapsed < 5.0  # the daemon did not stall on the hang
        assert http("GET", base, "/healthz")[0] == 200
        counters = get_metrics().snapshot()["counters"]
        assert counters["serve.deadline_hits"] >= 1

    def test_client_deadline_overrides_default(self, daemon_factory):
        def hang(request):
            time.sleep(1.0)
            return (200, {})

        config = ServeConfig(port=0, deadline_s=30.0)
        __, base = daemon_factory(evaluate=hang, config=config)
        payload = dict(ESTIMATE, deadline_s=0.2)
        started = time.monotonic()
        status, __unused, __h = http("POST", base, "/v1/estimate",
                                     payload, timeout=10.0)
        assert status == 504
        assert time.monotonic() - started < 5.0


class TestBreakerRecovery:

    def test_trip_shed_halfopen_recover(self, daemon_factory):
        healthy = threading.Event()

        def flaky(request):
            if not healthy.is_set():
                raise RuntimeError("backend down")
            return (200, {"ok": True})

        ladder = DegradationLadder("compiled")
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.3,
                                 recovery_successes=2, ladder=ladder)
        config = ServeConfig(port=0, deadline_s=5.0)
        __, base = daemon_factory(evaluate=flaky, breaker=breaker,
                                  config=config)

        # Two failures trip the breaker (500s), degrading the ladder.
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 500
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 500
        assert breaker.state == "open"
        assert ladder.current == "collapsed"

        # While open: instant 503 with Retry-After, readyz red.
        status, body, headers = http("POST", base, "/v1/estimate",
                                     ESTIMATE)
        assert status == 503
        assert body["error"]["code"] == "breaker_open"
        assert int(headers["Retry-After"]) >= 1
        readyz_status, readyz, __ = http("GET", base, "/readyz")
        assert readyz_status == 503
        assert readyz["breaker"]["state"] == "open"

        # Cooldown elapses; the backend heals; the half-open probe
        # succeeds and closes the breaker.
        healthy.set()
        time.sleep(0.4)
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 200
        assert breaker.state == "closed"
        # One more success reaches recovery_successes → rung restored.
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 200
        assert ladder.current == "compiled"
        assert http("GET", base, "/readyz")[0] == 200

    def test_halfopen_probe_failure_reopens(self, daemon_factory):
        def broken(request):
            raise RuntimeError("still down")

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.2,
                                 ladder=DegradationLadder("compiled"))
        __, base = daemon_factory(evaluate=broken, breaker=breaker)
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 500
        time.sleep(0.3)
        assert http("POST", base, "/v1/estimate", ESTIMATE)[0] == 500
        assert breaker.state == "open"


class TestGracefulDrain:

    def test_inflight_completes_then_new_refused(self, daemon_factory):
        entered = threading.Event()
        gate = threading.Event()

        def slow(request):
            entered.set()
            gate.wait(10.0)
            return (200, {"drained": True})

        config = ServeConfig(port=0, deadline_s=30.0)
        daemon, base = daemon_factory(evaluate=slow, config=config)
        result = {}

        def fire():
            result["reply"] = http("POST", base, "/v1/estimate",
                                   ESTIMATE, timeout=40.0)

        inflight = threading.Thread(target=fire)
        inflight.start()
        assert entered.wait(10.0)

        # Begin draining while the request is mid-evaluation.
        daemon.service.reject_new()
        status, body, __ = http("POST", base, "/v1/estimate", ESTIMATE)
        assert status == 503
        assert body["error"]["code"] == "draining"

        gate.set()
        inflight.join(30.0)
        assert result["reply"][0] == 200
        assert result["reply"][1]["drained"] is True
        daemon.shutdown()


class TestAccessLog:
    """One structured access-log line per request, correlated with the
    ``serve.evaluate`` span through a shared ``trace_id``."""

    ACCESS = re.compile(
        r"access trace_id=(?P<trace_id>\S+) method=POST "
        r"path=(?P<path>\S+) status=(?P<status>\d+) "
        r"duration_ms=(?P<duration>[0-9.]+) client=\S+ "
        r"code=(?P<code>\S+)")

    def _access_records(self, caplog):
        return [self.ACCESS.search(record.getMessage())
                for record in caplog.records
                if record.getMessage().startswith("access ")]

    def _wait_for_access(self, caplog, count, timeout=5.0):
        """The handler logs *after* replying, so the client can race
        ahead of the log line — poll briefly."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            lines = self._access_records(caplog)
            if len(lines) >= count:
                return lines
            time.sleep(0.01)
        return self._access_records(caplog)

    def test_every_post_logs_one_access_line(self, daemon_factory,
                                             caplog):
        __, base = daemon_factory(evaluate=ok_evaluate)
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            assert http("POST", base, "/v1/estimate", ESTIMATE)[0] \
                == 200
            assert http("POST", base, "/v1/estimate", ESTIMATE)[0] \
                == 200
            lines = self._wait_for_access(caplog, 2)
        assert len(lines) == 2
        for match in lines:
            assert match is not None
            assert match["status"] == "200"
            assert match["code"] == "ok"
            assert float(match["duration"]) >= 0.0
        # Every request gets its own id.
        assert lines[0]["trace_id"] != lines[1]["trace_id"]

    def test_error_responses_log_their_code(self, daemon_factory,
                                            caplog):
        __, base = daemon_factory(evaluate=ok_evaluate)
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            status, body, __ = http("POST", base, "/v1/estimate",
                                    {"model": "no-such-model"})
            (match,) = self._wait_for_access(caplog, 1)
        assert status == 400
        assert match["status"] == "400"
        assert match["code"] == body["error"]["code"]

    def test_trace_id_is_stamped_on_the_evaluate_span(
            self, daemon_factory, caplog):
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        tracer.enable(reset=True)
        try:
            __, base = daemon_factory(evaluate=ok_evaluate)
            with caplog.at_level(logging.INFO, logger="repro.serve"):
                assert http("POST", base, "/v1/estimate",
                            ESTIMATE)[0] == 200
                (match,) = self._wait_for_access(caplog, 1)
            spans = [record for record in tracer.records()
                     if record.name == "serve.evaluate"]
        finally:
            tracer.disable()
            tracer.reset()
        assert spans, "no serve.evaluate span was recorded"
        stamped = ",".join(span.attrs.get("trace_ids", "")
                           for span in spans)
        assert match["trace_id"] in stamped.split(",")
