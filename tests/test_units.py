"""Unit tests for repro.units."""

import math

import pytest

from repro import units
from repro.units import (
    bits_to_bytes,
    bytes_to_bits,
    days_to_seconds,
    divisors,
    format_bytes,
    format_duration,
    format_si,
    gbps_to_bits_per_second,
    gbytes_per_second_to_bits_per_second,
    is_power_of_two,
    relative_error,
    seconds_to_days,
    seconds_to_hours,
    teraflops,
    to_teraflops,
)


class TestConversions:
    def test_seconds_to_days_round_trip(self):
        assert days_to_seconds(seconds_to_days(123456.0)) \
            == pytest.approx(123456.0)

    def test_one_day(self):
        assert seconds_to_days(86400.0) == 1.0

    def test_seconds_to_hours(self):
        assert seconds_to_hours(7200.0) == 2.0

    def test_bits_bytes_round_trip(self):
        assert bits_to_bytes(bytes_to_bits(17.0)) == 17.0

    def test_bytes_to_bits(self):
        assert bytes_to_bits(1.0) == 8.0

    def test_gbps(self):
        assert gbps_to_bits_per_second(200.0) == 2e11

    def test_gbytes_per_second(self):
        assert gbytes_per_second_to_bits_per_second(300.0) == 2.4e12

    def test_teraflops_round_trip(self):
        assert to_teraflops(teraflops(312.0)) == pytest.approx(312.0)

    def test_flops_per_mac(self):
        assert units.FLOPS_PER_MAC == 2.0


class TestFormatting:
    def test_format_si_teraflops(self):
        assert format_si(3.12e14, "FLOP/s") == "312 TFLOP/s"

    def test_format_si_below_kilo(self):
        assert format_si(42.0, "W") == "42 W"

    def test_format_si_zero(self):
        assert format_si(0, "B") == "0 B"

    def test_format_si_negative(self):
        assert format_si(-2e9, "B") == "-2 GB"

    def test_format_duration_days(self):
        assert format_duration(2 * 86400.0) == "2 days"

    def test_format_duration_ms(self):
        assert format_duration(0.004) == "4 ms"

    def test_format_duration_us(self):
        assert format_duration(5e-6) == "5 us"

    def test_format_duration_minutes(self):
        assert format_duration(120.0) == "2 min"

    def test_format_duration_hours(self):
        assert format_duration(7200.0) == "2 h"

    def test_format_duration_zero(self):
        assert format_duration(0.0) == "0 s"

    def test_format_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_format_bytes_gib(self):
        assert format_bytes(80 * 2**30) == "80 GiB"

    def test_format_bytes_small(self):
        assert format_bytes(12.0) == "12 B"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1.0)


class TestRelativeError:
    def test_exact(self):
        assert relative_error(100.0, 100.0) == 0.0

    def test_ten_percent(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_symmetric_sign(self):
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_zero_reference_raises(self):
        with pytest.raises(ZeroDivisionError):
            relative_error(1.0, 0.0)


class TestIntegerHelpers:
    def test_is_power_of_two_true(self):
        assert all(is_power_of_two(1 << k) for k in range(12))

    def test_is_power_of_two_false(self):
        assert not any(is_power_of_two(n) for n in (0, 3, 6, 12, -4))

    def test_divisors_of_12(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_divisors_of_1(self):
        assert divisors(1) == [1]

    def test_divisors_of_prime(self):
        assert divisors(13) == [1, 13]

    def test_divisors_sorted_and_complete(self):
        for n in (16, 36, 100, 1024):
            divs = divisors(n)
            assert divs == sorted(divs)
            assert all(n % d == 0 for d in divs)
            assert math.prod([]) == 1  # sanity for the stdlib
            assert len(divs) == sum(1 for d in range(1, n + 1)
                                    if n % d == 0)

    def test_divisors_rejects_zero(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestDimensionTags:
    """The Annotated dimension aliases added for the static analyzer."""

    ALIASES = {
        "Seconds": "s",
        "Bits": "bit",
        "Bytes": "byte",
        "BitsPerSecond": "bit/s",
        "Flops": "FLOP",
        "FlopsPerSecond": "FLOP/s",
        "Watts": "W",
    }

    def test_every_alias_wraps_float(self):
        for name in self.ALIASES:
            alias = getattr(units, name)
            assert alias.__origin__ is float

    def test_every_alias_carries_its_dim(self):
        for name, unit in self.ALIASES.items():
            alias = getattr(units, name)
            (tag,) = alias.__metadata__
            assert tag == units.Dim(unit)

    def test_dim_is_hashable_and_frozen(self):
        tag = units.Dim("s")
        assert hash(tag) == hash(units.Dim("s"))
        with pytest.raises(Exception):
            tag.unit = "ms"

    def test_annotation_is_runtime_transparent(self):
        def speed(distance: float) -> units.Seconds:
            return distance / 2.0

        assert speed(3.0) == 1.5


class TestPrefixes:
    def test_si_prefix_ladder(self):
        assert units.MEGA == 1e3 * units.KILO
        assert units.GIGA == 1e3 * units.MEGA
        assert units.TERA == 1e3 * units.GIGA
        assert units.PETA == 1e3 * units.TERA

    def test_micro_inverts_mega(self):
        assert units.MICRO * units.MEGA == pytest.approx(1.0)

    def test_iec_prefix_ladder(self):
        assert units.KIB == 2.0 ** 10
        assert units.MIB == units.KIB ** 2
        assert units.GIB == units.KIB ** 3
        assert units.TIB == units.KIB ** 4

    def test_iec_exceeds_si(self):
        assert units.GIB > units.GIGA
        assert units.KIB > units.KILO


class TestMoreRoundTrips:
    def test_seconds_days_inverse_both_ways(self):
        assert seconds_to_days(days_to_seconds(2.75)) \
            == pytest.approx(2.75)

    def test_one_day_in_hours(self):
        assert seconds_to_hours(days_to_seconds(1.0)) == 24.0

    def test_seconds_to_microseconds(self):
        assert units.seconds_to_microseconds(1.5) \
            == pytest.approx(1.5e6)

    def test_microseconds_round_trip_via_micro(self):
        assert units.seconds_to_microseconds(0.25) * units.MICRO \
            == pytest.approx(0.25)

    def test_flops_per_mac(self):
        assert units.FLOPS_PER_MAC == 2.0

    def test_teraflops_uses_si_tera(self):
        assert to_teraflops(3.0 * units.TERA) == pytest.approx(3.0)
        assert teraflops(3.0) == pytest.approx(3.0 * units.TERA)

    def test_gbps_uses_si_giga(self):
        assert gbps_to_bits_per_second(100.0) \
            == pytest.approx(100.0 * units.GIGA)
