"""Unit tests for the pairwise all-to-all simulator."""

import pytest

from repro.collectives.alltoall import simulate_pairwise_alltoall
from repro.hardware.interconnect import LinkSpec
from repro.parallelism.topology import PAIRWISE_ALLTOALL

LINK = LinkSpec("test", latency_s=1e-6, bandwidth_bits_per_s=1e9)


class TestAllToAll:
    def test_round_count(self):
        assert simulate_pairwise_alltoall(1e6, 8, LINK).n_rounds == 7

    def test_factor_matches_eq9(self):
        for n in (2, 4, 8, 16, 128):
            result = simulate_pairwise_alltoall(1e6, n, LINK)
            assert result.effective_topology_factor \
                == pytest.approx(PAIRWISE_ALLTOALL.factor(n))

    def test_single_rank_free(self):
        assert simulate_pairwise_alltoall(1e6, 1, LINK).time_s == 0.0

    def test_time_hand_computation(self):
        result = simulate_pairwise_alltoall(8e6, 8, LINK)
        expected = 7 * (1e-6 + 1e6 / 1e9)
        assert result.time_s == pytest.approx(expected)
