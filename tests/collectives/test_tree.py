"""Unit tests for the tree all-reduce simulator."""

import pytest

from repro.collectives.ring import simulate_ring_allreduce
from repro.collectives.tree import simulate_tree_allreduce
from repro.hardware.interconnect import LinkSpec
from repro.parallelism.topology import TREE

FAST = LinkSpec("fast", latency_s=1e-3, bandwidth_bits_per_s=1e12)
WIDE = LinkSpec("wide", latency_s=1e-9, bandwidth_bits_per_s=1e9)


class TestTree:
    def test_round_count_log2(self):
        assert simulate_tree_allreduce(1e6, 8, FAST).n_rounds == 6

    def test_round_count_rounds_up(self):
        assert simulate_tree_allreduce(1e6, 5, FAST).n_rounds == 6

    def test_factor_matches_closed_form(self):
        for n in (2, 4, 8, 9, 16, 33):
            result = simulate_tree_allreduce(1e6, n, FAST)
            assert result.effective_topology_factor \
                == pytest.approx(TREE.factor(n))

    def test_single_rank_free(self):
        assert simulate_tree_allreduce(1e6, 1, FAST).time_s == 0.0

    def test_tree_wins_on_latency_bound_links(self):
        """Small payload, high latency: fewer rounds win."""
        tree = simulate_tree_allreduce(1e3, 64, FAST)
        ring = simulate_ring_allreduce(1e3, 64, FAST)
        assert tree.time_s < ring.time_s

    def test_ring_wins_on_bandwidth_bound_links(self):
        """Huge payload, negligible latency: less volume wins."""
        tree = simulate_tree_allreduce(1e12, 64, WIDE)
        ring = simulate_ring_allreduce(1e12, 64, WIDE)
        assert ring.time_s < tree.time_s
