"""Unit tests for collective-simulator primitives."""

import pytest

from repro.collectives.primitives import (
    CollectiveResult,
    Round,
    even_shards,
)
from repro.errors import SimulationError
from repro.hardware.interconnect import LinkSpec

LINK = LinkSpec("test", latency_s=1e-6, bandwidth_bits_per_s=1e9)


class TestRound:
    def test_duration(self):
        assert Round(1e9).duration(LINK) == pytest.approx(1.0 + 1e-6)

    def test_rejects_negative_payload(self):
        with pytest.raises(SimulationError):
            Round(-1.0)


class TestCollectiveResult:
    def test_aggregates(self):
        result = CollectiveResult(
            name="x", n_ranks=4, payload_bits=4e6,
            rounds=(Round(1e6), Round(1e6)), link=LINK)
        assert result.n_rounds == 2
        assert result.bits_moved_per_rank == 2e6
        assert result.effective_topology_factor == pytest.approx(0.5)
        assert result.time_s == pytest.approx(2 * (1e-6 + 1e-3))

    def test_zero_payload_factor(self):
        result = CollectiveResult(name="x", n_ranks=4, payload_bits=0.0,
                                  rounds=(), link=LINK)
        assert result.effective_topology_factor == 0.0


class TestEvenShards:
    def test_splits_exactly(self):
        shards = even_shards(1e6, 8)
        assert len(shards) == 8
        assert sum(shards) == pytest.approx(1e6)

    def test_rejects_zero_ranks(self):
        with pytest.raises(SimulationError):
            even_shards(1e6, 0)
