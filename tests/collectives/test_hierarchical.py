"""Unit tests for the hierarchical all-reduce simulator."""

import pytest

from repro.collectives.hierarchical import simulate_hierarchical_allreduce
from repro.collectives.ring import simulate_ring_allreduce
from repro.hardware.interconnect import LinkSpec

FAST = LinkSpec("intra", latency_s=1e-6, bandwidth_bits_per_s=1e12)
SLOW = LinkSpec("inter", latency_s=5e-6, bandwidth_bits_per_s=1e11)


class TestHierarchical:
    def test_phases_are_sequential(self):
        result = simulate_hierarchical_allreduce(1e9, 8, 16, FAST, SLOW)
        assert result.time_s == pytest.approx(
            result.intra_reduce_scatter_s + result.inter_allreduce_s
            + result.intra_allgather_s)

    def test_inter_phase_carries_shard(self):
        """The key sharding property behind Eq. 6/11's inter terms."""
        result = simulate_hierarchical_allreduce(8e9, 8, 16, FAST, SLOW)
        flat = simulate_ring_allreduce(8e9 / 8, 16, SLOW)
        assert result.inter_allreduce_s == pytest.approx(flat.time_s)

    def test_inter_bits_per_nic(self):
        result = simulate_hierarchical_allreduce(8e9, 8, 16, FAST, SLOW)
        expected = 8e9 / 8 * 2 * 15 / 16
        assert result.inter_bits_per_nic == pytest.approx(expected)

    def test_degenerate_intra_only(self):
        result = simulate_hierarchical_allreduce(1e9, 8, 1, FAST, SLOW)
        flat = simulate_ring_allreduce(1e9, 8, FAST)
        assert result.time_s == pytest.approx(flat.time_s)
        assert result.inter_bits_per_nic == 0.0

    def test_degenerate_inter_only(self):
        result = simulate_hierarchical_allreduce(1e9, 1, 16, FAST, SLOW)
        flat = simulate_ring_allreduce(1e9, 16, SLOW)
        assert result.time_s == pytest.approx(flat.time_s)

    def test_hierarchy_beats_flat_ring_over_slow_links(self):
        """Reducing intra first then sending shards beats running the
        whole ring over the slow inter link."""
        hier = simulate_hierarchical_allreduce(8e9, 8, 16, FAST, SLOW)
        flat = simulate_ring_allreduce(8e9, 128, SLOW)
        assert hier.time_s < flat.time_s
