"""Unit tests for the ring all-reduce simulator."""

import pytest

from repro.collectives.ring import (
    simulate_ring_allgather,
    simulate_ring_allreduce,
    simulate_ring_reduce_scatter,
)
from repro.errors import SimulationError
from repro.hardware.interconnect import LinkSpec
from repro.parallelism.topology import RING

LINK = LinkSpec("test", latency_s=1e-6, bandwidth_bits_per_s=1e9)


class TestRingAllReduce:
    def test_round_count(self):
        result = simulate_ring_allreduce(1e6, 8, LINK)
        assert result.n_rounds == 2 * 7

    def test_factor_matches_closed_form(self):
        for n in (2, 3, 4, 7, 8, 16, 100):
            result = simulate_ring_allreduce(1e6, n, LINK)
            assert result.effective_topology_factor \
                == pytest.approx(RING.factor(n))

    def test_time_matches_latency_plus_volume(self):
        result = simulate_ring_allreduce(1e6, 4, LINK)
        expected = 6 * (1e-6 + (1e6 / 4) / 1e9)
        assert result.time_s == pytest.approx(expected)

    def test_single_rank_free(self):
        result = simulate_ring_allreduce(1e6, 1, LINK)
        assert result.n_rounds == 0
        assert result.time_s == 0.0

    def test_zero_payload_costs_latency_only(self):
        result = simulate_ring_allreduce(0.0, 4, LINK)
        assert result.time_s == pytest.approx(6e-6)

    def test_rejects_negative_payload(self):
        with pytest.raises(SimulationError):
            simulate_ring_allreduce(-1.0, 4, LINK)

    def test_rejects_zero_ranks(self):
        with pytest.raises(SimulationError):
            simulate_ring_allreduce(1e6, 0, LINK)


class TestHalves:
    def test_reduce_scatter_is_half_the_rounds(self):
        full = simulate_ring_allreduce(1e6, 8, LINK)
        half = simulate_ring_reduce_scatter(1e6, 8, LINK)
        assert half.n_rounds == full.n_rounds // 2
        assert half.time_s == pytest.approx(full.time_s / 2)

    def test_allgather_matches_reduce_scatter_cost(self):
        rs = simulate_ring_reduce_scatter(1e6, 8, LINK)
        ag = simulate_ring_allgather(1e6, 8, LINK)
        assert ag.time_s == pytest.approx(rs.time_s)

    def test_halves_compose_to_full(self):
        full = simulate_ring_allreduce(1e6, 8, LINK)
        rs = simulate_ring_reduce_scatter(1e6, 8, LINK)
        ag = simulate_ring_allgather(1e6, 8, LINK)
        assert rs.time_s + ag.time_s == pytest.approx(full.time_s)
