"""Unit tests for the fat-tree fabric model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.catalog import megatron_a100_cluster
from repro.network.fabric import (
    FabricLevel,
    apply_fabric,
    two_level_fat_tree,
)


def make_fabric(oversubscription=1.0, nodes_per_leaf=16, n_leaves=8):
    return two_level_fat_tree(
        port_bandwidth_bits_per_s=2e11,
        nodes_per_leaf=nodes_per_leaf,
        n_leaves=n_leaves,
        oversubscription=oversubscription)


class TestFabricLevel:
    def test_oversubscription_ratio(self):
        level = FabricLevel("leaf", down_ports=32, up_ports=8,
                            hop_latency_s=1e-6)
        assert level.oversubscription == 4.0

    def test_top_level_has_no_escape(self):
        top = FabricLevel("core", down_ports=8, up_ports=0,
                          hop_latency_s=1e-6)
        with pytest.raises(ConfigurationError):
            top.oversubscription

    def test_rejects_zero_down_ports(self):
        with pytest.raises(ConfigurationError):
            FabricLevel("x", down_ports=0, up_ports=1,
                        hop_latency_s=0.0)


class TestSpan:
    def test_capacity(self):
        assert make_fabric().max_nodes == 128

    def test_leaf_local_group(self):
        assert make_fabric().levels_to_span(16) == 1

    def test_cluster_wide_group(self):
        assert make_fabric().levels_to_span(128) == 2

    def test_rejects_oversized_group(self):
        with pytest.raises(ConfigurationError):
            make_fabric().levels_to_span(129)


class TestEffectiveLink:
    def test_full_bisection_keeps_port_speed(self):
        fabric = make_fabric(oversubscription=1.0)
        assert fabric.effective_bandwidth(128) == 2e11

    def test_taper_divides_bandwidth(self):
        fabric = make_fabric(oversubscription=4.0)
        assert fabric.effective_bandwidth(128) \
            == pytest.approx(2e11 / 4.0)

    def test_leaf_local_traffic_never_tapered(self):
        fabric = make_fabric(oversubscription=4.0)
        assert fabric.effective_bandwidth(16) == 2e11

    def test_latency_grows_with_span(self):
        fabric = make_fabric()
        assert fabric.effective_latency(128) \
            > fabric.effective_latency(16)

    def test_effective_link_is_linkspec(self):
        link = make_fabric().effective_link(64)
        assert link.bandwidth_bits_per_s > 0
        assert "fabric" in link.name

    def test_overprovisioned_capped_at_port_speed(self):
        fabric = make_fabric(oversubscription=0.5)
        assert fabric.effective_bandwidth(128) == 2e11


class TestApplyFabric:
    def test_replaces_inter_link(self):
        system = megatron_a100_cluster()
        fabric = make_fabric(oversubscription=4.0, nodes_per_leaf=16,
                             n_leaves=8)
        tapered = apply_fabric(system, fabric)
        assert tapered.node.inter_link.bandwidth_bits_per_s \
            == pytest.approx(5e10)
        # everything else untouched
        assert tapered.node.intra_link is system.node.intra_link
        assert tapered.n_nodes == system.n_nodes

    def test_oversubscription_slows_dp_training(self):
        """End to end: a 4:1 tapered fabric slows the DP-inter mapping."""
        from repro.core.model import AMPeD
        from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
        from repro.parallelism.spec import spec_from_totals
        from repro.transformer.zoo import MEGATRON_145B

        system = megatron_a100_cluster()
        spec = spec_from_totals(system, tp=8, dp=128)
        full = apply_fabric(system, make_fabric(1.0))
        tapered = apply_fabric(system, make_fabric(8.0))
        t_full = AMPeD(model=MEGATRON_145B, system=full,
                       parallelism=spec,
                       efficiency=CASE_STUDY_EFFICIENCY) \
            .estimate_batch(8192).total
        t_tapered = AMPeD(model=MEGATRON_145B, system=tapered,
                          parallelism=spec,
                          efficiency=CASE_STUDY_EFFICIENCY) \
            .estimate_batch(8192).total
        assert t_tapered > t_full
