"""Unit tests for carbon-footprint estimation."""

import pytest

from repro.cost.carbon import (
    COAL_HEAVY_GRID,
    HYDRO_GRID,
    GridCarbonIntensity,
    estimate_carbon,
)
from repro.energy.energy import EnergyEstimate
from repro.errors import ConfigurationError


def energy(kwh: float) -> EnergyEstimate:
    return EnergyEstimate(active_joules=kwh * 3.6e6, idle_joules=0.0,
                          n_accelerators=1)


class TestCarbon:
    def test_hand_computation(self):
        grid = GridCarbonIntensity("test", 500.0, pue=1.0)
        footprint = estimate_carbon(energy(1000.0), grid)
        assert footprint.kg_co2 == pytest.approx(500.0)
        assert footprint.tonnes_co2 == pytest.approx(0.5)

    def test_pue_scales_facility_energy(self):
        grid = GridCarbonIntensity("test", 500.0, pue=1.5)
        footprint = estimate_carbon(energy(1000.0), grid)
        assert footprint.facility_kwh == pytest.approx(1500.0)

    def test_grid_choice_matters(self):
        coal = estimate_carbon(energy(1000.0), COAL_HEAVY_GRID)
        hydro = estimate_carbon(energy(1000.0), HYDRO_GRID)
        assert coal.kg_co2 > 20 * hydro.kg_co2

    def test_rejects_negative_intensity(self):
        with pytest.raises(ConfigurationError):
            GridCarbonIntensity("x", -1.0)

    def test_rejects_pue_below_one(self):
        with pytest.raises(ConfigurationError):
            GridCarbonIntensity("x", 100.0, pue=0.9)
