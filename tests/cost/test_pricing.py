"""Unit tests for cloud-cost estimation."""

import pytest

from repro.core.breakdown import TrainingEstimate, TrainingTimeBreakdown
from repro.cost.pricing import (
    ON_DEMAND_A100,
    CloudPricing,
    estimate_cost,
)
from repro.errors import ConfigurationError


def run_estimate(batch_time_s: float, n_batches: int) -> TrainingEstimate:
    return TrainingEstimate(
        per_batch=TrainingTimeBreakdown(compute_forward=batch_time_s),
        n_batches=n_batches)


class TestCloudPricing:
    def test_effective_rate_applies_premium(self):
        pricing = CloudPricing("x", 4.0, interconnect_premium=1.25)
        assert pricing.effective_rate == 5.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigurationError):
            CloudPricing("x", 0.0)

    def test_rejects_discount_premium(self):
        with pytest.raises(ConfigurationError):
            CloudPricing("x", 4.0, interconnect_premium=0.8)


class TestEstimateCost:
    def test_gpu_hours(self):
        estimate = run_estimate(3600.0, 10)  # 10 hours wall clock
        cost = estimate_cost(estimate, 8,
                             CloudPricing("x", 2.0,
                                          minimum_billing_s=1.0))
        assert cost.gpu_hours == pytest.approx(80.0)
        assert cost.usd == pytest.approx(160.0)

    def test_billing_granularity_rounds_up(self):
        estimate = run_estimate(1800.0, 1)  # half an hour
        cost = estimate_cost(estimate, 1,
                             CloudPricing("x", 2.0,
                                          minimum_billing_s=3600.0))
        assert cost.billed_gpu_hours == pytest.approx(1.0)
        assert cost.gpu_hours == pytest.approx(0.5)
        assert cost.usd == pytest.approx(2.0)

    def test_exact_multiple_not_rounded(self):
        estimate = run_estimate(3600.0, 2)
        cost = estimate_cost(estimate, 1,
                             CloudPricing("x", 2.0,
                                          minimum_billing_s=3600.0))
        assert cost.billed_gpu_hours == pytest.approx(2.0)

    def test_rejects_zero_accelerators(self):
        with pytest.raises(ConfigurationError):
            estimate_cost(run_estimate(1.0, 1), 0, ON_DEMAND_A100)

    def test_gpt3_scale_sanity(self):
        """The paper's motivating figure: GPT-3 took ~3.1M GPU-hours,
        ~$4.6M.  A run with those GPU-hours at ~$1.5/h spot-era pricing
        lands in the millions."""
        hours_per_gpu = 3.1e6 / 1024
        estimate = run_estimate(hours_per_gpu * 3600.0, 1)
        cost = estimate_cost(
            estimate, 1024, CloudPricing("v100-era", 1.48,
                                         minimum_billing_s=1.0))
        assert cost.gpu_hours == pytest.approx(3.1e6, rel=1e-6)
        assert 4e6 < cost.usd < 5e6
