"""Unit tests for heterogeneous layer balancing."""

import pytest

from repro.errors import MappingError
from repro.hardware.catalog import A100, H100, V100_SXM3
from repro.hardware.interconnect import IB_HDR, NVLINK2, NVLINK3, NVLINK4
from repro.hetero.balance import balance_layers, balancing_gain, rebalance
from repro.hetero.model import stage_step_times
from repro.hetero.stages import (
    HeterogeneousPipeline,
    StagePlatform,
    even_assignment,
)
from repro.transformer.zoo import GPIPE_T24, GPT3_175B


def mixed_pipeline():
    fast = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
    slow = StagePlatform(V100_SXM3, tp_degree=8, intra_link=NVLINK2)
    stages = (fast, fast, slow, slow)
    return HeterogeneousPipeline(
        model=GPT3_175B, stages=stages, inter_stage_link=IB_HDR,
        layer_assignment=even_assignment(96, 4))


class TestBalanceLayers:
    def test_preserves_total(self):
        pipeline = mixed_pipeline()
        counts = balance_layers(96, pipeline.stages)
        assert sum(counts) == 96

    def test_fast_stages_get_more(self):
        pipeline = mixed_pipeline()
        counts = balance_layers(96, pipeline.stages)
        assert counts[0] > counts[2]

    def test_split_tracks_speed_ratio(self):
        pipeline = mixed_pipeline()
        counts = balance_layers(96, pipeline.stages)
        speed_ratio = (A100.peak_mac_flops_per_s
                       / V100_SXM3.peak_mac_flops_per_s)
        assert counts[0] / counts[2] \
            == pytest.approx(speed_ratio, rel=0.2)

    def test_homogeneous_stages_get_even_split(self):
        stage = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
        assert balance_layers(24, (stage,) * 4) == (6, 6, 6, 6)

    def test_every_stage_keeps_a_layer(self):
        turbo = StagePlatform(H100, tp_degree=8, intra_link=NVLINK4)
        slow = StagePlatform(V100_SXM3, tp_degree=1,
                             intra_link=NVLINK2)
        counts = balance_layers(8, (turbo,) * 3 + (slow,) * 5)
        assert all(count >= 1 for count in counts)
        assert sum(counts) == 8

    def test_rejects_too_few_layers(self):
        stage = StagePlatform(A100)
        with pytest.raises(MappingError):
            balance_layers(2, (stage,) * 3)


class TestRebalancing:
    def test_balancing_never_hurts(self):
        gain = balancing_gain(mixed_pipeline(), 32, 4)
        assert gain >= 1.0

    def test_balancing_helps_meaningfully_when_skewed(self):
        gain = balancing_gain(mixed_pipeline(), 32, 4)
        assert gain > 1.2  # A100 vs V100 is a 2.5x speed skew

    def test_balanced_bottleneck_is_tighter(self):
        pipeline = mixed_pipeline()
        balanced = rebalance(pipeline)
        spread = _step_spread(pipeline)
        balanced_spread = _step_spread(balanced)
        assert balanced_spread < spread

    def test_rebalance_on_homogeneous_is_even(self):
        stage = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
        pipeline = HeterogeneousPipeline(
            model=GPIPE_T24, stages=(stage,) * 4,
            inter_stage_link=IB_HDR,
            layer_assignment=even_assignment(24, 4))
        assert rebalance(pipeline).layer_assignment == (6, 6, 6, 6)


def _step_spread(pipeline) -> float:
    times = [t.step_s for t in stage_step_times(pipeline, 4)]
    return max(times) / min(times)
