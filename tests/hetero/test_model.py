"""Unit tests for heterogeneous pipeline estimation."""

import pytest

from repro.hardware.catalog import A100, V100_SXM3
from repro.hardware.interconnect import IB_HDR, NVLINK2, NVLINK3
from repro.hetero.model import (
    bottleneck_stage,
    estimate_batch_time,
    simulate_batch,
    stage_step_times,
)
from repro.hetero.stages import (
    HeterogeneousPipeline,
    StagePlatform,
    even_assignment,
)
from repro.transformer.zoo import GPIPE_T24


def make_pipeline(n_fast=2, n_slow=2, model=GPIPE_T24):
    fast = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
    slow = StagePlatform(V100_SXM3, tp_degree=8, intra_link=NVLINK2)
    stages = tuple([fast] * n_fast + [slow] * n_slow)
    return HeterogeneousPipeline(
        model=model, stages=stages, inter_stage_link=IB_HDR,
        layer_assignment=even_assignment(model.n_layers, len(stages)))


class TestStageTimes:
    def test_slow_stages_take_longer(self):
        pipeline = make_pipeline()
        times = stage_step_times(pipeline, 4)
        assert times[2].step_s > times[0].step_s

    def test_speed_ratio_tracks_hardware(self):
        pipeline = make_pipeline()
        times = stage_step_times(pipeline, 4)
        ratio = times[2].forward_s / times[0].forward_s
        hardware_ratio = (A100.peak_mac_flops_per_s
                          / V100_SXM3.peak_mac_flops_per_s)
        # communication and nonlinear terms dilute the pure ratio
        assert 1.3 < ratio <= hardware_ratio * 1.1

    def test_bottleneck_is_a_slow_stage(self):
        index, _ = bottleneck_stage(make_pipeline(), 4)
        assert index >= 2


class TestAnalyticalVsSimulated:
    def test_close_agreement(self):
        pipeline = make_pipeline()
        analytic = estimate_batch_time(pipeline, 32, 4)
        simulated = simulate_batch(pipeline, 32, 4).makespan_s
        assert analytic == pytest.approx(simulated, rel=0.1)

    def test_simulated_at_least_work_bound(self):
        pipeline = make_pipeline()
        times = stage_step_times(pipeline, 4)
        work_bound = 32 * max(t.step_s for t in times)
        assert simulate_batch(pipeline, 32, 4).makespan_s >= work_bound

    def test_homogeneous_pipeline_matches_gpipe_closed_form(self):
        fast = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
        pipeline = HeterogeneousPipeline(
            model=GPIPE_T24, stages=(fast,) * 4,
            inter_stage_link=IB_HDR,
            layer_assignment=even_assignment(24, 4))
        times = stage_step_times(pipeline, 4)
        step = times[0].step_s + 2 * times[0].comm_s
        analytic = estimate_batch_time(pipeline, 16, 4)
        assert analytic == pytest.approx((16 + 3) * step, rel=1e-9)


class TestSchedules:
    def test_1f1b_close_to_gpipe_makespan(self):
        """With *heterogeneous* stage times the two schedules are no
        longer exactly equal (1F1B's alternation can stall fast stages
        behind slow downstream backwards), but they stay within a few
        percent — 1F1B's win remains memory, not speed."""
        pipeline = make_pipeline()
        gpipe = simulate_batch(pipeline, 32, 4, schedule="gpipe")
        one_f = simulate_batch(pipeline, 32, 4, schedule="1f1b")
        assert one_f.makespan_s \
            == pytest.approx(gpipe.makespan_s, rel=0.1)

    def test_bubble_fraction_reported(self):
        pipeline = make_pipeline()
        result = simulate_batch(pipeline, 8, 4)
        # heterogeneous stages idle more than the uniform bound, since
        # fast stages wait on slow ones
        assert result.bubble_fraction > 0.0


class TestScalingBehaviour:
    def test_more_microbatches_amortize_fill(self):
        pipeline = make_pipeline()
        few = estimate_batch_time(pipeline, 8, 4) / 8
        many = estimate_batch_time(pipeline, 64, 4) / 64
        assert many < few

    def test_all_fast_beats_mixed(self):
        mixed = make_pipeline(2, 2)
        all_fast = make_pipeline(4, 0)
        assert estimate_batch_time(all_fast, 32, 4) \
            < estimate_batch_time(mixed, 32, 4)
