"""Unit tests for heterogeneous pipeline descriptions."""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.hardware.catalog import A100, V100_SXM3
from repro.hardware.interconnect import IB_HDR, NVLINK2, NVLINK3
from repro.hetero.stages import (
    HeterogeneousPipeline,
    StagePlatform,
    even_assignment,
)
from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.transformer.zoo import GPIPE_T24


def mixed_stages(n_fast=2, n_slow=2):
    fast = StagePlatform(A100, tp_degree=8, intra_link=NVLINK3)
    slow = StagePlatform(V100_SXM3, tp_degree=8, intra_link=NVLINK2)
    return tuple([fast] * n_fast + [slow] * n_slow)


class TestStagePlatform:
    def test_effective_flops_aggregate_tp(self):
        stage = StagePlatform(A100, tp_degree=8)
        assert stage.effective_flops_per_s \
            == 8 * A100.peak_mac_flops_per_s

    def test_speed_applies_efficiency(self):
        eff = MicrobatchEfficiency(a=0.5, b=0.0, floor=0.5, ceiling=0.5)
        stage = StagePlatform(A100, tp_degree=1, efficiency=eff)
        assert stage.speed_at(8) \
            == pytest.approx(0.5 * A100.peak_mac_flops_per_s)

    def test_default_efficiency_installed(self):
        assert StagePlatform(A100).efficiency is not None

    def test_rejects_zero_tp(self):
        with pytest.raises(ConfigurationError):
            StagePlatform(A100, tp_degree=0)


class TestEvenAssignment:
    def test_divisible(self):
        assert even_assignment(24, 4) == (6, 6, 6, 6)

    def test_remainder_spreads_forward(self):
        assert even_assignment(10, 4) == (3, 3, 2, 2)

    def test_preserves_total(self):
        for layers, stages in ((24, 5), (96, 7), (13, 13)):
            assert sum(even_assignment(layers, stages)) == layers

    def test_rejects_more_stages_than_layers(self):
        with pytest.raises(MappingError):
            even_assignment(3, 4)


class TestPipelineValidation:
    def test_accepts_consistent_assignment(self):
        HeterogeneousPipeline(
            model=GPIPE_T24, stages=mixed_stages(),
            inter_stage_link=IB_HDR,
            layer_assignment=even_assignment(24, 4))

    def test_rejects_wrong_sum(self):
        with pytest.raises(MappingError):
            HeterogeneousPipeline(
                model=GPIPE_T24, stages=mixed_stages(),
                inter_stage_link=IB_HDR,
                layer_assignment=(6, 6, 6, 5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(MappingError):
            HeterogeneousPipeline(
                model=GPIPE_T24, stages=mixed_stages(),
                inter_stage_link=IB_HDR,
                layer_assignment=(12, 12))

    def test_rejects_empty_stage(self):
        with pytest.raises(MappingError):
            HeterogeneousPipeline(
                model=GPIPE_T24, stages=mixed_stages(),
                inter_stage_link=IB_HDR,
                layer_assignment=(24, 0, 0, 0))

    def test_accelerator_count(self):
        pipeline = HeterogeneousPipeline(
            model=GPIPE_T24, stages=mixed_stages(),
            inter_stage_link=IB_HDR,
            layer_assignment=even_assignment(24, 4))
        assert pipeline.n_accelerators == 32
