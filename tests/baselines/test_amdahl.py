"""Unit tests for ideal/Amdahl scaling baselines."""

import pytest

from repro.baselines.amdahl import (
    amdahl_scaling,
    fitted_serial_fraction,
    ideal_scaling,
)
from repro.errors import ConfigurationError


class TestIdeal:
    def test_inverse_workers(self):
        assert ideal_scaling([1, 2, 4]) == [1.0, 0.5, 0.25]

    def test_base_not_one(self):
        assert ideal_scaling([2, 8]) == [1.0, 0.25]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ideal_scaling([])


class TestAmdahl:
    def test_zero_serial_is_ideal(self):
        assert amdahl_scaling([1, 2, 4], 0.0) == ideal_scaling([1, 2, 4])

    def test_serial_fraction_floors_time(self):
        curve = amdahl_scaling([1, 2, 4, 1024], 0.2)
        assert curve[-1] == pytest.approx(0.2, abs=0.01)

    def test_normalized_at_base(self):
        assert amdahl_scaling([4, 8], 0.3)[0] == pytest.approx(1.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            amdahl_scaling([1, 2], 1.0)


class TestFit:
    def test_recovers_known_fraction(self):
        workers = [1, 2, 4, 8, 16]
        for f in (0.0, 0.1, 0.3, 0.7):
            curve = amdahl_scaling(workers, f)
            assert fitted_serial_fraction(workers, curve) \
                == pytest.approx(f, abs=1e-9)

    def test_clamped_to_unit_interval(self):
        # superlinear curve would fit a negative fraction; clamp to 0
        workers = [1, 2, 4]
        curve = [1.0, 0.4, 0.15]
        assert fitted_serial_fraction(workers, curve) >= 0.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            fitted_serial_fraction([1, 2], [1.0])
