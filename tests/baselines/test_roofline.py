"""Unit tests for the roofline baseline."""

import pytest

from repro.baselines.roofline import (
    arithmetic_intensity,
    roofline_batch_time,
)
from repro.errors import ConfigurationError
from repro.hardware.catalog import A100
from repro.hardware.precision import MIXED_FP16
from repro.transformer.params import model_flops_per_batch
from repro.transformer.zoo import MEGATRON_145B


class TestRoofline:
    def test_compute_ceiling(self, tiny_model):
        point = roofline_batch_time(tiny_model, A100, MIXED_FP16, 64, 4)
        expected = model_flops_per_batch(tiny_model, 64) \
            / (A100.peak_mac_flops_per_s * 4)
        assert point.compute_time_s == pytest.approx(expected)

    def test_time_is_max_of_ceilings(self, tiny_model):
        point = roofline_batch_time(tiny_model, A100, MIXED_FP16, 64, 4)
        assert point.time_s == max(point.compute_time_s,
                                   point.memory_time_s)

    def test_large_batches_are_compute_bound(self):
        point = roofline_batch_time(MEGATRON_145B, A100, MIXED_FP16,
                                    1024, 1024)
        assert point.compute_bound

    def test_no_weight_reuse_is_memory_bound(self):
        point = roofline_batch_time(MEGATRON_145B, A100, MIXED_FP16,
                                    1024, 1024, weight_reuse=1.0)
        assert not point.compute_bound

    def test_roofline_below_amped(self, tiny_amped, tiny_model,
                                  small_system):
        """The roofline ignores communication, so it lower-bounds the
        AMPeD estimate at equal efficiency assumptions."""
        from repro.parallelism.microbatch import PERFECT_EFFICIENCY
        import dataclasses
        ideal = dataclasses.replace(tiny_amped,
                                    efficiency=PERFECT_EFFICIENCY)
        point = roofline_batch_time(tiny_model, A100, MIXED_FP16, 64,
                                    small_system.n_accelerators)
        assert point.compute_time_s \
            <= ideal.estimate_batch(64).total * 1.001

    def test_rejects_zero_accelerators(self, tiny_model):
        with pytest.raises(ConfigurationError):
            roofline_batch_time(tiny_model, A100, MIXED_FP16, 64, 0)

    def test_rejects_sub_one_reuse(self, tiny_model):
        with pytest.raises(ConfigurationError):
            roofline_batch_time(tiny_model, A100, MIXED_FP16, 64, 4,
                                weight_reuse=0.5)


class TestIntensity:
    def test_grows_with_batch(self, tiny_model):
        low = arithmetic_intensity(tiny_model, 1, MIXED_FP16)
        high = arithmetic_intensity(tiny_model, 64, MIXED_FP16)
        assert high == pytest.approx(64 * low)
