"""Unit tests for checkpoint sizing and the Young/Daly interval."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.hardware.precision import MIXED_FP16
from repro.runtime.checkpoint import (
    CheckpointSpec,
    checkpoint_bytes,
    checkpoint_overhead_fraction,
    checkpoint_write_seconds,
    young_daly_interval,
)
from repro.transformer.params import total_parameters
from repro.transformer.zoo import MEGATRON_145B


class TestCheckpointSize:
    def test_bytes_formula(self, tiny_model):
        params = total_parameters(tiny_model)
        assert checkpoint_bytes(tiny_model, MIXED_FP16) \
            == pytest.approx(params * (2 + 12))

    def test_145b_checkpoint_about_2tb(self):
        size = checkpoint_bytes(MEGATRON_145B, MIXED_FP16)
        assert size == pytest.approx(2.04e12, rel=0.05)

    def test_write_time_scales_with_writers(self, tiny_model):
        one = checkpoint_write_seconds(tiny_model, MIXED_FP16, 1e10)
        eight = checkpoint_write_seconds(tiny_model, MIXED_FP16, 1e10,
                                         parallel_writers=8)
        assert eight == pytest.approx(one / 8)

    def test_rejects_zero_bandwidth(self, tiny_model):
        with pytest.raises(ConfigurationError):
            checkpoint_write_seconds(tiny_model, MIXED_FP16, 0.0)


class TestYoungDaly:
    def test_formula(self):
        assert young_daly_interval(60.0, 86400.0) \
            == pytest.approx(math.sqrt(2 * 60 * 86400))

    def test_interval_grows_with_mtbf(self):
        assert young_daly_interval(60.0, 4 * 86400.0) \
            == pytest.approx(2 * young_daly_interval(60.0, 86400.0))

    def test_optimality(self):
        """The Young/Daly interval minimizes the combined checkpoint +
        lost-work overhead delta/tau ... approximated as
        delta/tau + tau/(2*MTBF)."""
        delta, mtbf = 120.0, 2 * 86400.0
        optimum = young_daly_interval(delta, mtbf)

        def overhead(tau):
            return delta / tau + tau / (2 * mtbf)

        assert overhead(optimum) <= overhead(optimum * 0.8)
        assert overhead(optimum) <= overhead(optimum * 1.25)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            young_daly_interval(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            young_daly_interval(10.0, 0.0)


class TestOverheadFraction:
    def test_formula(self):
        assert checkpoint_overhead_fraction(60.0, 540.0) \
            == pytest.approx(0.1)

    def test_zero_cost_zero_overhead(self):
        assert checkpoint_overhead_fraction(0.0, 600.0) == 0.0

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointSpec(write_seconds=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointSpec(write_seconds=10.0, restart_seconds=-1.0)
