"""Unit tests for the failure-aware campaign model."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.checkpoint import CheckpointSpec, young_daly_interval
from repro.runtime.reliability import (
    CampaignEstimate,
    FailureModel,
    campaign_estimate,
)


class TestFailureModel:
    def test_system_mtbf_divides_by_devices(self):
        model = FailureModel(device_mtbf_hours=50000, n_devices=1024)
        assert model.system_mtbf_seconds \
            == pytest.approx(50000 * 3600 / 1024)

    def test_thousand_gpu_cluster_fails_every_couple_days(self):
        model = FailureModel(device_mtbf_hours=50000, n_devices=1024)
        assert 1.0 < model.system_mtbf_seconds / 86400 < 3.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            FailureModel(device_mtbf_hours=0, n_devices=8)
        with pytest.raises(ConfigurationError):
            FailureModel(device_mtbf_hours=1000, n_devices=0)


class TestCampaign:
    @pytest.fixture
    def scenario(self):
        checkpoint = CheckpointSpec(write_seconds=120.0,
                                    restart_seconds=600.0)
        failures = FailureModel(device_mtbf_hours=50000,
                                n_devices=1024)
        return checkpoint, failures

    def test_defaults_to_young_daly(self, scenario):
        checkpoint, failures = scenario
        estimate = campaign_estimate(30 * 86400.0, checkpoint, failures)
        assert estimate.checkpoint_interval_s == pytest.approx(
            young_daly_interval(checkpoint.write_seconds,
                                failures.system_mtbf_seconds))

    def test_overheads_positive_and_modest(self, scenario):
        checkpoint, failures = scenario
        estimate = campaign_estimate(30 * 86400.0, checkpoint, failures)
        assert 0 < estimate.checkpoint_overhead < 0.2
        assert 0 < estimate.failure_overhead < 0.2
        assert estimate.expected_seconds > estimate.clean_seconds

    def test_month_long_run_sees_failures(self, scenario):
        checkpoint, failures = scenario
        estimate = campaign_estimate(30 * 86400.0, checkpoint, failures)
        assert estimate.expected_failures > 5

    def test_young_daly_beats_extreme_intervals(self, scenario):
        checkpoint, failures = scenario
        clean = 30 * 86400.0
        optimal = campaign_estimate(clean, checkpoint, failures)
        too_often = campaign_estimate(clean, checkpoint, failures,
                                      interval_seconds=300.0)
        too_rare = campaign_estimate(
            clean, checkpoint, failures,
            interval_seconds=failures.system_mtbf_seconds)
        assert optimal.expected_seconds <= too_often.expected_seconds
        assert optimal.expected_seconds <= too_rare.expected_seconds

    def test_reliable_hardware_shrinks_overhead(self, scenario):
        checkpoint, _ = scenario
        flaky = FailureModel(device_mtbf_hours=20000, n_devices=1024)
        solid = FailureModel(device_mtbf_hours=200000, n_devices=1024)
        clean = 30 * 86400.0
        assert campaign_estimate(clean, checkpoint,
                                 solid).total_overhead \
            < campaign_estimate(clean, checkpoint,
                                flaky).total_overhead

    def test_estimate_days(self):
        estimate = CampaignEstimate(
            clean_seconds=86400.0, checkpoint_interval_s=3600.0,
            checkpoint_overhead=0.05, failure_overhead=0.05,
            expected_failures=1.0)
        assert estimate.expected_days == pytest.approx(1.1)

    def test_rejects_bad_clean_time(self, scenario):
        checkpoint, failures = scenario
        with pytest.raises(ConfigurationError):
            campaign_estimate(0.0, checkpoint, failures)
