"""Unit tests for batch-size ramps."""

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec
from repro.runtime.ramp import (
    BatchSizeRamp,
    ramp_overhead,
    ramped_training_time,
)


@pytest.fixture
def amped(tiny_model, small_system):
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                 efficiency=CASE_STUDY_EFFICIENCY)


class TestStages:
    def test_covers_total_tokens(self):
        ramp = BatchSizeRamp(initial_batch=32, full_batch=256,
                             ramp_tokens=1e6, n_stages=4)
        stages = ramp.stages(1e7)
        assert sum(tokens for _, tokens in stages) \
            == pytest.approx(1e7)

    def test_batches_interpolate_upward(self):
        ramp = BatchSizeRamp(initial_batch=32, full_batch=256,
                             ramp_tokens=1e6, n_stages=4)
        batches = [batch for batch, _ in ramp.stages(1e7)]
        assert batches == sorted(batches)
        assert batches[-1] == 256
        assert batches[0] < 256

    def test_no_ramp_is_single_stage(self):
        ramp = BatchSizeRamp(initial_batch=256, full_batch=256,
                             ramp_tokens=1e6)
        assert ramp.stages(1e7) == [(256, 1e7)]

    def test_short_run_truncates_ramp(self):
        ramp = BatchSizeRamp(initial_batch=32, full_batch=256,
                             ramp_tokens=1e9, n_stages=4)
        stages = ramp.stages(1e6)
        assert sum(tokens for _, tokens in stages) \
            == pytest.approx(1e6)

    def test_rejects_inverted_ramp(self):
        with pytest.raises(ConfigurationError):
            BatchSizeRamp(initial_batch=256, full_batch=32,
                          ramp_tokens=1e6)

    def test_rejects_zero_tokens(self):
        ramp = BatchSizeRamp(initial_batch=32, full_batch=256,
                             ramp_tokens=1e6)
        with pytest.raises(ConfigurationError):
            ramp.stages(0)


class TestRampedTime:
    def test_flat_ramp_matches_direct_estimate(self, amped,
                                               tiny_model):
        ramp = BatchSizeRamp(initial_batch=256, full_batch=256,
                             ramp_tokens=0.0)
        tokens = 256 * tiny_model.sequence_length * 50
        direct = amped.estimate_batch(256).total * 50
        assert ramped_training_time(amped, ramp, tokens) \
            == pytest.approx(direct)

    def test_ramp_slower_than_flat(self, amped, tiny_model):
        """Small early batches run at lower efficiency, so the ramped
        run takes longer for the same tokens."""
        tokens = 256 * tiny_model.sequence_length * 200
        ramp = BatchSizeRamp(initial_batch=32, full_batch=256,
                             ramp_tokens=tokens / 4, n_stages=4)
        overhead = ramp_overhead(amped, ramp, tokens)
        assert overhead > 0.0

    def test_overhead_shrinks_with_shorter_ramp(self, amped,
                                                tiny_model):
        tokens = 256 * tiny_model.sequence_length * 200
        long_ramp = BatchSizeRamp(32, 256, ramp_tokens=tokens / 2)
        short_ramp = BatchSizeRamp(32, 256, ramp_tokens=tokens / 10)
        assert ramp_overhead(amped, short_ramp, tokens) \
            < ramp_overhead(amped, long_ramp, tokens)
