"""Unit tests for metric helpers."""

import pytest

from repro.core.metrics import (
    best_configuration,
    efficiency_of_scaling,
    normalize_to_first,
    speedups,
)
from repro.errors import ConfigurationError


class TestNormalize:
    def test_first_is_one(self):
        assert normalize_to_first([4.0, 2.0, 1.0]) == [1.0, 0.5, 0.25]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            normalize_to_first([])

    def test_rejects_zero_first(self):
        with pytest.raises(ConfigurationError):
            normalize_to_first([0.0, 1.0])


class TestSpeedups:
    def test_table3_convention(self):
        assert speedups([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            speedups([1.0, 0.0])


class TestScalingEfficiency:
    def test_ideal_scaling_is_one(self):
        times = [8.0, 4.0, 2.0, 1.0]
        workers = [1, 2, 4, 8]
        assert efficiency_of_scaling(times, workers) \
            == pytest.approx([1.0] * 4)

    def test_sublinear_below_one(self):
        eff = efficiency_of_scaling([8.0, 5.0], [1, 2])
        assert eff[1] < 1.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            efficiency_of_scaling([1.0], [1, 2])


class TestBestConfiguration:
    def test_picks_minimum(self):
        key, value = best_configuration({"a": 3.0, "b": 1.0, "c": 2.0})
        assert (key, value) == ("b", 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            best_configuration({})
