"""Unit tests for ZeRO configuration."""

import pytest

from repro.core.zero import NO_ZERO, ZeroConfig
from repro.errors import ConfigurationError


class TestStages:
    def test_plain_dp_has_no_overhead(self):
        assert NO_ZERO.communication_overhead == 0.0

    def test_stage3_default_overhead(self):
        assert ZeroConfig(stage=3).communication_overhead == 0.5

    def test_explicit_override_wins(self):
        assert ZeroConfig(stage=3, forward_overhead=0.2) \
            .communication_overhead == 0.2

    def test_sharding_flags_are_cumulative(self):
        stage1 = ZeroConfig(stage=1)
        stage2 = ZeroConfig(stage=2)
        stage3 = ZeroConfig(stage=3)
        assert stage1.shards_optimizer_states
        assert not stage1.shards_gradients
        assert stage2.shards_gradients
        assert not stage2.shards_parameters
        assert stage3.shards_parameters

    def test_rejects_unknown_stage(self):
        with pytest.raises(ConfigurationError):
            ZeroConfig(stage=4)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            ZeroConfig(stage=1, forward_overhead=-0.1)
