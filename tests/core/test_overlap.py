"""Unit tests for the communication-overlap knob."""

import dataclasses

import pytest

from repro.core.model import AMPeD
from repro.errors import ConfigurationError
from repro.parallelism.microbatch import CASE_STUDY_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec


@pytest.fixture
def base(tiny_model, small_system):
    return AMPeD(model=tiny_model, system=small_system,
                 parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                 efficiency=CASE_STUDY_EFFICIENCY)


class TestCommOverlap:
    def test_zero_overlap_is_default(self, base):
        assert base.comm_overlap_fraction == 0.0

    def test_half_overlap_halves_comm(self, base):
        overlapped = dataclasses.replace(base,
                                         comm_overlap_fraction=0.5)
        assert overlapped.estimate_batch(64).comm_time \
            == pytest.approx(base.estimate_batch(64).comm_time / 2)

    def test_compute_untouched(self, base):
        overlapped = dataclasses.replace(base,
                                         comm_overlap_fraction=0.5)
        assert overlapped.estimate_batch(64).compute_time \
            == pytest.approx(base.estimate_batch(64).compute_time)

    def test_total_monotone_in_overlap(self, base):
        totals = [dataclasses.replace(
            base, comm_overlap_fraction=fraction)
            .estimate_batch(64).total
            for fraction in (0.0, 0.25, 0.5, 0.75)]
        assert totals == sorted(totals, reverse=True)

    def test_applies_to_pp_and_bubbles(self, tiny_model, small_system):
        spec = ParallelismSpec(pp_intra=4, dp_inter=4,
                               n_microbatches=8)
        base = AMPeD(model=tiny_model, system=small_system,
                     parallelism=spec,
                     efficiency=CASE_STUDY_EFFICIENCY)
        overlapped = dataclasses.replace(base,
                                         comm_overlap_fraction=0.5)
        assert overlapped.estimate_batch(64).comm_pp \
            == pytest.approx(base.estimate_batch(64).comm_pp / 2)
        # bubbles shrink too: the exposed comm inside Eq. 8 halves
        assert overlapped.estimate_batch(64).bubble \
            < base.estimate_batch(64).bubble

    def test_rejects_full_overlap(self, tiny_model, small_system):
        with pytest.raises(ConfigurationError):
            AMPeD(model=tiny_model, system=small_system,
                  parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                  comm_overlap_fraction=1.0)

    def test_rejects_negative(self, tiny_model, small_system):
        with pytest.raises(ConfigurationError):
            AMPeD(model=tiny_model, system=small_system,
                  parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                  comm_overlap_fraction=-0.1)
