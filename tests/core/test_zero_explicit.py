"""Unit tests for the explicit ZeRO-3 communication modeling."""

import dataclasses

import pytest

from repro.core.communication import (
    CommEnvironment,
    zero_gather_components,
    zero_gather_time,
)
from repro.core.model import AMPeD
from repro.core.zero import ZeroConfig, parameter_gather_bits
from repro.errors import ConfigurationError
from repro.hardware.precision import MIXED_FP16
from repro.parallelism.spec import ParallelismSpec


def env_for(system, **spec_kwargs) -> CommEnvironment:
    return CommEnvironment(system=system,
                           parallelism=ParallelismSpec(**spec_kwargs),
                           precision=MIXED_FP16)


class TestGatherBits:
    def test_tp_shards(self):
        assert parameter_gather_bits(1e6, 16, tp_degree=4) == 4e6

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            parameter_gather_bits(-1.0, 16)


class TestGatherComponents:
    def test_half_the_allreduce(self, small_system):
        """An all-gather is one ring phase; the gradient all-reduce is
        two — so the gather costs half at equal volume and degree."""
        from repro.core.communication import gradient_comm_components
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        gather = zero_gather_components(env, 1e8)
        reduce_ = gradient_comm_components(env, 1e8)
        assert gather["intra"] == pytest.approx(reduce_["intra"] / 2)
        assert gather["inter"] == pytest.approx(reduce_["inter"] / 2)

    def test_no_dp_no_cost(self, small_system):
        env = env_for(small_system, tp_intra=4, pp_inter=4)
        assert zero_gather_time(env, 1e8) == 0.0

    def test_rejects_negative_params(self, small_system):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        with pytest.raises(ConfigurationError):
            zero_gather_time(env, -1.0)


class TestModelIntegration:
    @pytest.fixture
    def base(self, tiny_model, small_system):
        return AMPeD(model=tiny_model, system=small_system,
                     parallelism=ParallelismSpec(dp_intra=4,
                                                 dp_inter=4),
                     zero=ZeroConfig(stage=3))

    def test_explicit_mode_adds_zero_component(self, base):
        explicit = dataclasses.replace(base, zero_explicit_comm=True)
        breakdown = explicit.estimate_batch(64)
        assert breakdown.comm_zero > 0.0

    def test_factor_mode_has_no_zero_component(self, base):
        breakdown = base.estimate_batch(64)
        assert breakdown.comm_zero == 0.0

    def test_explicit_mode_disables_the_flat_factor(self, base,
                                                    tiny_model,
                                                    small_system):
        """With explicit gathers on, Eq. 5's (1 + M_f_DP) factor must
        not double-charge: on a pure-DP mapping with no TP/PP/MoE, the
        forward comm is zero either way, so the factor's effect is only
        visible through a TP mapping."""
        spec = ParallelismSpec(tp_intra=2, dp_intra=2, dp_inter=4)
        factor = AMPeD(model=tiny_model, system=small_system,
                       parallelism=spec, zero=ZeroConfig(stage=3))
        explicit = dataclasses.replace(factor, zero_explicit_comm=True)
        assert explicit.estimate_batch(64).comm_tp \
            < factor.estimate_batch(64).comm_tp

    def test_stage1_explicit_is_noop(self, tiny_model, small_system):
        """Stages below 3 do not shard parameters: nothing to gather."""
        amped = AMPeD(model=tiny_model, system=small_system,
                      parallelism=ParallelismSpec(dp_intra=4,
                                                  dp_inter=4),
                      zero=ZeroConfig(stage=1), zero_explicit_comm=True)
        assert amped.estimate_batch(64).comm_zero == 0.0

    def test_summary_dict_includes_zero(self, base):
        explicit = dataclasses.replace(base, zero_explicit_comm=True)
        summary = explicit.estimate_batch(64).summary_dict()
        assert "zero_comm" in summary
        assert sum(summary.values()) \
            == pytest.approx(explicit.estimate_batch(64).total)
