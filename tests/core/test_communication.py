"""Unit tests for Eqs. 5, 6, 7, 9, 10, 11."""

import dataclasses

import pytest

from repro.core.communication import (
    CommEnvironment,
    backward_comm_time,
    clear_comm_cache,
    comm_cache_stats,
    forward_comm_components,
    forward_comm_time,
    gradient_comm_components,
    gradient_comm_time,
    moe_comm_time,
    pp_activation_count,
    pp_comm_time,
    tp_activation_count,
    tp_comm_time,
)
from repro.errors import ConfigurationError
from repro.hardware.precision import MIXED_FP16
from repro.parallelism.spec import ParallelismSpec
from repro.parallelism.topology import RING


def env_for(system, **spec_kwargs) -> CommEnvironment:
    return CommEnvironment(
        system=system,
        parallelism=ParallelismSpec(**spec_kwargs),
        precision=MIXED_FP16,
    )


class TestActivationVolumes:
    def test_tp_volume_is_2bsh(self, tiny_model):
        assert tp_activation_count(tiny_model, 16) \
            == 2 * 16 * 32 * 64

    def test_pp_volume_is_bsh(self, tiny_model):
        assert pp_activation_count(tiny_model, 16) == 16 * 32 * 64


class TestTPComm:
    def test_eq6_hand_computation(self, small_system, tiny_model):
        env = env_for(small_system, tp_intra=4, dp_inter=4)
        link = small_system.node.intra_link
        n_act = tp_activation_count(tiny_model, 8.0)
        expected = (link.latency_s * RING.steps(4)
                    + n_act * 16 / link.bandwidth_bits_per_s
                    * RING.factor(4))
        assert tp_comm_time(env, tiny_model, 8.0, "intra") \
            == pytest.approx(expected)

    def test_degree_one_is_free(self, small_system, tiny_model):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        assert tp_comm_time(env, tiny_model, 8.0, "intra") == 0.0
        assert tp_comm_time(env, tiny_model, 8.0, "inter") == 0.0

    def test_inter_uses_nic_share(self, small_system, tiny_model):
        env = env_for(small_system, tp_inter=4, dp_intra=4)
        intra_like = tp_comm_time(env, tiny_model, 8.0, "inter")
        assert intra_like > 0.0

    def test_hierarchical_sharding(self, small_system, tiny_model):
        """With tp_intra > 1, the inter phase carries 1/tp_intra of the
        payload per NIC."""
        flat = env_for(small_system, tp_inter=4, dp_intra=4)
        sharded = env_for(small_system, tp_intra=4, tp_inter=4)
        t_flat = tp_comm_time(flat, tiny_model, 8.0, "inter")
        t_sharded = tp_comm_time(sharded, tiny_model, 8.0, "inter")
        link = small_system.node.effective_inter_link
        latency = RING.steps(4) * link.latency_s
        assert (t_sharded - latency) \
            == pytest.approx((t_flat - latency) / 4)

    def test_rejects_bad_level(self, small_system, tiny_model):
        env = env_for(small_system, tp_intra=4, dp_inter=4)
        with pytest.raises(ConfigurationError):
            tp_comm_time(env, tiny_model, 8.0, "sideways")


class TestPPComm:
    def test_eq7_hand_computation(self, small_system, tiny_model):
        env = env_for(small_system, pp_intra=4, dp_inter=4)
        link = small_system.node.intra_link
        bits = pp_activation_count(tiny_model, 8.0) * 16
        expected = (link.latency_s
                    + bits / link.bandwidth_bits_per_s) \
            / tiny_model.n_layers
        assert pp_comm_time(env, tiny_model, 8.0, "intra") \
            == pytest.approx(expected)

    def test_degree_one_is_free(self, small_system, tiny_model):
        env = env_for(small_system, tp_intra=4, dp_inter=4)
        assert pp_comm_time(env, tiny_model, 8.0, "intra") == 0.0

    def test_no_topology_factor(self, small_system, tiny_model):
        """Doubling the PP degree does not change the per-boundary cost."""
        env2 = env_for(small_system, pp_intra=2, dp_intra=2, dp_inter=4)
        env4 = env_for(small_system, pp_intra=4, dp_inter=4)
        b = 8.0
        assert pp_comm_time(env2, tiny_model, b, "intra") \
            == pytest.approx(pp_comm_time(env4, tiny_model, b, "intra"))


class TestMoEComm:
    def test_single_node_is_free(self, small_system, tiny_moe_model):
        one_node = small_system.with_n_nodes(1)
        env = env_for(one_node, tp_intra=4)
        assert moe_comm_time(env, tiny_moe_model, 8.0) == 0.0

    def test_grows_with_volume_multiplier(self, small_system,
                                          tiny_moe_model):
        base = env_for(small_system, tp_intra=4, dp_inter=4)
        heavy = dataclasses.replace(base, moe_volume_multiplier=4.0)
        t_base = moe_comm_time(base, tiny_moe_model, 8.0)
        t_heavy = moe_comm_time(heavy, tiny_moe_model, 8.0)
        assert t_heavy > t_base

    def test_tp_sharding_divides_volume(self, small_system,
                                        tiny_moe_model):
        sharded = env_for(small_system, tp_intra=4, dp_inter=4)
        literal = dataclasses.replace(sharded, moe_tp_sharding=False)
        t_sharded = moe_comm_time(sharded, tiny_moe_model, 8.0)
        t_literal = moe_comm_time(literal, tiny_moe_model, 8.0)
        assert t_sharded < t_literal

    def test_more_inter_bandwidth_reduces_time(self, small_system,
                                               tiny_moe_model):
        fast_node = small_system.node.with_links(
            inter_link=small_system.node.inter_link.scaled(10.0))
        fast = small_system.with_node(fast_node)
        slow_t = moe_comm_time(env_for(small_system, tp_intra=4,
                                       dp_inter=4),
                               tiny_moe_model, 8.0)
        fast_t = moe_comm_time(env_for(fast, tp_intra=4, dp_inter=4),
                               tiny_moe_model, 8.0)
        assert fast_t < slow_t


class TestForwardAggregation:
    def test_eq5_sums_components(self, small_system, tiny_model):
        env = env_for(small_system, tp_intra=4, pp_inter=2, dp_inter=2)
        parts = forward_comm_components(env, tiny_model, 8.0, False)
        assert forward_comm_time(env, tiny_model, 8.0, False) \
            == pytest.approx(sum(parts.values()))

    def test_pp_takes_max_of_levels(self, small_system, tiny_model):
        env = env_for(small_system, pp_intra=4, pp_inter=4)
        parts = forward_comm_components(env, tiny_model, 8.0, False)
        intra = pp_comm_time(env, tiny_model, 8.0, "intra")
        inter = pp_comm_time(env, tiny_model, 8.0, "inter")
        assert parts["pp"] == pytest.approx(max(intra, inter))

    def test_zero_factor_scales_everything(self, small_system,
                                           tiny_model):
        base = env_for(small_system, tp_intra=4, dp_inter=4)
        zero = dataclasses.replace(base, zero_forward_overhead=0.5)
        assert forward_comm_time(zero, tiny_model, 8.0, False) \
            == pytest.approx(
                1.5 * forward_comm_time(base, tiny_model, 8.0, False))

    def test_moe_only_on_expert_layers(self, small_system,
                                       tiny_moe_model):
        env = env_for(small_system, tp_intra=4, dp_inter=4)
        dense = forward_comm_components(env, tiny_moe_model, 8.0, False)
        moe = forward_comm_components(env, tiny_moe_model, 8.0, True)
        assert dense["moe"] == 0.0
        assert moe["moe"] > 0.0

    def test_expert_parallel_off_silences_moe(self, small_system,
                                              tiny_moe_model):
        env = CommEnvironment(
            system=small_system,
            parallelism=ParallelismSpec(tp_intra=4, dp_inter=4,
                                        expert_parallel=False),
            precision=MIXED_FP16)
        parts = forward_comm_components(env, tiny_moe_model, 8.0, True)
        assert parts["moe"] == 0.0

    def test_backward_mirrors_forward(self, small_system, tiny_model):
        env = env_for(small_system, tp_intra=4, dp_inter=4)
        fwd = forward_comm_time(env, tiny_model, 8.0, False)
        assert backward_comm_time(env, tiny_model, 8.0, False) \
            == pytest.approx(fwd)
        assert backward_comm_time(env, tiny_model, 8.0, False,
                                  volume_ratio=0.5) \
            == pytest.approx(0.5 * fwd)


class TestGradientComm:
    def test_eq11_hand_computation(self, small_system):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        link = small_system.node.intra_link
        n_g = 1e6
        parts = gradient_comm_components(env, n_g)
        expected_intra = (RING.steps(4) * link.latency_s
                          + n_g * 16 / link.bandwidth_bits_per_s
                          * RING.factor(4))
        assert parts["intra"] == pytest.approx(expected_intra)

    def test_tp_shards_gradients(self, small_system):
        dense = env_for(small_system, pp_intra=4, dp_inter=4)
        # tp=4 quarters the per-rank gradient volume
        sharded = env_for(small_system, tp_intra=4, dp_inter=4)
        t_dense = gradient_comm_components(dense, 1e9)["inter"]
        t_sharded = gradient_comm_components(sharded, 1e9)["inter"]
        assert t_sharded < t_dense

    def test_no_dp_no_cost(self, small_system):
        env = env_for(small_system, tp_intra=4, pp_inter=4)
        assert gradient_comm_time(env, 1e6) == 0.0

    def test_rejects_negative_params(self, small_system):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        with pytest.raises(ConfigurationError):
            gradient_comm_time(env, -1.0)


class TestCollectiveCache:
    def test_repeat_lookup_hits_cache(self, small_system):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        clear_comm_cache()
        first = gradient_comm_components(env, 1e6)
        after_first = comm_cache_stats()
        second = gradient_comm_components(env, 1e6)
        after_second = comm_cache_stats()
        assert second == first
        assert after_second["hits"] > after_first["hits"]
        assert after_second["misses"] == after_first["misses"]

    def test_clear_resets_counters(self, small_system):
        env = env_for(small_system, dp_intra=4, dp_inter=4)
        gradient_comm_components(env, 1e6)
        clear_comm_cache()
        stats = comm_cache_stats()
        assert stats["hits"] == 0
        assert stats["currsize"] == 0
