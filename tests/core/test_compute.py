"""Unit tests for Eq. 2-4 and Eq. 12."""

import pytest

from repro.core.compute import (
    backward_compute_time,
    forward_compute_time,
    mac_time_per_op,
    nonlinear_time_per_op,
    weight_update_time,
)
from repro.core.operations import build_operations
from repro.errors import ConfigurationError
from repro.hardware.catalog import A100
from repro.hardware.precision import FULL_FP32, MIXED_FP16


@pytest.fixture
def layer(tiny_model):
    return build_operations(tiny_model, 4).layers[1]  # first real layer


class TestThroughputReciprocals:
    def test_c_mac_at_full_efficiency(self):
        assert mac_time_per_op(A100, 1.0) \
            == pytest.approx(1.0 / A100.peak_mac_flops_per_s)

    def test_c_mac_scales_inverse_with_efficiency(self):
        assert mac_time_per_op(A100, 0.5) \
            == pytest.approx(2 * mac_time_per_op(A100, 1.0))

    def test_c_mac_rejects_zero_efficiency(self):
        with pytest.raises(ConfigurationError):
            mac_time_per_op(A100, 0.0)

    def test_c_mac_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            mac_time_per_op(A100, 1.1)

    def test_c_nonlin(self):
        assert nonlinear_time_per_op(A100) \
            == pytest.approx(1.0 / A100.peak_nonlinear_ops_per_s)


class TestForward:
    def test_matches_hand_sum(self, layer):
        time = forward_compute_time(layer, A100, MIXED_FP16, 1.0)
        expected = (layer.mac_flops / A100.peak_mac_flops_per_s
                    + layer.nonlinear_ops / A100.peak_nonlinear_ops_per_s)
        assert time == pytest.approx(expected)

    def test_fp32_doubles_mac_passes(self, layer):
        fp16 = forward_compute_time(layer, A100, MIXED_FP16, 1.0)
        fp32 = forward_compute_time(layer, A100, FULL_FP32, 1.0)
        # both MAC (x2) and nonlinear (x2) pass counts double
        assert fp32 == pytest.approx(2 * fp16)

    def test_efficiency_derates_macs_only(self, layer):
        full = forward_compute_time(layer, A100, MIXED_FP16, 1.0)
        half = forward_compute_time(layer, A100, MIXED_FP16, 0.5)
        nonlin = layer.nonlinear_ops / A100.peak_nonlinear_ops_per_s
        mac = layer.mac_flops / A100.peak_mac_flops_per_s
        assert half == pytest.approx(2 * mac + nonlin)
        assert full == pytest.approx(mac + nonlin)


class TestBackward:
    def test_default_is_twice_forward(self, layer):
        fwd = forward_compute_time(layer, A100, MIXED_FP16, 0.8)
        bwd = backward_compute_time(layer, A100, MIXED_FP16, 0.8)
        assert bwd == pytest.approx(2 * fwd)

    def test_recompute_multiplier(self, layer):
        fwd = forward_compute_time(layer, A100, MIXED_FP16, 0.8)
        bwd = backward_compute_time(layer, A100, MIXED_FP16, 0.8,
                                    backward_multiplier=3.0)
        assert bwd == pytest.approx(3 * fwd)

    def test_rejects_negative_multiplier(self, layer):
        with pytest.raises(ConfigurationError):
            backward_compute_time(layer, A100, MIXED_FP16, 0.8,
                                  backward_multiplier=-1.0)


class TestWeightUpdate:
    def test_eq12_one_mac_per_weight(self, layer):
        time = weight_update_time(layer, A100, MIXED_FP16, 1.0)
        expected = layer.parameters * 2.0 \
            / A100.peak_mac_flops_per_s  # FLOPs per MAC = 2
        assert time == pytest.approx(expected)

    def test_adam_style_cost(self, layer):
        sgd = weight_update_time(layer, A100, MIXED_FP16, 1.0)
        adam = weight_update_time(layer, A100, MIXED_FP16, 1.0,
                                  optimizer_macs_per_parameter=4.0)
        assert adam == pytest.approx(4 * sgd)

    def test_independent_of_batch(self, tiny_model):
        small = build_operations(tiny_model, 1).layers[1]
        large = build_operations(tiny_model, 64).layers[1]
        assert weight_update_time(small, A100, MIXED_FP16, 1.0) \
            == weight_update_time(large, A100, MIXED_FP16, 1.0)
