"""Unit tests for per-layer operation assembly."""

import pytest

from repro.core.operations import build_operations
from repro.errors import ConfigurationError
from repro.transformer.params import total_parameters


class TestBuildOperations:
    def test_layer_count_with_embeddings(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert len(ops.layers) == tiny_model.n_layers + 1
        assert ops.n_layers == tiny_model.n_layers

    def test_layer_count_without_embeddings(self, tiny_model):
        ops = build_operations(tiny_model, 2, include_embeddings=False)
        assert len(ops.layers) == tiny_model.n_layers
        assert all(layer.index >= 0 for layer in ops.layers)

    def test_pseudo_layer_first(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert ops.layers[0].index == -1
        assert not ops.layers[0].is_moe

    def test_total_parameters_match_transformer_count(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert ops.total_parameters \
            == pytest.approx(total_parameters(tiny_model))

    def test_moe_flags(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        flags = [layer.is_moe for layer in ops.layers if layer.index >= 0]
        assert flags == [False, True, False, True]

    def test_expert_parameters_only_on_moe_layers(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        for layer in ops.layers:
            if layer.is_moe:
                assert layer.expert_parameters > 0
            else:
                assert layer.expert_parameters == 0

    def test_gradient_parameters_exclude_experts(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        moe_layer = next(l for l in ops.layers if l.is_moe)
        assert moe_layer.gradient_parameters(True) \
            == moe_layer.parameters - moe_layer.expert_parameters
        assert moe_layer.gradient_parameters(False) \
            == moe_layer.parameters

    def test_flops_scale_with_batch(self, tiny_model):
        one = build_operations(tiny_model, 1)
        four = build_operations(tiny_model, 4)
        assert four.total_forward_mac_flops \
            == pytest.approx(4 * one.total_forward_mac_flops)

    def test_rejects_zero_batch(self, tiny_model):
        with pytest.raises(ConfigurationError):
            build_operations(tiny_model, 0)
