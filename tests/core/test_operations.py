"""Unit tests for per-layer operation assembly."""

import pytest

from repro.core.operations import (
    DEFAULT_OPERATIONS_CACHE_SIZE,
    build_operations,
    cache_stats,
    collapse_layer_classes,
    configure_operations_cache,
)
from repro.errors import ConfigurationError
from repro.transformer.params import total_parameters


class TestBuildOperations:
    def test_layer_count_with_embeddings(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert len(ops.layers) == tiny_model.n_layers + 1
        assert ops.n_layers == tiny_model.n_layers

    def test_layer_count_without_embeddings(self, tiny_model):
        ops = build_operations(tiny_model, 2, include_embeddings=False)
        assert len(ops.layers) == tiny_model.n_layers
        assert all(layer.index >= 0 for layer in ops.layers)

    def test_pseudo_layer_first(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert ops.layers[0].index == -1
        assert not ops.layers[0].is_moe

    def test_total_parameters_match_transformer_count(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert ops.total_parameters \
            == pytest.approx(total_parameters(tiny_model))

    def test_moe_flags(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        flags = [layer.is_moe for layer in ops.layers if layer.index >= 0]
        assert flags == [False, True, False, True]

    def test_expert_parameters_only_on_moe_layers(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        for layer in ops.layers:
            if layer.is_moe:
                assert layer.expert_parameters > 0
            else:
                assert layer.expert_parameters == 0

    def test_gradient_parameters_exclude_experts(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        moe_layer = next(l for l in ops.layers if l.is_moe)
        assert moe_layer.gradient_parameters(True) \
            == moe_layer.parameters - moe_layer.expert_parameters
        assert moe_layer.gradient_parameters(False) \
            == moe_layer.parameters

    def test_flops_scale_with_batch(self, tiny_model):
        one = build_operations(tiny_model, 1)
        four = build_operations(tiny_model, 4)
        assert four.total_forward_mac_flops \
            == pytest.approx(4 * one.total_forward_mac_flops)

    def test_rejects_zero_batch(self, tiny_model):
        with pytest.raises(ConfigurationError):
            build_operations(tiny_model, 0)


class TestLayerClasses:
    def test_dense_model_collapses_to_two_classes(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        classes = collapse_layer_classes(ops)
        assert len(classes) == 2
        assert classes[0].is_pseudo
        assert classes[0].multiplicity == 1
        assert not classes[1].is_pseudo
        assert classes[1].multiplicity == tiny_model.n_layers

    def test_no_embeddings_collapses_to_one_class(self, tiny_model):
        ops = build_operations(tiny_model, 2, include_embeddings=False)
        classes = collapse_layer_classes(ops)
        assert len(classes) == 1
        assert classes[0].multiplicity == tiny_model.n_layers

    def test_moe_model_collapses_to_three_classes(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        classes = collapse_layer_classes(ops)
        assert len(classes) == 3
        assert [cls.is_moe for cls in classes] == [False, False, True]
        assert [cls.multiplicity for cls in classes] == [1, 2, 2]

    def test_multiplicities_cover_every_layer(self, tiny_moe_model):
        ops = build_operations(tiny_moe_model, 2)
        assert sum(cls.multiplicity for cls in ops.layer_classes) \
            == len(ops.layers)

    def test_classes_cached_per_instance(self, tiny_model):
        ops = build_operations(tiny_model, 2)
        assert ops.layer_classes is ops.layer_classes


class TestOperationsCache:
    def teardown_method(self):
        configure_operations_cache()

    def test_repeat_build_hits_cache(self, tiny_model):
        configure_operations_cache()
        first = build_operations(tiny_model, 2)
        before = cache_stats()
        second = build_operations(tiny_model, 2)
        after = cache_stats()
        assert second is first
        assert after["hits"] == before["hits"] + 1

    def test_stats_report_misses(self, tiny_model):
        configure_operations_cache()
        build_operations(tiny_model, 2)
        build_operations(tiny_model, 4)
        stats = cache_stats()
        assert stats["misses"] >= 2
        assert stats["currsize"] >= 2

    def test_maxsize_is_configurable(self, tiny_model):
        configure_operations_cache(2)
        stats = cache_stats()
        assert stats["maxsize"] == 2
        assert stats["currsize"] == 0
        build_operations(tiny_model, 2)
        build_operations(tiny_model, 4)
        build_operations(tiny_model, 8)
        assert cache_stats()["currsize"] == 2

    def test_default_maxsize_restored(self):
        configure_operations_cache(2)
        configure_operations_cache()
        assert cache_stats()["maxsize"] == DEFAULT_OPERATIONS_CACHE_SIZE
