"""Unit and behavioral tests for the assembled AMPeD model (Eq. 1)."""

import dataclasses

import pytest

from repro.core.model import AMPeD
from repro.core.zero import ZeroConfig
from repro.errors import ConfigurationError, MappingError
from repro.parallelism.microbatch import PERFECT_EFFICIENCY
from repro.parallelism.spec import ParallelismSpec


class TestConstruction:
    def test_validates_against_system(self, tiny_model, small_system):
        with pytest.raises(MappingError):
            AMPeD(model=tiny_model, system=small_system,
                  parallelism=ParallelismSpec(tp_intra=2))

    def test_validates_against_model(self, tiny_model, small_system):
        # pp = 8 > 4 layers
        with pytest.raises(MappingError):
            AMPeD(model=tiny_model, system=small_system,
                  parallelism=ParallelismSpec(pp_intra=4, pp_inter=2,
                                              dp_inter=2))

    def test_validation_can_be_disabled(self, tiny_model, small_system):
        AMPeD(model=tiny_model, system=small_system,
              parallelism=ParallelismSpec(tp_intra=2), validate=False)

    def test_for_mapping_helper(self, tiny_model, small_system):
        amped = AMPeD.for_mapping(tiny_model, small_system, tp=4, dp=4,
                                  n_microbatches=4)
        assert amped.parallelism.tp_intra == 4
        assert amped.parallelism.microbatches == 4

    def test_rejects_negative_multipliers(self, tiny_model,
                                          small_system):
        with pytest.raises(ConfigurationError):
            AMPeD(model=tiny_model, system=small_system,
                  parallelism=ParallelismSpec(tp_intra=4, dp_inter=4),
                  backward_compute_multiplier=-1.0)


class TestEstimates:
    def test_breakdown_components_sum(self, tiny_amped):
        breakdown = tiny_amped.estimate_batch(64)
        assert breakdown.total == pytest.approx(
            breakdown.compute_time + breakdown.comm_time
            + breakdown.bubble)

    def test_estimate_scales_with_batches(self, tiny_amped):
        one = tiny_amped.estimate(64, n_batches=1)
        hundred = tiny_amped.estimate(64, n_batches=100)
        assert hundred.total_time_s \
            == pytest.approx(100 * one.total_time_s)

    def test_tokens_to_batches(self, tiny_amped, tiny_model):
        tokens_per_batch = 64 * tiny_model.sequence_length
        estimate = tiny_amped.estimate(
            64, total_tokens=10 * tokens_per_batch)
        assert estimate.n_batches == 10

    def test_tokens_round_up(self, tiny_amped, tiny_model):
        tokens_per_batch = 64 * tiny_model.sequence_length
        estimate = tiny_amped.estimate(
            64, total_tokens=10.5 * tokens_per_batch)
        assert estimate.n_batches == 11

    def test_exactly_one_duration_arg(self, tiny_amped):
        with pytest.raises(ConfigurationError):
            tiny_amped.estimate(64)
        with pytest.raises(ConfigurationError):
            tiny_amped.estimate(64, n_batches=10, total_tokens=1e6)

    def test_serial_run_has_no_comm(self, tiny_model, small_system):
        serial_system = small_system.repartitioned(1).with_n_nodes(1)
        amped = AMPeD(model=tiny_model, system=serial_system,
                      parallelism=ParallelismSpec())
        breakdown = amped.estimate_batch(8)
        assert breakdown.comm_time == 0.0
        assert breakdown.bubble == 0.0
        assert breakdown.compute_time > 0.0


class TestParallelismEffects:
    def test_dp_speeds_up_compute(self, tiny_model, small_system):
        serial_like = AMPeD(model=tiny_model, system=small_system,
                            parallelism=ParallelismSpec(dp_intra=4,
                                                        dp_inter=4),
                            efficiency=PERFECT_EFFICIENCY)
        compute = serial_like.estimate_batch(64).compute_time
        single = small_system.repartitioned(1).with_n_nodes(1)
        serial = AMPeD(model=tiny_model, system=single,
                       parallelism=ParallelismSpec(),
                       efficiency=PERFECT_EFFICIENCY)
        assert compute \
            == pytest.approx(serial.estimate_batch(64).compute_time / 16)

    def test_inter_tp_costs_more_than_intra(self, tiny_model,
                                            small_system):
        intra = AMPeD(model=tiny_model, system=small_system,
                      parallelism=ParallelismSpec(tp_intra=4,
                                                  dp_inter=4))
        inter = AMPeD(model=tiny_model, system=small_system,
                      parallelism=ParallelismSpec(dp_intra=4,
                                                  tp_inter=4))
        assert inter.estimate_batch(64).comm_tp \
            > intra.estimate_batch(64).comm_tp

    def test_stage_concurrency_flag(self, tiny_model, small_system):
        spec = ParallelismSpec(tp_intra=4, pp_inter=4, n_microbatches=8)
        concurrent = AMPeD(model=tiny_model, system=small_system,
                           parallelism=spec)
        literal = dataclasses.replace(concurrent,
                                      concurrent_stage_comm=False)
        assert concurrent.estimate_batch(64).comm_tp \
            == pytest.approx(literal.estimate_batch(64).comm_tp / 4)

    def test_zero_adds_comm(self, tiny_model, small_system):
        spec = ParallelismSpec(tp_intra=4, dp_inter=4)
        plain = AMPeD(model=tiny_model, system=small_system,
                      parallelism=spec)
        zero3 = dataclasses.replace(plain, zero=ZeroConfig(stage=3))
        assert zero3.estimate_batch(64).comm_tp \
            > plain.estimate_batch(64).comm_tp

    def test_moe_layers_add_comm(self, tiny_moe_model, small_system):
        spec = ParallelismSpec(tp_intra=4, dp_inter=4)
        amped = AMPeD(model=tiny_moe_model, system=small_system,
                      parallelism=spec)
        assert amped.estimate_batch(64).comm_moe > 0.0

    def test_bubble_model_selector(self, tiny_model, small_system):
        spec = ParallelismSpec(pp_intra=4, dp_inter=4, n_microbatches=8)
        physical = AMPeD(model=tiny_model, system=small_system,
                         parallelism=spec)
        literal = dataclasses.replace(physical, bubble_model="eq8")
        assert physical.estimate_batch(64).bubble \
            > literal.estimate_batch(64).bubble


class TestMetrics:
    def test_tflops_bounded_by_peak(self, tiny_amped, small_system):
        tflops = tiny_amped.achieved_tflops_per_gpu(64)
        peak = small_system.accelerator.peak_mac_flops_per_s / 1e12
        assert 0 < tflops < peak

    def test_tokens_per_second_positive(self, tiny_amped):
        assert tiny_amped.tokens_per_second(64) > 0

    def test_microbatch_accessors(self, tiny_amped):
        assert tiny_amped.microbatch(64) == 64 / 4  # dp=4, n_ub=1
        assert 0 < tiny_amped.microbatch_efficiency(64) <= 1.0

    def test_with_parallelism_copies(self, tiny_amped):
        new_spec = ParallelismSpec(dp_intra=4, dp_inter=4)
        assert tiny_amped.with_parallelism(new_spec).parallelism \
            is new_spec
