"""Unit tests for the breakdown containers."""

import pytest

from repro.core.breakdown import TrainingEstimate, TrainingTimeBreakdown
from repro.errors import ConfigurationError


def make(**overrides) -> TrainingTimeBreakdown:
    base = dict(compute_forward=1.0, compute_backward=2.0,
                compute_weight_update=0.5, comm_tp_intra=0.2,
                comm_tp_inter=0.3, comm_pp=0.1, comm_moe=0.05,
                comm_gradient_intra=0.15, comm_gradient_inter=0.25,
                comm_zero=0.05, bubble=0.4)
    base.update(overrides)
    return TrainingTimeBreakdown(**base)


class TestAggregates:
    def test_compute_time(self):
        assert make().compute_time == pytest.approx(3.5)

    def test_comm_time(self):
        assert make().comm_time == pytest.approx(1.10)

    def test_total(self):
        assert make().total == pytest.approx(3.5 + 1.10 + 0.4)

    def test_tp_and_gradient_pairs(self):
        breakdown = make()
        assert breakdown.comm_tp == pytest.approx(0.5)
        assert breakdown.comm_gradient == pytest.approx(0.4)

    def test_rejects_negative_component(self):
        with pytest.raises(ConfigurationError):
            make(bubble=-0.1)


class TestAlgebra:
    def test_scaled(self):
        assert make().scaled(10).total == pytest.approx(10 * make().total)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            make().scaled(-1)

    def test_addition(self):
        total = make() + make()
        assert total.total == pytest.approx(2 * make().total)

    def test_addition_type_error(self):
        with pytest.raises(TypeError):
            make() + 3


class TestPresentation:
    def test_summary_covers_total(self):
        breakdown = make()
        assert sum(breakdown.summary_dict().values()) \
            == pytest.approx(breakdown.total)

    def test_as_dict_round_trip(self):
        breakdown = make()
        rebuilt = TrainingTimeBreakdown(**breakdown.as_dict())
        assert rebuilt == breakdown

    def test_format_table_mentions_categories(self):
        text = make().format_table()
        for key in ("compute", "tp_comm", "bubble", "total"):
            assert key in text

    def test_format_table_shares_sum_to_100(self):
        text = make().format_table()
        assert "100.00%" in text


class TestTrainingEstimate:
    def test_total_time(self):
        estimate = TrainingEstimate(per_batch=make(), n_batches=100)
        assert estimate.total_time_s \
            == pytest.approx(100 * make().total)

    def test_days(self):
        estimate = TrainingEstimate(per_batch=make(), n_batches=86400)
        assert estimate.total_time_days \
            == pytest.approx(make().total)

    def test_breakdown_scaled(self):
        estimate = TrainingEstimate(per_batch=make(), n_batches=3)
        assert estimate.breakdown.bubble == pytest.approx(1.2)

    def test_rejects_zero_batches(self):
        with pytest.raises(ConfigurationError):
            TrainingEstimate(per_batch=make(), n_batches=0)


class TestNonFiniteInputs:
    @pytest.mark.parametrize("value", [float("nan"), float("inf")])
    def test_rejects_non_finite_components(self, value):
        with pytest.raises(ConfigurationError, match="finite"):
            make(comm_pp=value)
