"""Unit tests for Eq. 8 (pipeline bubbles)."""

import pytest

from repro.core.bubbles import bubble_fraction, bubble_time
from repro.errors import ConfigurationError
from repro.parallelism.spec import ParallelismSpec


def spec(pp=4, n_ub=None, r=1.0) -> ParallelismSpec:
    return ParallelismSpec(pp_inter=pp, n_microbatches=n_ub,
                           bubble_overlap_ratio=r)


class TestBubbleTime:
    def test_no_pipeline_no_bubble(self):
        assert bubble_time(1.0, 2.0, 0.1, 0.1, 8,
                           ParallelismSpec(dp_inter=4)) == 0.0

    def test_physical_hand_computation(self):
        # W = R * (pp-1)/n_ub * [(U_f+U_b)/(tp*dp*pp) + M_b + M_f]
        w = bubble_time(8.0, 16.0, 0.5, 0.5, n_layers=8,
                        parallelism=spec(pp=4, n_ub=16),
                        model="physical")
        expected = 1.0 * 3 / 16 * ((8 + 16) / 4 + 1.0)
        assert w == pytest.approx(expected)

    def test_eq8_divides_compute_by_layers(self):
        physical = bubble_time(8.0, 16.0, 0.0, 0.0, 8, spec(4, 16),
                               model="physical")
        literal = bubble_time(8.0, 16.0, 0.0, 0.0, 8, spec(4, 16),
                              model="eq8")
        assert literal == pytest.approx(physical / 8)

    def test_overlap_ratio_scales_linearly(self):
        full = bubble_time(8.0, 16.0, 0.5, 0.5, 8, spec(4, 16, r=1.0))
        half = bubble_time(8.0, 16.0, 0.5, 0.5, 8, spec(4, 16, r=0.5))
        assert half == pytest.approx(full / 2)

    def test_more_microbatches_shrink_bubble(self):
        few = bubble_time(8.0, 16.0, 0.5, 0.5, 8, spec(4, 8))
        many = bubble_time(8.0, 16.0, 0.5, 0.5, 8, spec(4, 64))
        assert many < few

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            bubble_time(1.0, 1.0, 0.0, 0.0, 8, spec(), model="magic")

    def test_rejects_negative_times(self):
        with pytest.raises(ConfigurationError):
            bubble_time(-1.0, 1.0, 0.0, 0.0, 8, spec())

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigurationError):
            bubble_time(1.0, 1.0, 0.0, 0.0, 0, spec())


class TestBubbleFraction:
    def test_classic_bound(self):
        assert bubble_fraction(spec(pp=8, n_ub=32)) == 7 / 32

    def test_default_microbatches_equal_pp(self):
        assert bubble_fraction(spec(pp=8)) == 7 / 8

    def test_no_pipeline(self):
        assert bubble_fraction(ParallelismSpec(dp_inter=8)) == 0.0

    def test_overlap_scales(self):
        assert bubble_fraction(spec(pp=8, n_ub=32, r=0.5)) == 7 / 64
