"""Self-check fixture: one deliberate violation of every amplint rule.

``tests/lint/test_fixtures.py`` runs the analyzer over this file and
asserts that AMP001 through AMP006 each fire at least once — proving
the shipped rule set still detects the patterns it was written for.
This module is analyzed, never imported; keep it ruff-clean (no unused
imports, no undefined names) because CI's ruff job also walks it.
"""

import math
from dataclasses import dataclass

SECONDS_IN_AN_HOUR = 3600.0  # AMP001: raw SI magnitude literal


def payload_bytes(bits: float) -> float:
    return bits / 8  # AMP002: bit<->byte arithmetic outside units.py


def impossible_cost() -> float:
    return math.inf  # AMP003: inf sentinel instead of MappingError


def transfer_time(volume, bandwidth):  # AMP004: time fn without _s suffix
    return volume / bandwidth


@dataclass(frozen=True)
class UncheckedSample:  # AMP005: float field, no require_finite check
    value: float


def swallow_everything() -> float:
    try:
        return impossible_cost()
    except Exception:  # AMP006: broad except without the noqa contract
        return 0.0
