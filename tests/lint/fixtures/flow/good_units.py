"""Known-good dimension flows: clean under AMP101-AMP104."""

from repro.units import Seconds, days_to_seconds, seconds_to_days


def total_runtime_s(step_s: float, n_steps: int) -> Seconds:
    return float(n_steps) * step_s


def runtime_days(runtime_s: float) -> float:
    return seconds_to_days(runtime_s)


def round_trip_s(span_days: float) -> Seconds:
    return days_to_seconds(span_days)


def combine_s(warmup_s: float, steady_s: float) -> Seconds:
    # Same dimension on both sides of the addition: fine.
    return warmup_s + steady_s


def throughput_bits_per_s(volume_bits: float, window_s: float) -> float:
    # bit / s is a known quotient, not a mismatch.
    return volume_bits / window_s
