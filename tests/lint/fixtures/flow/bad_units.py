"""Known-bad dimension flows: every AMP10x rule fires here."""

from repro.units import Bits, Seconds, seconds_to_days


def mix_dimensions(duration_s: float, payload_bits: float) -> float:
    return duration_s + payload_bits  # AMP101: s + bit


def elapsed(transfer_bits: Bits) -> Seconds:
    return transfer_bits  # AMP102: returns bits from -> Seconds


def schedule_days(runtime_s: float) -> float:
    total_days = seconds_to_days(runtime_s)
    return seconds_to_days(total_days)  # AMP103: applied twice


def accumulate(total: float, extra_s: float) -> float:
    # AMP104: `total` demonstrably receives seconds at both call
    # sites below but carries no annotation or unit suffix.
    return total + extra_s


def twice(first_s: float, second_s: float) -> float:
    return (accumulate(first_s, second_s)
            + accumulate(second_s, first_s))
