"""Known-good concurrency patterns: clean under AMP201-AMP204."""

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler

_HITS = {"total": 0}
_HITS_LOCK = threading.Lock()
_STATE_LOCK = threading.Lock()
_RESULTS = {"done": 0}


def _fresh_locks_after_fork() -> None:
    global _HITS_LOCK, _STATE_LOCK
    _HITS_LOCK = threading.Lock()
    _STATE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_fresh_locks_after_fork)


class Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        with _HITS_LOCK:
            _HITS["total"] += 1


def record(value: int) -> None:
    with _STATE_LOCK:
        _RESULTS["done"] = value


def fan_out(values):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        return [pool.submit(record, value).result()
                for value in values]
    finally:
        pool.shutdown()


class Poller(threading.Thread):
    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()
        self.latest = 0.0

    def run(self) -> None:
        with self._lock:
            self.latest = 1.0


def read_latest(poller: Poller) -> float:
    return poller.latest
