"""Known-bad concurrency patterns: every AMP20x rule fires here."""

import socket
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler

_HITS = {"total": 0}
_STATE_LOCK = threading.Lock()
_RESULTS = {"done": 0}
# AMP203: socket opened at module import, inherited across fork.
_PROBE = socket.socket()


class Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:
        _HITS["total"] += 1  # AMP201: unlocked mutation from a handler


def record(value: int) -> None:
    # AMP203: _STATE_LOCK reaches pool workers with no at-fork reset.
    with _STATE_LOCK:
        _RESULTS["done"] = value


def fan_out(values):
    pool = ProcessPoolExecutor(max_workers=2)
    try:
        futures = [pool.submit(record, value) for value in values]
        # AMP202: a lambda cannot cross the process boundary.
        futures.append(pool.submit(lambda: record(0)))
        return [future.result() for future in futures]
    finally:
        pool.shutdown()


class Poller(threading.Thread):
    def __init__(self) -> None:
        super().__init__()
        self.latest = 0.0

    def run(self) -> None:
        self.latest = 1.0  # AMP204: unlocked write, read below


def read_latest(poller: Poller) -> float:
    return poller.latest
