"""Fixture package for the whole-program (``--flow``) rule families.

Each module is analyzed, never imported: ``good_*`` modules must be
clean under AMP101-AMP204, ``bad_*`` modules must trip every rule in
their family at the marked lines.  Kept deliberately free of AMP001-
AMP006 patterns so the per-file fixture tests stay unaffected.
"""
