"""Findings baselines: snapshot format, forgiveness semantics, CLI."""

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    filter_new,
    read_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.engine import Violation


def violation(path="pkg/mod.py", line=10, rule="AMP101",
              message="adding 's' to 'bit'"):
    return Violation(path=path, line=line, col=0, rule_id=rule,
                     message=message)


class TestRoundTrip:
    def test_write_then_read_recovers_the_counts(self, tmp_path):
        snapshot = tmp_path / "base.json"
        write_baseline(str(snapshot),
                       [violation(line=10), violation(line=90),
                        violation(rule="AMP204", message="racy")])
        counts = read_baseline(str(snapshot))
        assert counts[("pkg/mod.py", "AMP101",
                       "adding 's' to 'bit'")] == 2
        assert counts[("pkg/mod.py", "AMP204", "racy")] == 1

    def test_snapshot_is_line_number_free(self, tmp_path):
        # Unrelated edits shift lines; the snapshot must not care.
        snapshot = tmp_path / "base.json"
        write_baseline(str(snapshot), [violation(line=10)])
        payload = json.loads(snapshot.read_text())
        assert "line" not in json.dumps(payload["entries"])

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99}")
        with pytest.raises(BaselineError):
            read_baseline(str(bad))
        with pytest.raises(BaselineError):
            read_baseline(str(tmp_path / "absent.json"))


class TestFilterNew:
    def test_baselined_findings_are_forgiven(self, tmp_path):
        snapshot = tmp_path / "base.json"
        write_baseline(str(snapshot), [violation()])
        assert filter_new([violation(line=42)],
                          read_baseline(str(snapshot))) == []

    def test_extra_occurrences_count_as_new(self, tmp_path):
        snapshot = tmp_path / "base.json"
        write_baseline(str(snapshot), [violation()])
        new = filter_new([violation(line=10), violation(line=20)],
                         read_baseline(str(snapshot)))
        assert len(new) == 1 and new[0].line == 20

    def test_unknown_findings_are_new(self):
        new = filter_new([violation(rule="AMP999", message="other")],
                         {})
        assert len(new) == 1

    def test_fixing_a_finding_never_breaks_the_gate(self, tmp_path):
        snapshot = tmp_path / "base.json"
        write_baseline(str(snapshot), [violation(), violation(line=2)])
        assert filter_new([violation()],
                          read_baseline(str(snapshot))) == []


@pytest.fixture()
def dirty_tree(tmp_path):
    """A tiny package with one baselined-debt flow violation."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "def mix(duration_s: float, size_bits: float) -> float:\n"
        "    return duration_s + size_bits\n")
    return pkg


class TestCli:
    def test_update_then_compare_cycle(self, dirty_tree, tmp_path,
                                       capsys):
        snapshot = tmp_path / "base.json"
        tree = str(dirty_tree)
        # Record today's debt, then the same findings gate green.
        assert main([tree, "--flow", "--update-baseline",
                     str(snapshot)]) == 0
        capsys.readouterr()
        assert main([tree, "--flow", "--baseline", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "suppressed" in out

    def test_new_debt_fails_the_gate(self, dirty_tree, tmp_path,
                                     capsys):
        snapshot = tmp_path / "base.json"
        tree = str(dirty_tree)
        assert main([tree, "--flow", "--update-baseline",
                     str(snapshot)]) == 0
        capsys.readouterr()
        (dirty_tree / "worse.py").write_text(
            "def also_mixed(span_s: float, load_bits: float)"
            " -> float:\n"
            "    return span_s + load_bits\n")
        assert main([tree, "--flow", "--baseline", str(snapshot)]) == 1
        out = capsys.readouterr().out
        assert "worse.py" in out and "mod.py" not in out

    def test_missing_baseline_is_a_hard_error(self, dirty_tree,
                                              tmp_path, capsys):
        assert main([str(dirty_tree), "--flow", "--baseline",
                     str(tmp_path / "absent.json")]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_baseline_applies_to_per_file_rules_too(self, tmp_path,
                                                    capsys):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        snapshot = tmp_path / "base.json"
        assert main([str(path), "--update-baseline",
                     str(snapshot)]) == 0
        capsys.readouterr()
        assert main([str(path), "--baseline", str(snapshot)]) == 0
        capsys.readouterr()
