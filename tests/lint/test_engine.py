"""Engine, CLI and report behavior of the analyzer."""

import json

import pytest

from repro.lint import run_lint
from repro.lint.cli import main
from repro.lint.engine import iter_python_files
from repro.lint.report import as_json_dict


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("x = 2.5\n")
        assert run_lint([str(path)]).exit_code == 0

    def test_violations_exit_one(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        assert run_lint([str(path)]).exit_code == 1

    def test_syntax_error_exits_two(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def oops(:\n")
        result = run_lint([str(path)])
        assert result.exit_code == 2
        assert result.failures

    def test_missing_file_exits_two(self, tmp_path):
        result = run_lint([str(tmp_path / "absent.py")])
        assert result.exit_code == 2


class TestFileDiscovery:
    def test_walks_directories_recursively(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "top.py").write_text("y = 2\n")
        names = [p.name for p in iter_python_files([str(tmp_path)])]
        assert sorted(names) == ["mod.py", "top.py"]

    def test_skips_pycache_and_hidden(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
        assert list(iter_python_files([str(tmp_path)])) == []


class TestViolationMetadata:
    def test_violation_locates_line(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("x = 1\nrate = 1e9\n")
        violation = run_lint([str(path)]).violations[0]
        assert violation.line == 2
        assert violation.rule_id == "AMP001"
        assert str(path) in violation.render()

    def test_counts_tally_per_rule(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("a = 1e9\nb = 1e6\nimport math\nc = math.inf\n")
        counts = run_lint([str(path)]).counts
        assert counts == {"AMP001": 2, "AMP003": 1}

    def test_json_payload_shape(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        payload = as_json_dict(run_lint([str(path)]))
        assert payload["files_checked"] == 1
        assert payload["violations"][0]["rule"] == "AMP001"


class TestCli:
    def test_clean_run(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 2.5\n")
        assert main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_run_reports_and_fails(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        assert main([str(path)]) == 1
        assert "AMP001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        assert main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"AMP001": 1}

    def test_select_flag(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        assert main(["--select", "AMP003", str(path)]) == 0
        capsys.readouterr()

    def test_ignore_flag(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("rate = 1e9\n")
        assert main(["--ignore", "AMP001", str(path)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("AMP001", "AMP002", "AMP003",
                        "AMP004", "AMP005", "AMP006"):
            assert rule_id in out

    @pytest.mark.parametrize("flag", ["--statistics"])
    def test_statistics_footer(self, tmp_path, capsys, flag):
        path = tmp_path / "dirty.py"
        path.write_text("a = 1e9\nb = 1e9\n")
        assert main([flag, str(path)]) == 1
        assert "AMP001" in capsys.readouterr().out
