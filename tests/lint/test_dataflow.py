"""Whole-program (``--flow``) rule families: fixtures, the shipped-tree
self-check, and the seeded mutation tests from the acceptance criteria."""

import shutil
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cli import main
from repro.lint.dataflow import FLOW_RULES, flow_rule_ids

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

FLOW_IDS = flow_rule_ids()


def run_flow_lint(paths, select=None):
    return run_lint([str(path) for path in paths],
                    select=select if select is not None else FLOW_IDS,
                    flow=True)


class TestFixtures:
    def test_every_flow_rule_fires_on_the_bad_fixtures(self):
        result = run_flow_lint([FIXTURES])
        assert set(result.counts) == set(FLOW_IDS), \
            f"rules not firing: {set(FLOW_IDS) - set(result.counts)}"

    def test_findings_land_in_the_bad_modules_only(self):
        result = run_flow_lint([FIXTURES])
        offender = [v.path for v in result.violations
                    if "bad_" not in Path(v.path).name]
        assert not offender, f"good fixtures flagged: {offender}"

    def test_good_fixtures_are_clean(self):
        result = run_flow_lint([FIXTURES / "good_units.py",
                                FIXTURES / "good_concurrency.py"])
        assert result.exit_code == 0, \
            "\n".join(v.render() for v in result.violations)

    def test_cli_flow_flag_drives_the_same_rules(self, capsys):
        assert main(["--flow", str(FIXTURES / "bad_units.py")]) == 1
        out = capsys.readouterr().out
        assert "AMP101" in out and "AMP103" in out

    def test_without_flow_flag_flow_rules_stay_silent(self):
        result = run_lint([str(FIXTURES / "bad_units.py")])
        assert not any(v.rule_id.startswith("AMP1")
                       for v in result.violations)

    def test_list_rules_includes_the_flow_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in FLOW_RULES:
            assert rule.rule_id in out


class TestShippedTreeIsCleanUnderFlow:
    def test_src_repro_is_clean_under_all_rule_families(self):
        # AMP001-AMP006 per-file plus AMP101-AMP204 whole-program in
        # one pass: the acceptance gate `amped-lint --flow src/repro`.
        result = run_lint([str(SRC)], flow=True)
        rendered = "\n".join(v.render() for v in result.violations)
        assert result.exit_code == 0, f"violations in src:\n{rendered}"
        assert result.files_checked > 100


@pytest.fixture()
def src_copy(tmp_path):
    """A disposable copy of src/repro for seeding mutations into."""
    target = tmp_path / "repro"
    shutil.copytree(SRC, target,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return target


class TestSeededMutations:
    """Each acceptance-criteria mutation produces exactly the expected
    finding in exactly the mutated file."""

    def test_seconds_plus_bits_addition_in_core(self, src_copy):
        compute = src_copy / "core" / "compute.py"
        compute.write_text(
            compute.read_text()
            + "\n\ndef _mutant_total(duration_s: float,"
              " payload_bits: float) -> float:\n"
              "    return duration_s + payload_bits\n")
        result = run_flow_lint([src_copy], select=["AMP101"])
        assert [v.rule_id for v in result.violations] == ["AMP101"]
        assert result.violations[0].path.endswith("core/compute.py")

    def test_dropped_lock_around_shared_state_in_serve(self, src_copy):
        lifecycle = src_copy / "serve" / "lifecycle.py"
        source = lifecycle.read_text()
        guarded = ("            with self._state_lock:\n"
                   "                self._warmed = True")
        assert guarded in source, "expected guarded write not found"
        lifecycle.write_text(source.replace(
            guarded, "            self._warmed = True", 1))
        result = run_flow_lint([src_copy], select=["AMP204"])
        assert [v.rule_id for v in result.violations] == ["AMP204"]
        assert result.violations[0].path.endswith("serve/lifecycle.py")
        assert "_warmed" in result.violations[0].message

    def test_non_picklable_closure_into_the_pool(self, src_copy):
        resilience = src_copy / "search" / "resilience.py"
        source = resilience.read_text()
        original = ("pool.submit(self.evaluate, spec)  "
                    "# amplint: disable=AMP202 — attribute holds a "
                    "picklable module-level callable")
        assert original in source, "expected submit site not found"
        resilience.write_text(source.replace(
            original, "pool.submit(lambda s=spec: self.evaluate(s))",
            1))
        result = run_flow_lint([src_copy], select=["AMP202"])
        assert [v.rule_id for v in result.violations] == ["AMP202"]
        assert result.violations[0].path.endswith(
            "search/resilience.py")
        assert "lambda" in result.violations[0].message
