"""Positive and negative cases for every amplint rule."""

import textwrap

import pytest

from repro.lint import all_rules, get_rule, run_lint


def lint_source(tmp_path, source, name="sample.py", **kwargs):
    """Write ``source`` to a temp file and run the analyzer on it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return run_lint([str(path)], **kwargs)


def rule_ids(result):
    return [violation.rule_id for violation in result.violations]


class TestRegistry:
    def test_six_rules_registered(self):
        assert [rule.rule_id for rule in all_rules()] == [
            "AMP001", "AMP002", "AMP003", "AMP004", "AMP005", "AMP006"]

    def test_get_rule(self):
        assert get_rule("AMP003").name == "inf-sentinel"

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            get_rule("AMP999")


class TestAMP001MagnitudeLiterals:
    def test_flags_float_si_magnitude(self, tmp_path):
        result = lint_source(tmp_path, "rate = 1e9\n")
        assert "AMP001" in rule_ids(result)

    def test_flags_seconds_per_hour_spelled_raw(self, tmp_path):
        result = lint_source(tmp_path, "stall = 3600.0\n")
        assert "AMP001" in rule_ids(result)

    def test_int_literals_are_legal(self, tmp_path):
        result = lint_source(tmp_path, "hidden_size = 1024\n")
        assert "AMP001" not in rule_ids(result)

    def test_ordinary_floats_are_legal(self, tmp_path):
        result = lint_source(tmp_path, "ratio = 2.5\n")
        assert "AMP001" not in rule_ids(result)


class TestAMP002BitByteArithmetic:
    def test_flags_division_by_eight(self, tmp_path):
        result = lint_source(tmp_path, "n_bytes = payload / 8\n")
        assert "AMP002" in rule_ids(result)

    def test_flags_multiplication_by_eight(self, tmp_path):
        result = lint_source(tmp_path, "n_bits = payload * 8\n")
        assert "AMP002" in rule_ids(result)

    def test_floor_division_is_legal(self, tmp_path):
        result = lint_source(tmp_path, "n_nodes = n_gpus // 8\n")
        assert "AMP002" not in rule_ids(result)

    def test_other_factors_are_legal(self, tmp_path):
        result = lint_source(tmp_path, "doubled = payload * 2\n")
        assert "AMP002" not in rule_ids(result)


class TestAMP003InfSentinel:
    def test_flags_math_inf(self, tmp_path):
        result = lint_source(
            tmp_path, "import math\ncost = math.inf\n")
        assert "AMP003" in rule_ids(result)

    def test_flags_float_inf_string(self, tmp_path):
        result = lint_source(tmp_path, "cost = float('inf')\n")
        assert "AMP003" in rule_ids(result)

    def test_finite_float_call_is_legal(self, tmp_path):
        result = lint_source(tmp_path, "cost = float('1.5')\n")
        assert "AMP003" not in rule_ids(result)


class TestAMP004TimeFunctionNames:
    def test_flags_unannotated_time_function(self, tmp_path):
        result = lint_source(tmp_path, """\
            def transfer_time(volume, bandwidth):
                return volume / bandwidth
        """)
        assert "AMP004" in rule_ids(result)

    def test_flags_bare_float_return(self, tmp_path):
        result = lint_source(tmp_path, """\
            def startup_latency(hops) -> float:
                return hops * 1.5e-6
        """)
        assert "AMP004" in rule_ids(result)

    def test_unit_suffix_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            def transfer_time_s(volume, bandwidth) -> float:
                return volume / bandwidth
        """)
        assert "AMP004" not in rule_ids(result)

    def test_seconds_annotation_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            from repro.units import Seconds

            def transfer_time(volume, bandwidth) -> Seconds:
                return volume / bandwidth
        """)
        assert "AMP004" not in rule_ids(result)

    def test_non_float_return_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            from typing import Tuple

            def time_pair(a, b) -> Tuple[float, float]:
                return a, b
        """)
        assert "AMP004" not in rule_ids(result)


class TestAMP005UnvalidatedDataclass:
    def test_flags_float_field_without_validation(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Point:
                time_taken_s: float
        """)
        assert "AMP005" in rule_ids(result)

    def test_require_finite_fields_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            from repro.errors import require_finite_fields

            @dataclass(frozen=True)
            class Point:
                time_taken_s: float

                def __post_init__(self) -> None:
                    require_finite_fields(self)
        """)
        assert "AMP005" not in rule_ids(result)

    def test_per_field_require_finite_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            from repro.errors import require_finite

            @dataclass(frozen=True)
            class Point:
                time_taken_s: float

                def __post_init__(self) -> None:
                    require_finite("time_taken_s", self.time_taken_s)
        """)
        assert "AMP005" not in rule_ids(result)

    def test_no_float_fields_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Label:
                name: str
                count: int
        """)
        assert "AMP005" not in rule_ids(result)


class TestAMP006BroadExcept:
    def test_flags_unmarked_broad_except(self, tmp_path):
        result = lint_source(tmp_path, """\
            try:
                work()
            except Exception:
                pass
        """)
        assert "AMP006" in rule_ids(result)

    def test_flags_bare_except(self, tmp_path):
        result = lint_source(tmp_path, """\
            try:
                work()
            except:  # noqa: E722
                pass
        """)
        assert "AMP006" in rule_ids(result)

    def test_supervised_boundary_mark_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            try:
                work()
            except Exception:  # noqa: BLE001 -- supervised boundary
                pass
        """)
        assert "AMP006" not in rule_ids(result)

    def test_narrow_except_is_legal(self, tmp_path):
        result = lint_source(tmp_path, """\
            try:
                work()
            except ValueError:
                pass
        """)
        assert "AMP006" not in rule_ids(result)


class TestSuppression:
    def test_line_directive_suppresses_one_rule(self, tmp_path):
        result = lint_source(
            tmp_path, "rate = 1e9  # amplint: disable=AMP001\n")
        assert rule_ids(result) == []

    def test_line_directive_is_rule_specific(self, tmp_path):
        result = lint_source(
            tmp_path, "rate = 1e9  # amplint: disable=AMP002\n")
        assert "AMP001" in rule_ids(result)

    def test_line_directive_accepts_multiple_ids(self, tmp_path):
        result = lint_source(
            tmp_path,
            "n = payload / 8 * 1e9  # amplint: disable=AMP001, AMP002\n")
        assert rule_ids(result) == []

    def test_file_directive_suppresses_everywhere(self, tmp_path):
        result = lint_source(tmp_path, """\
            # amplint: disable-file=AMP001
            fast = 1e9
            slow = 1e6
        """)
        assert rule_ids(result) == []

    def test_disable_all(self, tmp_path):
        result = lint_source(tmp_path, """\
            # amplint: disable-file=all
            import math
            cost = math.inf
            rate = 1e9
        """)
        assert rule_ids(result) == []


class TestRuleFiltering:
    def test_select_restricts_rules(self, tmp_path):
        source = "import math\ncost = math.inf\nrate = 1e9\n"
        result = lint_source(tmp_path, source, select=["AMP003"])
        assert rule_ids(result) == ["AMP003"]

    def test_ignore_drops_rules(self, tmp_path):
        source = "import math\ncost = math.inf\nrate = 1e9\n"
        result = lint_source(tmp_path, source, ignore=["AMP001"])
        assert rule_ids(result) == ["AMP003"]

    def test_units_module_is_exempt_from_magnitude_rules(self, tmp_path):
        result = lint_source(
            tmp_path, "GIGA = 1e9\nBYTES = bits / 8\n", name="units.py")
        assert rule_ids(result) == []
