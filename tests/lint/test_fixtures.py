"""Self-check: the fixture trips every rule; the shipped tree is clean."""

from pathlib import Path

from repro.lint import all_rules, run_lint
from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestFixture:
    def test_every_rule_fires_on_the_fixture(self):
        result = run_lint([str(FIXTURES)])
        fired = set(result.counts)
        expected = {rule.rule_id for rule in all_rules()}
        assert fired == expected, f"rules not firing: {expected - fired}"

    def test_cli_exits_nonzero_on_the_fixture(self, capsys):
        assert main([str(FIXTURES)]) == 1
        capsys.readouterr()


class TestShippedTreeIsClean:
    def test_src_has_no_violations(self):
        result = run_lint([str(REPO_ROOT / "src")])
        rendered = "\n".join(v.render() for v in result.violations)
        assert result.exit_code == 0, f"violations in src:\n{rendered}"
        assert result.files_checked > 100

    def test_obs_package_is_clean(self):
        # The observability subsystem handles raw seconds, bytes, and
        # microsecond conversions everywhere — exactly the territory
        # AMP001-AMP006 police — so check it explicitly.
        result = run_lint([str(REPO_ROOT / "src" / "repro" / "obs")])
        rendered = "\n".join(v.render() for v in result.violations)
        assert result.exit_code == 0, f"violations in obs:\n{rendered}"
        assert result.files_checked >= 6
