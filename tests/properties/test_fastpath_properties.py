"""Fast-path equivalence property: collapsed == per-layer across the zoo.

The collapsed evaluation path replaces the per-layer sum of Eq. 1 with
one evaluation per layer equivalence class times its multiplicity.
Because Eq. 1 is linear in the per-layer terms this is exact up to
float associativity; here we pin that guarantee across every zoo model
(minGPT 85M through GLaM 1.2T), with and without the embedding
pseudo-layer, and with and without explicit ZeRO-3 gather traffic, on
every component of the breakdown.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.model import AMPeD
from repro.core.zero import NO_ZERO, ZeroConfig
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.zoo import MODELS

RELATIVE_TOLERANCE = 1e-9

GLOBAL_BATCH = 256

ZERO_VARIANTS = [
    pytest.param(NO_ZERO, False, id="no-zero"),
    pytest.param(ZeroConfig(stage=3), True, id="zero3-explicit"),
]


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


@pytest.mark.parametrize("include_embeddings", [True, False],
                         ids=["embeddings", "no-embeddings"])
@pytest.mark.parametrize("zero,zero_explicit", ZERO_VARIANTS)
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_collapsed_matches_per_layer(model_key, zero, zero_explicit,
                                     include_embeddings, system):
    spec = ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2)
    amped = AMPeD(model=MODELS[model_key], system=system,
                  parallelism=spec, zero=zero,
                  zero_explicit_comm=zero_explicit,
                  include_embeddings=include_embeddings,
                  evaluation_path="collapsed", validate=False)
    fast = amped.estimate_batch(GLOBAL_BATCH).as_dict()
    reference = replace(amped, evaluation_path="per_layer") \
        .estimate_batch(GLOBAL_BATCH).as_dict()

    assert fast.keys() == reference.keys()
    for component, reference_value in reference.items():
        fast_value = fast[component]
        scale = max(abs(reference_value), 1e-300)
        assert abs(fast_value - reference_value) / scale \
            <= RELATIVE_TOLERANCE, (
                f"{model_key}/{component}: collapsed {fast_value!r} vs "
                f"per-layer {reference_value!r}")
