"""Vectorized-backend equivalence property: arrays == scalars zoo-wide.

The vectorized backend (:mod:`repro.search.vectorized`) evaluates
batches of candidates column-wise over the compiled term tables,
replaying the scalar combiner's association order with float64
elementwise NumPy ops — so it owes the compiled path *bit-exact*
agreement, and therefore inherits the compiled path's 1e-9 bar against
the per-layer reference.  This module pins both across every zoo
model, plus whole-sweep identity: explore() rankings, run_sweep()
skip counters and journal rows, with pruning on and off.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

pytest.importorskip("numpy")

from repro.core.model import AMPeD
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.search.compiler import compile_sweep
from repro.search.dse import evaluate_candidate, explore
from repro.search.resilience import run_sweep
from repro.search.vectorized import evaluate_chunk
from repro.transformer.zoo import MODELS

RELATIVE_TOLERANCE = 1e-9

GLOBAL_BATCH = 256


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


@pytest.mark.parametrize("tune", [False, True], ids=["untuned", "tuned"])
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_chunk_matches_scalar_paths(model_key, tune, system):
    """Candidate fates and times agree with the scalar compiled path
    bit-exactly (hence with per-layer to 1e-9) for every legal mapping
    of every zoo model, tuned and untuned."""
    template = replace(
        AMPeD.for_mapping(MODELS[model_key], system,
                          dp=system.n_accelerators),
        evaluation_path="compiled")
    mappings = enumerate_mappings(system, MODELS[model_key])
    compiled = compile_sweep(template, GLOBAL_BATCH)
    _, outcomes = evaluate_chunk(template, compiled, mappings,
                                 GLOBAL_BATCH, tune_microbatches=tune)
    assert len(outcomes) == len(mappings)
    for spec, outcome in zip(mappings, outcomes):
        scalar = evaluate_candidate(template, spec, GLOBAL_BATCH,
                                    tune_microbatches=tune)
        reference = evaluate_candidate(
            replace(template, evaluation_path="per_layer"), spec,
            GLOBAL_BATCH, tune_microbatches=tune)
        if outcome is None:
            # The chunk defers to scalar evaluation exactly where the
            # tables cannot decide; the sweep runtime then reproduces
            # the scalar fate verbatim.
            assert not scalar.evaluated
            continue
        assert scalar.evaluated and reference.evaluated
        assert outcome.result.batch_time_s \
            == scalar.result.batch_time_s  # bit-exact vs compiled
        assert outcome.result.breakdown.as_dict() \
            == scalar.result.breakdown.as_dict()
        scale = max(abs(reference.result.batch_time_s), 1e-300)
        assert abs(outcome.result.batch_time_s
                   - reference.result.batch_time_s) / scale \
            <= RELATIVE_TOLERANCE, (
                f"{model_key}/{spec.describe()}: vectorized "
                f"{outcome.result.batch_time_s!r} vs per-layer "
                f"{reference.result.batch_time_s!r}")


@pytest.mark.parametrize("prune", [False, True], ids=["full", "pruned"])
def test_explore_ranking_identical_across_paths(prune, system):
    """explore() returns the same ranked labels, and times within the
    path-equivalence bars, whether candidates run one at a time or as
    one array program."""
    template = AMPeD.for_mapping(MODELS["megatron-145b"], system,
                                 dp=system.n_accelerators)
    rankings = {}
    for path in ("per_layer", "compiled", "vectorized"):
        results = explore(template, GLOBAL_BATCH, max_results=5,
                          prune=prune, evaluation_path=path)
        rankings[path] = [(r.label, r.batch_time_s) for r in results]
    assert [label for label, _ in rankings["vectorized"]] \
        == [label for label, _ in rankings["per_layer"]]
    # Bit-exact against compiled; 1e-9 against per-layer.
    assert rankings["vectorized"] == rankings["compiled"]
    for (_, vectorized_t), (_, reference_t) in zip(
            rankings["vectorized"], rankings["per_layer"]):
        scale = max(abs(reference_t), 1e-300)
        assert abs(vectorized_t - reference_t) / scale \
            <= RELATIVE_TOLERANCE


def _candidate_rows(path):
    rows = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("kind") not in (None, "candidate"):
            continue
        if "key" not in record:
            continue
        rows.append((record["key"], record.get("status"),
                     record.get("category"), record.get("detail")))
    return rows


@pytest.mark.parametrize("prune", [False, True], ids=["full", "pruned"])
def test_run_sweep_pruner_parity(prune, tmp_path, system):
    """The batched pruner walk reproduces the serial compiled sweep
    exactly: same ranking, same skip counters, same journal rows in the
    same order."""
    template = AMPeD.for_mapping(MODELS["megatron-145b"], system,
                                 dp=system.n_accelerators)
    outcomes = {}
    for path in ("compiled", "vectorized"):
        journal = tmp_path / f"{path}.jsonl"
        outcomes[path] = (
            run_sweep(template, GLOBAL_BATCH, max_results=5,
                      prune=prune, evaluation_path=path,
                      journal_path=journal),
            journal)
    compiled_outcome, compiled_journal = outcomes["compiled"]
    vectorized_outcome, vectorized_journal = outcomes["vectorized"]
    assert [(r.label, r.batch_time_s)
            for r in vectorized_outcome.results] \
        == [(r.label, r.batch_time_s) for r in compiled_outcome.results]
    assert vectorized_outcome.report.skipped \
        == compiled_outcome.report.skipped
    assert vectorized_outcome.report.evaluated \
        == compiled_outcome.report.evaluated
    assert vectorized_outcome.report.n_candidates \
        == compiled_outcome.report.n_candidates
    assert _candidate_rows(vectorized_journal) \
        == _candidate_rows(compiled_journal)


def test_run_sweep_survivor_sets_identical(system):
    """With pruning on, the exact set of evaluated (surviving)
    candidates matches between backends — the batched lower bounds
    prune neither more nor less than the scalar pruner."""
    template = AMPeD.for_mapping(MODELS["mingpt-85m"], system,
                                 dp=system.n_accelerators)
    survivors = {}
    for path in ("compiled", "vectorized"):
        outcome = run_sweep(template, GLOBAL_BATCH, max_results=3,
                            prune=True, evaluation_path=path)
        survivors[path] = (
            outcome.report.evaluated,
            dict(outcome.report.skipped),
            [(r.label, r.batch_time_s) for r in outcome.results])
    assert survivors["vectorized"] == survivors["compiled"]
