"""Property tests on the production-runtime models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.checkpoint import (
    CheckpointSpec,
    checkpoint_overhead_fraction,
    young_daly_interval,
)
from repro.runtime.ramp import BatchSizeRamp
from repro.runtime.reliability import FailureModel, campaign_estimate

deltas = st.floats(min_value=1.0, max_value=600.0, allow_nan=False)
mtbfs = st.floats(min_value=3600.0, max_value=1e7, allow_nan=False)
cleans = st.floats(min_value=3600.0, max_value=1e8, allow_nan=False)


class TestYoungDalyProperties:
    @settings(max_examples=60)
    @given(delta=deltas, mtbf=mtbfs)
    def test_interval_beats_neighbors(self, delta, mtbf):
        """The closed-form optimum minimizes the first-order overhead
        model against multiplicative perturbations."""
        optimum = young_daly_interval(delta, mtbf)

        def overhead(tau):
            return delta / tau + tau / (2 * mtbf)

        for factor in (0.5, 0.8, 1.25, 2.0):
            assert overhead(optimum) <= overhead(optimum * factor) \
                + 1e-12

    @settings(max_examples=60)
    @given(delta=deltas, mtbf=mtbfs)
    def test_interval_scales_sqrt(self, delta, mtbf):
        base = young_daly_interval(delta, mtbf)
        assert young_daly_interval(4 * delta, mtbf) \
            == pytest.approx(2 * base)
        assert young_daly_interval(delta, 4 * mtbf) \
            == pytest.approx(2 * base)

    @settings(max_examples=60)
    @given(delta=deltas,
           tau=st.floats(min_value=1.0, max_value=1e6,
                         allow_nan=False))
    def test_overhead_fraction_in_unit_interval(self, delta, tau):
        fraction = checkpoint_overhead_fraction(delta, tau)
        assert 0.0 < fraction < 1.0


class TestCampaignProperties:
    @settings(max_examples=40)
    @given(clean=cleans, delta=deltas, mtbf_hours=st.floats(
        min_value=1e3, max_value=1e6, allow_nan=False),
        devices=st.integers(min_value=1, max_value=4096))
    def test_expected_time_exceeds_clean(self, clean, delta,
                                         mtbf_hours, devices):
        estimate = campaign_estimate(
            clean, CheckpointSpec(write_seconds=delta),
            FailureModel(device_mtbf_hours=mtbf_hours,
                         n_devices=devices))
        assert estimate.expected_seconds > clean
        assert estimate.checkpoint_overhead >= 0
        assert estimate.failure_overhead >= 0

    @settings(max_examples=40)
    @given(clean=cleans, delta=deltas)
    def test_more_devices_more_overhead(self, clean, delta):
        checkpoint = CheckpointSpec(write_seconds=delta)
        small = campaign_estimate(
            clean, checkpoint,
            FailureModel(device_mtbf_hours=50000, n_devices=64))
        large = campaign_estimate(
            clean, checkpoint,
            FailureModel(device_mtbf_hours=50000, n_devices=2048))
        assert large.total_overhead > small.total_overhead


class TestRampProperties:
    @settings(max_examples=60)
    @given(initial=st.integers(min_value=1, max_value=512),
           growth=st.integers(min_value=0, max_value=4096),
           ramp_tokens=st.floats(min_value=0, max_value=1e9,
                                 allow_nan=False),
           total=st.floats(min_value=1e3, max_value=1e10,
                           allow_nan=False),
           stages=st.integers(min_value=1, max_value=16))
    def test_stages_conserve_tokens_and_bounds(self, initial, growth,
                                               ramp_tokens, total,
                                               stages):
        ramp = BatchSizeRamp(initial_batch=initial,
                             full_batch=initial + growth,
                             ramp_tokens=ramp_tokens,
                             n_stages=stages)
        plan = ramp.stages(total)
        assert sum(tokens for _, tokens in plan) \
            == pytest.approx(total)
        for batch, tokens in plan:
            assert initial <= batch <= initial + growth
            assert tokens > 0
