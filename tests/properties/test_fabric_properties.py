"""Property tests on the fat-tree fabric model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import two_level_fat_tree

ports = st.floats(min_value=1e10, max_value=1e13, allow_nan=False)
leaf_sizes = st.sampled_from([4, 8, 16, 32])
leaf_counts = st.sampled_from([2, 4, 8, 16])
tapers = st.floats(min_value=1.0, max_value=32.0, allow_nan=False)


class TestPlacementProperties:
    """Mapping factorization round-trips (placed here with the other
    structural property tests)."""

    @settings(max_examples=60)
    @given(node_bits=st.integers(min_value=0, max_value=4),
           cluster_bits=st.integers(min_value=0, max_value=6),
           tp_bits=st.integers(min_value=0, max_value=6),
           pp_bits=st.integers(min_value=0, max_value=4))
    def test_spec_from_totals_round_trips(self, node_bits,
                                          cluster_bits, tp_bits,
                                          pp_bits):
        from repro.errors import MappingError
        from repro.hardware.catalog import megatron_a100_cluster
        from repro.parallelism.spec import spec_from_totals

        node_size = 1 << node_bits
        n_nodes = 1 << cluster_bits
        total = node_size * n_nodes
        tp = 1 << min(tp_bits, node_bits + cluster_bits)
        remaining = total // tp
        pp = 1 << min(pp_bits, remaining.bit_length() - 1)
        dp = remaining // pp
        system = megatron_a100_cluster(
            n_nodes=n_nodes, accelerators_per_node=node_size)
        try:
            spec = spec_from_totals(system, tp=tp, pp=pp, dp=dp)
        except MappingError:
            return  # splits that fragment the node boundary are rejected
        assert (spec.tp, spec.pp, spec.dp) == (tp, pp, dp)
        spec.validate_against(system)


class TestFabricProperties:
    @settings(max_examples=50)
    @given(port=ports, leaf=leaf_sizes, leaves=leaf_counts,
           taper=tapers)
    def test_bandwidth_never_exceeds_port(self, port, leaf, leaves,
                                          taper):
        fabric = two_level_fat_tree(port, nodes_per_leaf=leaf,
                                    n_leaves=leaves,
                                    oversubscription=taper)
        for group in (1, leaf, leaf * leaves):
            assert fabric.effective_bandwidth(group) <= port * 1.0001

    @settings(max_examples=50)
    @given(port=ports, leaf=leaf_sizes, leaves=leaf_counts,
           taper=tapers)
    def test_bandwidth_non_increasing_in_span(self, port, leaf, leaves,
                                              taper):
        fabric = two_level_fat_tree(port, nodes_per_leaf=leaf,
                                    n_leaves=leaves,
                                    oversubscription=taper)
        local = fabric.effective_bandwidth(leaf)
        wide = fabric.effective_bandwidth(leaf * leaves)
        assert wide <= local

    @settings(max_examples=50)
    @given(port=ports, leaf=leaf_sizes, leaves=leaf_counts,
           taper=tapers)
    def test_latency_non_decreasing_in_span(self, port, leaf, leaves,
                                            taper):
        fabric = two_level_fat_tree(port, nodes_per_leaf=leaf,
                                    n_leaves=leaves,
                                    oversubscription=taper)
        assert fabric.effective_latency(leaf * leaves) \
            >= fabric.effective_latency(1)

    @settings(max_examples=50)
    @given(port=ports, leaf=leaf_sizes, leaves=leaf_counts,
           taper=tapers)
    def test_taper_only_hurts_cross_leaf_traffic(self, port, leaf,
                                                 leaves, taper):
        flat = two_level_fat_tree(port, nodes_per_leaf=leaf,
                                  n_leaves=leaves,
                                  oversubscription=1.0)
        tapered = two_level_fat_tree(port, nodes_per_leaf=leaf,
                                     n_leaves=leaves,
                                     oversubscription=taper)
        assert tapered.effective_bandwidth(leaf) \
            == flat.effective_bandwidth(leaf)
        assert tapered.effective_bandwidth(leaf * leaves) \
            <= flat.effective_bandwidth(leaf * leaves) * 1.0001
