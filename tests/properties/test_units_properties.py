"""Property tests on unit helpers and the efficiency fit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallelism.microbatch import MicrobatchEfficiency
from repro.units import (
    days_to_seconds,
    divisors,
    format_duration,
    format_si,
    relative_error,
    seconds_to_days,
)


class TestUnitProperties:
    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_day_round_trip(self, seconds):
        assert days_to_seconds(seconds_to_days(seconds)) \
            == pytest.approx(seconds)

    @given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
    def test_format_duration_total(self, seconds):
        text = format_duration(seconds)
        assert any(text.endswith(unit)
                   for unit in ("us", "ms", "s", "min", "h", "days"))

    @given(st.floats(min_value=1e-3, max_value=1e18, allow_nan=False),
           st.floats(min_value=1e-3, max_value=1e18, allow_nan=False))
    def test_relative_error_symmetric_zero(self, a, b):
        assert relative_error(a, a) == 0.0
        assert relative_error(a, b) >= 0.0

    @given(st.integers(min_value=1, max_value=100000))
    def test_divisors_complete_and_sorted(self, n):
        divs = divisors(n)
        assert divs[0] == 1 and divs[-1] == n
        assert divs == sorted(set(divs))
        assert all(n % d == 0 for d in divs)

    @given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False))
    def test_format_si_nonempty(self, value):
        assert format_si(value, "X")


class TestEfficiencyProperties:
    @given(a=st.floats(min_value=0.1, max_value=1.5, allow_nan=False),
           b=st.floats(min_value=0.0, max_value=1000.0,
                       allow_nan=False),
           ub=st.floats(min_value=0.01, max_value=1e6,
                        allow_nan=False))
    def test_always_in_unit_interval(self, a, b, ub):
        eff = MicrobatchEfficiency(a=a, b=b)
        assert 0.0 <= eff(ub) <= 1.0

    @given(a=st.floats(min_value=0.1, max_value=1.5, allow_nan=False),
           b=st.floats(min_value=0.0, max_value=1000.0,
                       allow_nan=False),
           ub=st.floats(min_value=0.01, max_value=1e5,
                        allow_nan=False))
    def test_monotone_nondecreasing(self, a, b, ub):
        eff = MicrobatchEfficiency(a=a, b=b)
        assert eff(2 * ub) >= eff(ub) - 1e-12

    @given(ub1=st.floats(min_value=1, max_value=100, allow_nan=False),
           scale=st.floats(min_value=2, max_value=50,
                           allow_nan=False),
           e1=st.floats(min_value=0.05, max_value=0.5,
                        allow_nan=False),
           gain=st.floats(min_value=1.2, max_value=1.8,
                          allow_nan=False))
    def test_from_points_interpolates(self, ub1, scale, e1, gain):
        ub2 = ub1 * scale
        e2 = min(e1 * gain, 0.95)
        if e2 <= e1:
            return
        from repro.errors import ConfigurationError
        try:
            eff = MicrobatchEfficiency.from_points((ub1, e1), (ub2, e2))
        except ConfigurationError:
            return  # some point pairs imply non-saturating fits
        assert eff(ub1) == pytest.approx(e1, rel=1e-6)
        assert eff(ub2) == pytest.approx(e2, rel=1e-6)
