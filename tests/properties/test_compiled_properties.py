"""Sweep-compiler equivalence property: compiled == per-layer zoo-wide.

The sweep compiler factors Eq. 1 into term tables keyed on minimal
mapping coordinates and evaluates candidates by key projection + table
lookups + additions (:mod:`repro.search.compiler`).  Because it
*replays* the collapsed path's arithmetic association for association
the agreement bar is the same 1e-9 the collapsed path holds against the
per-layer reference — here pinned across every zoo model, and across
whole sweeps: identical skip categories and coverage counters, with
pruning on, and through a worker pool.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.model import AMPeD
from repro.core.zero import NO_ZERO, ZeroConfig
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.mapping import enumerate_mappings
from repro.parallelism.spec import ParallelismSpec
from repro.search.dse import evaluate_candidate, explore
from repro.transformer.zoo import MODELS

RELATIVE_TOLERANCE = 1e-9

GLOBAL_BATCH = 256

ZERO_VARIANTS = [
    pytest.param(NO_ZERO, False, id="no-zero"),
    pytest.param(ZeroConfig(stage=3), True, id="zero3-explicit"),
]


@pytest.fixture(scope="module")
def system() -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=4,
                    intra_link=NVLINK3, inter_link=IB_HDR, n_nics=4)
    return SystemSpec(node=node, n_nodes=4)


def _assert_close(compiled: dict, reference: dict, label: str) -> None:
    assert compiled.keys() == reference.keys()
    for component, reference_value in reference.items():
        compiled_value = compiled[component]
        scale = max(abs(reference_value), 1e-300)
        assert abs(compiled_value - reference_value) / scale \
            <= RELATIVE_TOLERANCE, (
                f"{label}/{component}: compiled {compiled_value!r} vs "
                f"per-layer {reference_value!r}")


@pytest.mark.parametrize("include_embeddings", [True, False],
                         ids=["embeddings", "no-embeddings"])
@pytest.mark.parametrize("zero,zero_explicit", ZERO_VARIANTS)
@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_compiled_matches_per_layer(model_key, zero, zero_explicit,
                                    include_embeddings, system):
    spec = ParallelismSpec(tp_intra=4, pp_inter=2, dp_inter=2)
    amped = AMPeD(model=MODELS[model_key], system=system,
                  parallelism=spec, zero=zero,
                  zero_explicit_comm=zero_explicit,
                  include_embeddings=include_embeddings,
                  evaluation_path="compiled", validate=False)
    compiled = amped.estimate_batch(GLOBAL_BATCH).as_dict()
    reference = replace(amped, evaluation_path="per_layer") \
        .estimate_batch(GLOBAL_BATCH).as_dict()
    _assert_close(compiled, reference, model_key)


@pytest.mark.parametrize("model_key", sorted(MODELS))
def test_sweep_outcomes_identical_across_paths(model_key, system):
    """Per-candidate fates (evaluated / skip category / detail) agree
    between the compiled route and the generic per-layer route across
    every legal mapping of the fixture system."""
    template = AMPeD.for_mapping(MODELS[model_key], system,
                                 dp=system.n_accelerators)
    mappings = enumerate_mappings(system, MODELS[model_key])
    for spec in mappings:
        compiled = evaluate_candidate(
            replace(template, evaluation_path="compiled"), spec,
            GLOBAL_BATCH)
        reference = evaluate_candidate(
            replace(template, evaluation_path="per_layer"), spec,
            GLOBAL_BATCH)
        assert compiled.skip_category == reference.skip_category, (
            f"{model_key}/{spec.describe()}")
        assert compiled.detail == reference.detail
        assert compiled.evaluated == reference.evaluated
        if compiled.evaluated:
            scale = max(abs(reference.result.batch_time_s), 1e-300)
            assert abs(compiled.result.batch_time_s
                       - reference.result.batch_time_s) / scale \
                <= RELATIVE_TOLERANCE


@pytest.mark.parametrize("prune", [False, True], ids=["full", "pruned"])
def test_explore_ranking_identical_across_paths(prune, system):
    """explore() returns the same ranked labels and times on all three
    evaluation paths, with and without branch-and-bound pruning."""
    template = AMPeD.for_mapping(MODELS["megatron-145b"], system,
                                 dp=system.n_accelerators)
    rankings = {}
    for path in ("per_layer", "collapsed", "compiled"):
        results = explore(template, GLOBAL_BATCH, max_results=5,
                          prune=prune, evaluation_path=path)
        rankings[path] = [(r.label, r.batch_time_s) for r in results]
    labels = {path: [label for label, _ in ranked]
              for path, ranked in rankings.items()}
    assert labels["compiled"] == labels["per_layer"]
    assert labels["collapsed"] == labels["per_layer"]
    for (_, compiled_t), (_, reference_t) in zip(
            rankings["compiled"], rankings["per_layer"]):
        scale = max(abs(reference_t), 1e-300)
        assert abs(compiled_t - reference_t) / scale \
            <= RELATIVE_TOLERANCE


def test_explore_parallel_matches_serial(system):
    """A worker pool (warmed via the initializer) returns the identical
    ranking to the serial compiled sweep."""
    template = AMPeD.for_mapping(MODELS["mingpt-85m"], system,
                                 dp=system.n_accelerators)
    serial = explore(template, GLOBAL_BATCH, max_results=5)
    pooled = explore(template, GLOBAL_BATCH, max_results=5, workers=2)
    assert [(r.label, r.batch_time_s) for r in serial] \
        == [(r.label, r.batch_time_s) for r in pooled]
