"""Property tests on the memory footprint model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zero import ZeroConfig
from repro.hardware.precision import MIXED_FP16
from repro.memory.footprint import estimate_footprint
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig

model_configs = st.builds(
    TransformerConfig,
    name=st.just("prop"),
    n_layers=st.integers(min_value=1, max_value=12),
    hidden_size=st.sampled_from([64, 256, 1024]),
    n_heads=st.just(4),
    sequence_length=st.sampled_from([32, 128]),
    vocab_size=st.integers(min_value=100, max_value=60000),
)

microbatches = st.integers(min_value=1, max_value=64)


class TestFootprintInvariants:
    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, ub=microbatches)
    def test_components_positive(self, model, ub):
        footprint = estimate_footprint(model, ParallelismSpec(), ub,
                                       MIXED_FP16)
        assert footprint.parameters > 0
        assert footprint.activations > 0
        assert footprint.total == pytest.approx(
            sum(v for k, v in footprint.as_dict().items()
                if k != "total"))

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, ub=microbatches)
    def test_zero_stages_monotone(self, model, ub):
        spec = ParallelismSpec(dp_inter=8)
        totals = [estimate_footprint(model, spec, ub, MIXED_FP16,
                                     zero=ZeroConfig(stage=stage)).total
                  for stage in (0, 1, 2, 3)]
        for lighter, heavier in zip(totals[1:], totals):
            assert lighter <= heavier + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, ub=microbatches,
           tp=st.sampled_from([1, 2, 4]))
    def test_tp_shards_strictly(self, model, ub, tp):
        flat = estimate_footprint(model, ParallelismSpec(), ub,
                                  MIXED_FP16)
        sharded = estimate_footprint(
            model, ParallelismSpec(tp_intra=tp), ub, MIXED_FP16)
        assert sharded.parameters \
            == pytest.approx(flat.parameters / tp)
        assert sharded.activations \
            == pytest.approx(flat.activations / tp)

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, ub=microbatches)
    def test_activations_linear_in_microbatch(self, model, ub):
        spec = ParallelismSpec()
        one = estimate_footprint(model, spec, ub, MIXED_FP16)
        double = estimate_footprint(model, spec, 2 * ub, MIXED_FP16)
        assert double.activations \
            == pytest.approx(2 * one.activations)
        assert double.parameters == pytest.approx(one.parameters)
