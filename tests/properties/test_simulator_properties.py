"""Property tests on the discrete-event pipeline simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.simulator import (
    PipelineWorkload,
    naive_bubble_fraction,
    simulate_pipeline,
)

stages = st.integers(min_value=1, max_value=8)
microbatches = st.integers(min_value=1, max_value=24)
durations = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)


class TestPipelineInvariants:
    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches, f=durations, b=durations)
    def test_gpipe_closed_form_makespan(self, s, m, f, b):
        """Equal tasks, zero comm: makespan = (M + S - 1)(f + b)."""
        result = simulate_pipeline(
            PipelineWorkload(forward_time=f, backward_time=b),
            n_stages=s, n_microbatches=m, schedule="gpipe")
        expected = (m + s - 1) * (f + b)
        assert abs(result.makespan_s - expected) < 1e-6 * expected

    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches, f=durations, b=durations)
    def test_busy_time_equals_work(self, s, m, f, b):
        result = simulate_pipeline(
            PipelineWorkload(forward_time=f, backward_time=b),
            n_stages=s, n_microbatches=m)
        assert abs(result.total_busy_s - s * m * (f + b)) < 1e-6

    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches, f=durations, b=durations,
           c=st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    def test_makespan_bounded_below_by_work(self, s, m, f, b, c):
        """No schedule beats one stage's total work per stage."""
        result = simulate_pipeline(
            PipelineWorkload(forward_time=f, backward_time=b,
                             comm_time=c),
            n_stages=s, n_microbatches=m)
        assert result.makespan_s >= m * (f + b) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches, f=durations, b=durations)
    def test_1f1b_never_slower_than_gpipe(self, s, m, f, b):
        workload = PipelineWorkload(forward_time=f, backward_time=b)
        gpipe = simulate_pipeline(workload, s, m, schedule="gpipe")
        one_f = simulate_pipeline(workload, s, m, schedule="1f1b")
        assert one_f.makespan_s <= gpipe.makespan_s + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches)
    def test_bubble_fraction_matches_naive_bound(self, s, m):
        result = simulate_pipeline(PipelineWorkload(1.0, 1.0),
                                   n_stages=s, n_microbatches=m)
        assert abs(result.bubble_fraction
                   - naive_bubble_fraction(s, m)) < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(s=st.integers(min_value=2, max_value=6),
           m=st.integers(min_value=8, max_value=24),
           chunks=st.integers(min_value=2, max_value=4))
    def test_interleaving_never_increases_bubble(self, s, m, chunks):
        base = simulate_pipeline(PipelineWorkload(1.0, 1.0), s, m)
        chunked = simulate_pipeline(
            PipelineWorkload(1.0 / chunks, 1.0 / chunks), s, m,
            schedule="interleaved", n_chunks=chunks)
        assert chunked.bubble_fraction <= base.bubble_fraction + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(s=stages, m=microbatches, f=durations)
    def test_more_microbatches_reduce_bubble_fraction(self, s, m, f):
        workload = PipelineWorkload(forward_time=f, backward_time=f)
        small = simulate_pipeline(workload, s, m)
        large = simulate_pipeline(workload, s, m + 8)
        assert large.bubble_fraction <= small.bubble_fraction + 1e-9
