"""Property tests on the communication equations."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.communication import (
    CommEnvironment,
    forward_comm_time,
    gradient_comm_time,
    moe_comm_time,
    pp_comm_time,
    tp_comm_time,
)
from repro.hardware.catalog import A100
from repro.hardware.interconnect import LinkSpec
from repro.hardware.node import NodeSpec
from repro.hardware.precision import MIXED_FP16
from repro.hardware.system import SystemSpec
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig

MODEL = TransformerConfig(name="prop", n_layers=4, hidden_size=128,
                          n_heads=4, sequence_length=64,
                          vocab_size=1000)

bandwidths = st.floats(min_value=1e9, max_value=1e13, allow_nan=False)
batches = st.floats(min_value=1.0, max_value=4096.0, allow_nan=False)
degrees = st.sampled_from([2, 4, 8])


def system_with(intra_bw: float, inter_bw: float,
                node_size: int = 8, n_nodes: int = 8) -> SystemSpec:
    node = NodeSpec(
        accelerator=A100,
        n_accelerators=node_size,
        intra_link=LinkSpec("intra", 1e-6, intra_bw),
        inter_link=LinkSpec("inter", 5e-6, inter_bw),
        n_nics=node_size,
    )
    return SystemSpec(node=node, n_nodes=n_nodes)


def env_with(system, **spec_kwargs) -> CommEnvironment:
    return CommEnvironment(system=system,
                           parallelism=ParallelismSpec(**spec_kwargs),
                           precision=MIXED_FP16)


class TestMonotonicity:
    @settings(max_examples=40)
    @given(bw=bandwidths, b=batches)
    def test_tp_time_decreases_with_bandwidth(self, bw, b):
        slow = env_with(system_with(bw, 1e11), tp_intra=8, dp_inter=8)
        fast = env_with(system_with(2 * bw, 1e11), tp_intra=8,
                        dp_inter=8)
        assert tp_comm_time(fast, MODEL, b, "intra") \
            <= tp_comm_time(slow, MODEL, b, "intra")

    @settings(max_examples=40)
    @given(bw=bandwidths, b=batches)
    def test_pp_time_decreases_with_bandwidth(self, bw, b):
        slow = env_with(system_with(1e12, bw), pp_intra=8, dp_inter=8)
        fast = env_with(system_with(1e12, 2 * bw), pp_intra=8,
                        dp_inter=8)
        assert pp_comm_time(fast, MODEL, b, "inter") \
            <= pp_comm_time(slow, MODEL, b, "inter")

    @settings(max_examples=40)
    @given(b=batches, tp=degrees)
    def test_tp_volume_linear_in_batch(self, b, tp):
        env = env_with(system_with(1e12, 1e11), tp_intra=tp,
                       dp_intra=8 // tp, dp_inter=8)
        latency = tp_comm_time(env, MODEL, 1e-9, "intra")
        one = tp_comm_time(env, MODEL, b, "intra") - latency
        double = tp_comm_time(env, MODEL, 2 * b, "intra") - latency
        assert abs(double - 2 * one) <= 1e-9 + 1e-6 * abs(double)

    @settings(max_examples=40)
    @given(b=batches)
    def test_forward_comm_nonnegative_everywhere(self, b):
        env = env_with(system_with(1e12, 1e11), tp_intra=4,
                       pp_intra=2, dp_inter=8)
        assert forward_comm_time(env, MODEL, b, False) >= 0.0
        assert forward_comm_time(env, MODEL, b, True) \
            >= forward_comm_time(env, MODEL, b, False)

    @settings(max_examples=40)
    @given(params=st.floats(min_value=0, max_value=1e12,
                            allow_nan=False))
    def test_gradient_time_linear_in_params(self, params):
        env = env_with(system_with(1e12, 1e11), dp_intra=8,
                       dp_inter=8)
        zero = gradient_comm_time(env, 0.0)
        one = gradient_comm_time(env, params) - zero
        double = gradient_comm_time(env, 2 * params) - zero
        assert abs(double - 2 * one) <= 1e-9 + 1e-6 * abs(double)

    @settings(max_examples=40)
    @given(b=batches, mult=st.floats(min_value=0.5, max_value=8.0,
                                     allow_nan=False))
    def test_moe_scales_with_multiplier(self, b, mult):
        base = env_with(system_with(1e12, 1e11), tp_intra=8,
                        dp_inter=8)
        scaled = dataclasses.replace(base, moe_volume_multiplier=mult)
        latency = 2 * base.inter_link.latency_s \
            * base.moe_topology.factor(8) * 8
        base_vol = moe_comm_time(base, MODEL, b) - latency
        scaled_vol = moe_comm_time(scaled, MODEL, b) - latency
        assert abs(scaled_vol - mult * base_vol) \
            <= 1e-12 + 1e-6 * abs(scaled_vol)
