"""Property tests: topology factors vs the step simulators.

The closed-form topology factors of Eq. 6/9/11 must equal the volume
multipliers the constructive simulators measure, for *every* rank count
hypothesis throws at them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.alltoall import simulate_pairwise_alltoall
from repro.collectives.hierarchical import simulate_hierarchical_allreduce
from repro.collectives.ring import simulate_ring_allreduce
from repro.collectives.tree import simulate_tree_allreduce
from repro.hardware.interconnect import LinkSpec
from repro.parallelism.topology import (
    PAIRWISE_ALLTOALL,
    RING,
    TREE,
)

LINK = LinkSpec("prop", latency_s=0.0, bandwidth_bits_per_s=1e9)

ranks = st.integers(min_value=1, max_value=200)
payloads = st.floats(min_value=1.0, max_value=1e12,
                     allow_nan=False, allow_infinity=False)


class TestSimulatorMatchesClosedForm:
    @given(n=ranks, payload=payloads)
    def test_ring_factor(self, n, payload):
        result = simulate_ring_allreduce(payload, n, LINK)
        assert abs(result.effective_topology_factor
                   - RING.factor(n)) < 1e-9

    @given(n=ranks, payload=payloads)
    def test_tree_factor(self, n, payload):
        result = simulate_tree_allreduce(payload, n, LINK)
        assert abs(result.effective_topology_factor
                   - TREE.factor(n)) < 1e-9

    @given(n=ranks, payload=payloads)
    def test_alltoall_factor(self, n, payload):
        result = simulate_pairwise_alltoall(payload, n, LINK)
        assert abs(result.effective_topology_factor
                   - PAIRWISE_ALLTOALL.factor(n)) < 1e-9


class TestFactorInvariants:
    @given(n=st.integers(min_value=2, max_value=4096))
    def test_ring_factor_bounds(self, n):
        assert 1.0 <= RING.factor(n) < 2.0

    @given(n=st.integers(min_value=2, max_value=4096))
    def test_alltoall_below_one(self, n):
        assert 0.5 <= PAIRWISE_ALLTOALL.factor(n) < 1.0

    @given(n=st.integers(min_value=2, max_value=4096))
    def test_ring_factor_monotone(self, n):
        assert RING.factor(n + 1) > RING.factor(n)

    @given(n=ranks)
    def test_latency_term_nonnegative(self, n):
        for topology in (RING, TREE, PAIRWISE_ALLTOALL):
            assert topology.latency_term(1e-6, n) >= 0.0


class TestHierarchicalInvariants:
    @settings(max_examples=40)
    @given(n_intra=st.integers(min_value=1, max_value=16),
           n_inter=st.integers(min_value=1, max_value=64),
           payload=st.floats(min_value=1e3, max_value=1e12,
                             allow_nan=False))
    def test_intra_sharding_always_helps_inter_phase(self, n_intra,
                                                     n_inter, payload):
        """The inter phase never carries more than the flat all-reduce."""
        slow = LinkSpec("slow", latency_s=0.0,
                        bandwidth_bits_per_s=1e9)
        fast = LinkSpec("fast", latency_s=0.0,
                        bandwidth_bits_per_s=1e12)
        hier = simulate_hierarchical_allreduce(payload, n_intra,
                                               n_inter, fast, slow)
        flat = simulate_ring_allreduce(payload, n_inter, slow)
        assert hier.inter_allreduce_s <= flat.time_s + 1e-12
