"""Property tests on the AMPeD model's physical invariants."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AMPeD
from repro.errors import MappingError
from repro.hardware.catalog import A100
from repro.hardware.interconnect import IB_HDR, NVLINK3
from repro.hardware.node import NodeSpec
from repro.hardware.system import SystemSpec
from repro.parallelism.microbatch import (
    CASE_STUDY_EFFICIENCY,
    MicrobatchEfficiency,
)
from repro.parallelism.spec import ParallelismSpec
from repro.transformer.config import TransformerConfig

model_configs = st.builds(
    TransformerConfig,
    name=st.just("prop"),
    n_layers=st.integers(min_value=1, max_value=8),
    hidden_size=st.sampled_from([64, 128, 256]),
    n_heads=st.sampled_from([4, 8]),
    sequence_length=st.sampled_from([16, 64, 256]),
    vocab_size=st.integers(min_value=100, max_value=50000),
)


def build_system(node_size: int, n_nodes: int) -> SystemSpec:
    node = NodeSpec(accelerator=A100, n_accelerators=node_size,
                    intra_link=NVLINK3, inter_link=IB_HDR,
                    n_nics=node_size)
    return SystemSpec(node=node, n_nodes=n_nodes)


def build_amped(model, spec, system, **kwargs) -> AMPeD:
    return AMPeD(model=model, system=system, parallelism=spec,
                 efficiency=CASE_STUDY_EFFICIENCY, validate=False,
                 **kwargs)


@st.composite
def specs(draw):
    """Parallelism specs whose degrees stay small enough to divide the
    test batch."""
    return ParallelismSpec(
        tp_intra=draw(st.sampled_from([1, 2, 4])),
        pp_inter=draw(st.sampled_from([1, 2, 4])),
        dp_intra=draw(st.sampled_from([1, 2])),
        dp_inter=draw(st.sampled_from([1, 2, 4])),
    )


class TestModelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, spec=specs())
    def test_all_components_nonnegative(self, model, spec):
        system = build_system(8, 16)
        amped = build_amped(model, spec, system)
        try:
            breakdown = amped.estimate_batch(256)
        except MappingError:
            return
        for value in breakdown.as_dict().values():
            assert value >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, spec=specs())
    def test_time_scales_linearly_in_batches(self, model, spec):
        system = build_system(8, 16)
        amped = build_amped(model, spec, system)
        try:
            one = amped.estimate(256, n_batches=1).total_time_s
        except MappingError:
            return
        seven = amped.estimate(256, n_batches=7).total_time_s
        assert seven == pytest.approx(7 * one)

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs)
    def test_faster_interconnect_never_hurts(self, model):
        spec = ParallelismSpec(tp_intra=4, dp_intra=2, dp_inter=16)
        slow = build_system(8, 16)
        fast_node = slow.node.with_links(
            intra_link=slow.node.intra_link.scaled(4.0),
            inter_link=slow.node.inter_link.scaled(4.0))
        fast = slow.with_node(fast_node)
        t_slow = build_amped(model, spec, slow).estimate_batch(256).total
        t_fast = build_amped(model, spec, fast).estimate_batch(256).total
        assert t_fast <= t_slow + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs,
           eff=st.floats(min_value=0.1, max_value=1.0,
                         allow_nan=False))
    def test_lower_efficiency_never_helps(self, model, eff):
        spec = ParallelismSpec(tp_intra=4, dp_intra=2, dp_inter=16)
        system = build_system(8, 16)
        derated = MicrobatchEfficiency(a=eff, b=0.0, floor=eff,
                                       ceiling=eff)
        perfect = MicrobatchEfficiency(a=1.0, b=0.0, floor=1.0)
        t_derated = dataclasses.replace(
            build_amped(model, spec, system),
            efficiency=derated).estimate_batch(256).total
        t_perfect = dataclasses.replace(
            build_amped(model, spec, system),
            efficiency=perfect).estimate_batch(256).total
        assert t_perfect <= t_derated + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(model=model_configs, spec=specs())
    def test_compute_is_conserved_across_mappings(self, model, spec):
        """Total compute work (time x workers) is mapping-independent
        at fixed efficiency."""
        system = build_system(8, 16)
        perfect = MicrobatchEfficiency(a=1.0, b=0.0, floor=1.0)
        amped = dataclasses.replace(build_amped(model, spec, system),
                                    efficiency=perfect)
        serial_system = build_system(1, 1)
        serial = dataclasses.replace(
            build_amped(model, ParallelismSpec(), serial_system),
            efficiency=perfect)
        try:
            sharded = amped.estimate_batch(256)
        except MappingError:
            return
        baseline = serial.estimate_batch(256)
        assert sharded.compute_time * spec.world_size \
            == pytest.approx(baseline.compute_time)

    @settings(max_examples=30, deadline=None)
    @given(model=model_configs)
    def test_achieved_tflops_below_peak(self, model):
        spec = ParallelismSpec(tp_intra=4, dp_intra=2, dp_inter=16)
        system = build_system(8, 16)
        amped = build_amped(model, spec, system)
        tflops = amped.achieved_tflops_per_gpu(256)
        assert 0 < tflops < A100.peak_mac_flops_per_s / 1e12
