#!/usr/bin/env python
"""CI smoke for the calibration loop.

Synthesizes a Chrome trace from a "machine" obeying *known* fit
coefficients — six mappings of Megatron-1.7B traced through the real
exporter, then perturbed with seeded gaussian noise on every term —
runs the genuine ``amped calibrate`` CLI over it, and asserts that the
fitter recovers every coefficient within ``TOLERANCE`` relative and
that the recalibrated model reports healthy drift.

Works with or without NumPy installed (the fitter falls back to its
pure-python solver), so the no-numpy CI leg runs the same script.

Usage: ``python scripts/calibration_smoke.py`` (run from the repo
root; falls back to ``src/`` if ``repro`` is not installed).  Exits
non-zero on the first failed check.
"""

import json
import os
import random
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cli import main as amped  # noqa: E402
from repro.core.model import AMPeD  # noqa: E402
from repro.fitting.trace_fit import (  # noqa: E402
    FIT_PARAMETERS,
    FittedCoefficients,
)
from repro.hardware.catalog import ACCELERATORS  # noqa: E402
from repro.hardware.interconnect import IB_HDR, NVLINK3  # noqa: E402
from repro.hardware.node import NodeSpec  # noqa: E402
from repro.hardware.system import SystemSpec  # noqa: E402
from repro.obs.export import write_chrome_trace  # noqa: E402
from repro.obs.trace import get_tracer  # noqa: E402
from repro.parallelism.microbatch import (  # noqa: E402
    CASE_STUDY_EFFICIENCY,
)
from repro.transformer.zoo import get_model  # noqa: E402

#: The machine being "measured": coefficients the fit must recover.
TRUTH = FittedCoefficients(
    efficiency_a=0.97, efficiency_b=34.0, flops_fraction=0.86,
    link_latency_scale=1.5, link_bandwidth_scale=0.7)

#: Small enough that link latency leaves a visible fingerprint (the
#: 100B+ models drown it under bandwidth, leaving link_latency_scale
#: unidentifiable).
MODEL = "megatron-1.7b"

#: (tp, pp, dp, n_microbatches, global_batch) on 4 nodes x 8 A100 —
#: spanning microbatch regimes and both link tiers.
MAPPINGS = (
    (4, 1, 8, None, 512),
    (8, 1, 4, 8, 1024),
    (4, 2, 4, 12, 2048),
    (2, 4, 4, 4, 256),
    (8, 4, 1, 24, 4096),
    (2, 1, 16, 2, 128),
)

#: Relative sigma of the injected per-term noise, and how close the
#: recovered coefficients must land (validated headroom: the fit lands
#: within ~1.1% at this noise level).
NOISE_SIGMA = 0.003
TOLERANCE = 0.03


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def synthesize_trace(path):
    """Trace six mappings of a TRUTH-derated system, then add noise."""
    system = SystemSpec(
        node=NodeSpec(accelerator=ACCELERATORS["a100"],
                      n_accelerators=8, intra_link=NVLINK3,
                      inter_link=IB_HDR, n_nics=8),
        n_nodes=4)
    model = get_model(MODEL)
    base = AMPeD.for_mapping(model, system, tp=4, pp=1, dp=8,
                             efficiency=CASE_STUDY_EFFICIENCY,
                             evaluation_path="collapsed")
    measured = TRUTH.apply(base)

    tracer = get_tracer()
    tracer.enable(reset=True)
    for tp, pp, dp, n_microbatches, global_batch in MAPPINGS:
        scenario = AMPeD.for_mapping(
            model, measured.system, tp=tp, pp=pp, dp=dp,
            n_microbatches=n_microbatches,
            efficiency=measured.efficiency,
            evaluation_path="collapsed")
        scenario.estimate_batch(global_batch)
    records = tracer.records()
    tracer.disable()
    tracer.reset()
    write_chrome_trace(records, path)

    # Measurement jitter: seeded iid gaussian noise on every term span
    # (both the exact attrs and the quantized dur, consistently).
    document = json.loads(open(path).read())
    rng = random.Random(20260809)
    perturbed = 0
    for event in document["traceEvents"]:
        if event.get("name", "").startswith("term.") \
                and "seconds" in event.get("args", {}):
            event["args"]["seconds"] *= \
                1.0 + NOISE_SIGMA * rng.gauss(0.0, 1.0)
            event["dur"] = event["args"]["seconds"] * 1e6
            perturbed += 1
    with open(path, "w") as handle:
        json.dump(document, handle)
    if perturbed != 11 * len(MAPPINGS):
        fail(f"expected {11 * len(MAPPINGS)} term spans to perturb, "
             f"found {perturbed}")
    print(f"synthesized {path}: {len(MAPPINGS)} observations, "
          f"{perturbed} noisy terms (sigma {NOISE_SIGMA:.1%})")


def main():
    workdir = tempfile.mkdtemp(prefix="calibration-smoke-")
    trace = os.path.join(workdir, "measured.json")
    report_path = os.path.join(workdir, "report.json")
    synthesize_trace(trace)

    code = amped(["calibrate", "--trace", trace, "--nodes", "4",
                  "--model", MODEL, "--report", report_path])
    if code != 0:
        fail(f"amped calibrate exited {code}")
    report = json.loads(open(report_path).read())

    fit = report["fit"]
    if not fit["converged"]:
        fail(f"fit did not converge: {fit['warnings']}")
    if fit["warnings"]:
        fail(f"fit warnings on a well-posed problem: {fit['warnings']}")
    print(f"fit converged on the {fit['backend']} backend, "
          f"R^2 = {fit['r_squared']:.6f}")

    worst = 0.0
    for name in FIT_PARAMETERS:
        truth = getattr(TRUTH, name)
        recovered = fit["coefficients"][name]
        relative = abs(recovered - truth) / truth
        worst = max(worst, relative)
        status = "ok" if relative < TOLERANCE else "FAIL"
        print(f"  {name:22s} truth={truth:<8g} "
              f"fit={recovered:.6g} rel={relative:.2e}  {status}")
        if relative >= TOLERANCE:
            fail(f"{name}: recovered {recovered:.6g} is more than "
                 f"{TOLERANCE:.0%} from truth {truth:g}")
    print(f"recovery ok (worst relative error {worst:.2e} "
          f"< {TOLERANCE:.0%})")

    if not report["drift"]["healthy"]:
        fail(f"recalibrated model still drifts: {report['drift']}")
    print("drift healthy after recalibration")
    print("SMOKE PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
