#!/usr/bin/env python
"""CI smoke for the estimation daemon, single- and multi-worker.

Launches ``python -m repro.serve`` as a real subprocess and exercises
liveness, one genuine estimate round-trip and the metrics endpoint,
then SIGTERMs it and asserts a clean graceful shutdown: exit code 0,
"shutdown complete" printed, no orphaned ``repro.serve`` processes
left behind.  The cycle runs twice — the single-process daemon, then
a ``--workers 2`` pre-fork fleet (where ``/readyz`` must report the
two-worker quorum) — and finishes with the shared-memory leak check:
no ``amped-*`` segment may survive in ``/dev/shm``.

Usage: ``python scripts/serve_smoke.py`` (run from the repo root; adds
``src/`` to the child's PYTHONPATH automatically).  Exits non-zero on
the first failed check.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.search.shm import leaked_segment_names  # noqa: E402

ESTIMATE = {"model": "mingpt-85m", "nodes": 2, "dp": 16,
            "batch": 256, "tokens": 1.0e9}


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get_json(url, timeout=15):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def post_json(url, payload, timeout=60):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def orphaned_serve_pids():
    """PIDs (other than ours) whose cmdline mentions repro.serve."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if "repro.serve" in cmdline:
            pids.append(int(entry))
    return pids


def run_cycle(label, extra_args, expect_workers=None):
    """One boot → probe → SIGTERM-drain cycle against a fresh daemon."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--deadline", "60"] + extra_args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    try:
        base = None
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("serving on "):
                base = line.split("serving on ", 1)[1].strip()
                break
        if base is None:
            fail(f"[{label}] daemon never announced its address")
        print(f"[{label}] daemon up at {base}")

        status, body = get_json(base + "/healthz")
        if status != 200 or body.get("status") != "ok":
            fail(f"[{label}] healthz: {status} {body}")
        print(f"[{label}] healthz ok")

        if expect_workers is not None:
            deadline = time.monotonic() + 90.0
            ready = None
            while time.monotonic() < deadline:
                try:
                    _, ready = get_json(base + "/readyz")
                except urllib.error.HTTPError as error:
                    ready = json.loads(error.read())
                except OSError:
                    time.sleep(0.25)
                    continue
                if ready.get("ready"):
                    break
                time.sleep(0.25)
            if not (ready or {}).get("ready"):
                fail(f"[{label}] fleet never reached quorum: {ready}")
            if ready.get("workers_expected") != expect_workers:
                fail(f"[{label}] readyz reports "
                     f"{ready.get('workers_expected')} workers, "
                     f"expected {expect_workers}")
            pids = {w.get("pid") for w in ready.get("workers", [])}
            if len(pids - {None}) != expect_workers:
                fail(f"[{label}] quorum lists pids {pids}")
            print(f"[{label}] readyz quorum ok "
                  f"({ready['workers_ready']}/{expect_workers} ready)")

        status, payload = post_json(base + "/v1/estimate", ESTIMATE)
        if status != 200:
            fail(f"[{label}] estimate: {status} {payload}")
        if not payload.get("batch_time_s", 0) > 0:
            fail(f"[{label}] estimate payload missing batch_time_s: "
                 f"{payload}")
        print(f"[{label}] estimate ok: "
              f"batch_time_s={payload['batch_time_s']:.4g} "
              f"training_days={payload.get('training_days', 0):.4g}")

        # In a fleet the aggregated counter can trail the request by
        # one heartbeat: /metrics may land on the worker that did not
        # serve the estimate, before its peer slot refreshed.
        deadline = time.monotonic() + 10.0
        while True:
            status, snapshot = get_json(base + "/metrics")
            if status != 200:
                fail(f"[{label}] metrics: {status}")
            if snapshot["counters"].get("serve.requests", 0) >= 1:
                break
            if time.monotonic() > deadline:
                fail(f"[{label}] metrics missing serve.requests: "
                     f"{snapshot['counters']}")
            time.sleep(0.25)
        if expect_workers is not None \
                and snapshot.get("workers_expected") != expect_workers:
            fail(f"[{label}] metrics not fleet-aggregated: "
                 f"{snapshot.get('workers_expected')}")
        print(f"[{label}] metrics ok")

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            fail(f"[{label}] daemon did not exit within 60s of SIGTERM")
        if code != 0:
            fail(f"[{label}] daemon exited {code} after SIGTERM; "
                 f"stderr:\n{process.stderr.read()}")
        tail = process.stdout.read()
        if "shutdown complete" not in tail:
            fail(f"[{label}] missing 'shutdown complete' after drain: "
                 f"{tail!r}")
        print(f"[{label}] SIGTERM drain ok (exit 0)")

        orphans = orphaned_serve_pids()
        if orphans:
            fail(f"[{label}] orphaned repro.serve processes: {orphans}")
        print(f"[{label}] no orphaned workers")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(10.0)


def main():
    leaked_before = set(leaked_segment_names())
    run_cycle("single", [])
    if hasattr(os, "fork"):
        run_cycle("workers=2", ["--workers", "2", "--warm", "mingpt-85m",
                                "--log-level", "error"],
                  expect_workers=2)
    else:
        print("[workers=2] skipped: os.fork unavailable")
    leaked = set(leaked_segment_names()) - leaked_before
    if leaked:
        fail(f"leaked shared-memory segments: {sorted(leaked)}")
    print("no leaked shared-memory segments")
    print("SMOKE PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
