#!/usr/bin/env python
"""CI smoke for the estimation daemon.

Launches ``python -m repro.serve`` as a real subprocess, exercises
liveness, one genuine estimate round-trip and the metrics endpoint,
then SIGTERMs it and asserts a clean graceful shutdown: exit code 0,
"shutdown complete" printed, no orphaned ``repro.serve`` processes
left behind.

Usage: ``python scripts/serve_smoke.py`` (run from the repo root; adds
``src/`` to the child's PYTHONPATH automatically).  Exits non-zero on
the first failed check.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ESTIMATE = {"model": "mingpt-85m", "nodes": 2, "dp": 16,
            "batch": 256, "tokens": 1.0e9}


def fail(message):
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get_json(url, timeout=15):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def post_json(url, payload, timeout=60):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def orphaned_serve_pids():
    """PIDs (other than ours) whose cmdline mentions repro.serve."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if "repro.serve" in cmdline:
            pids.append(int(entry))
    return pids


def main():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--deadline", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env)
    try:
        base = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("serving on "):
                base = line.split("serving on ", 1)[1].strip()
                break
        if base is None:
            fail("daemon never announced its address")
        print(f"daemon up at {base}")

        status, body = get_json(base + "/healthz")
        if status != 200 or body.get("status") != "ok":
            fail(f"healthz: {status} {body}")
        print("healthz ok")

        status, payload = post_json(base + "/v1/estimate", ESTIMATE)
        if status != 200:
            fail(f"estimate: {status} {payload}")
        if not payload.get("batch_time_s", 0) > 0:
            fail(f"estimate payload missing batch_time_s: {payload}")
        print(f"estimate ok: batch_time_s={payload['batch_time_s']:.4g} "
              f"training_days={payload.get('training_days', 0):.4g}")

        status, snapshot = get_json(base + "/metrics")
        if status != 200:
            fail(f"metrics: {status}")
        if snapshot["counters"].get("serve.requests", 0) < 1:
            fail(f"metrics missing serve.requests: "
                 f"{snapshot['counters']}")
        print("metrics ok")

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 30s of SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM; stderr:\n"
                 f"{process.stderr.read()}")
        tail = process.stdout.read()
        if "shutdown complete" not in tail:
            fail(f"missing 'shutdown complete' after drain: {tail!r}")
        print("SIGTERM drain ok (exit 0)")

        orphans = orphaned_serve_pids()
        if orphans:
            fail(f"orphaned repro.serve processes: {orphans}")
        print("no orphaned workers")
        print("SMOKE PASS")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(10.0)


if __name__ == "__main__":
    sys.exit(main())
